#!/usr/bin/env python3
"""A tour of the R-NUCA mechanisms, driven directly through the public API.

This example does not run a full simulation; it walks through the paper's
Section 4 mechanics step by step:

1. rotational-ID assignment on the 4x4 torus,
2. the fixed-center instruction clusters around each core,
3. the single-probe lookup for instructions, private data and shared data,
4. the OS page-classification state machine, including a private->shared
   re-classification and a thread migration.

Run with::

    python examples/rnuca_placement_tour.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.core.rnuca import RNucaPolicy
from repro.osmodel.page_table import PageClass


def show_rid_grid(policy: RNucaPolicy) -> None:
    print("Rotational IDs (4x4 folded torus, as assigned by the OS):")
    rids = policy.rids
    cols = policy.system_config.interconnect.cols
    for row in range(policy.system_config.interconnect.rows):
        cells = rids[row * cols : (row + 1) * cols]
        print("   " + "  ".join(f"{rid:02b}" for rid in cells))
    print()


def show_instruction_clusters(policy: RNucaPolicy) -> None:
    print("Size-4 fixed-center instruction clusters (center -> members):")
    for core in (0, 5, 10, 15):
        cluster = policy.placement.instruction_cluster(core)
        print(f"   core {core:2d} -> tiles {list(cluster.members)}")
    print()


def show_lookups(policy: RNucaPolicy) -> None:
    page = policy.system_config.page_size
    instruction_address = 0x40 * page
    private_address = 0x80 * page
    shared_address = 0xC0 * page

    print("Single-probe lookups (access class -> slice probed by each core):")
    lookup = policy.lookup(3, instruction_address, instruction=True)
    print(f"   instructions from core 3  -> slice {lookup.target_slice} "
          f"(distance {policy.topology.hop_distance(3, lookup.target_slice)} hop)")

    lookup = policy.lookup(7, private_address, instruction=False)
    print(f"   private data from core 7  -> slice {lookup.target_slice} (its own tile)")

    policy.lookup(1, shared_address, instruction=False)
    lookup = policy.lookup(9, shared_address, instruction=False)  # re-classified
    slices = {
        policy.lookup(core, shared_address, instruction=False).target_slice
        for core in range(16)
    }
    print(f"   shared data from any core -> slice {slices.pop()} "
          "(one fixed, address-interleaved location; no L2 coherence needed)")
    print()


def show_classification(policy: RNucaPolicy) -> None:
    print("OS page classification (Section 4.3):")
    page_address = 0x200 * policy.system_config.page_size

    lookup = policy.lookup(2, page_address, instruction=False)
    print(f"   core 2 first touch   -> {lookup.page_class.value} "
          f"({lookup.classification.kind})")

    lookup = policy.lookup(6, page_address, instruction=False)
    print(f"   core 6 second core   -> {lookup.page_class.value} "
          f"({lookup.classification.kind}, {lookup.classification.latency_cycles} cycles)")

    migrating_page = 0x300 * policy.system_config.page_size
    policy.classifier.scheduler.schedule(thread_id=42, core_id=4)
    policy.lookup(4, migrating_page, instruction=False, thread_id=42)
    policy.classifier.scheduler.migrate(thread_id=42, to_core=11)
    lookup = policy.lookup(11, migrating_page, instruction=False, thread_id=42)
    print(f"   thread migration     -> page stays {lookup.page_class.value} "
          f"({lookup.classification.kind}); new owner is core 11")
    assert lookup.page_class is PageClass.PRIVATE
    print()


def main() -> None:
    policy = RNucaPolicy(SystemConfig.server_16core())
    print(policy.describe())
    print()
    show_rid_grid(policy)
    show_instruction_clusters(policy)
    show_lookups(policy)
    show_classification(policy)
    print(f"Lookups so far: {policy.lookups}; "
          f"serviced by the local slice: {policy.local_lookup_fraction:.0%}")


if __name__ == "__main__":
    main()
