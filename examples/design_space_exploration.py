#!/usr/bin/env python3
"""Design-space exploration: instruction-cluster size and ASR variants.

Reproduces two of the paper's design-space studies on one server workload:

* the Figure-11 sweep over instruction-cluster sizes (1, 2, 4, 8, 16),
  showing the latency/off-chip trade-off that makes size-4 the sweet spot;
* the six ASR variants (adaptive + five static allocation probabilities)
  from which the paper reports the best per workload.

Both studies are expressed as :class:`~repro.sim.runner.ExperimentGrid`
parameter sweeps and fanned out across worker processes by a
:class:`~repro.sim.runner.BatchRunner`, so the whole exploration runs in
parallel and re-runs are served from the JSON result cache.

Run with::

    python examples/design_space_exploration.py [workload] [num_records] [jobs]

Set ``jobs`` (or ``RNUCA_JOBS``) above 1 to parallelise.
"""

from __future__ import annotations

import sys

from repro.analysis.reporting import format_table
from repro.sim.runner import BatchRunner, ExperimentGrid

CLUSTER_SIZES = (1, 2, 4, 8, 16)
ASR_PROBABILITIES = (None, 0.0, 0.25, 0.5, 0.75, 1.0)


def cluster_sweep(runner: BatchRunner, workload: str, num_records: int) -> None:
    grid = ExperimentGrid(
        workloads=(workload,),
        designs=(),
        num_records=num_records,
        cluster_sizes=CLUSTER_SIZES,
    )
    batch = runner.run(grid.points())
    rows = []
    for point, result in batch.items():
        breakdown = result.cpi_breakdown()
        rows.append(
            {
                "cluster_size": point.param_dict["instruction_cluster_size"],
                "cpi": result.cpi,
                "instruction_l2_cpi": result.stats.class_component_cpi("instruction", "l2"),
                "offchip_cpi": breakdown["offchip"],
                "offchip_rate": result.metadata["offchip_rate"],
            }
        )
    print(format_table(rows, title=f"{workload}: instruction-cluster size sweep (Figure 11)"))
    best = min(rows, key=lambda row: row["cpi"])
    print(f"Best cluster size for {workload}: {best['cluster_size']}\n")


def asr_variants(runner: BatchRunner, workload: str, num_records: int) -> None:
    overrides = tuple(
        {"best_asr": False} if probability is None
        else {"best_asr": False, "allocation_probability": probability}
        for probability in ASR_PROBABILITIES
    )
    grid = ExperimentGrid(
        workloads=(workload,),
        designs=("A",),
        num_records=num_records,
        overrides=overrides,
    )
    batch = runner.run(grid.points())
    rows = []
    for point, result in batch.items():
        probability = point.param_dict.get("allocation_probability")
        rows.append(
            {
                "variant": "adaptive" if probability is None else f"static p={probability}",
                "cpi": result.cpi,
                "final_probability": result.metadata["asr_allocation_probability"],
                "offchip_rate": result.metadata["offchip_rate"],
            }
        )
    print(format_table(rows, title=f"{workload}: ASR variants (best is reported in Figures 7-12)"))
    best = min(rows, key=lambda row: row["cpi"])
    print(f"Best ASR variant for {workload}: {best['variant']}\n")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "apache"
    num_records = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else None
    runner = BatchRunner(jobs=jobs)
    print(
        f"Exploring the design space on {workload!r} "
        f"({num_records} references per run, {runner.jobs} job(s))\n"
    )
    cluster_sweep(runner, workload, num_records)
    asr_variants(runner, workload, num_records)


if __name__ == "__main__":
    main()
