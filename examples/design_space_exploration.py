#!/usr/bin/env python3
"""Design-space exploration: instruction-cluster size and ASR variants.

Reproduces two of the paper's design-space studies on one server workload:

* the Figure-11 sweep over instruction-cluster sizes (1, 2, 4, 8, 16),
  showing the latency/off-chip trade-off that makes size-4 the sweet spot;
* the six ASR variants (adaptive + five static allocation probabilities)
  from which the paper reports the best per workload.

Run with::

    python examples/design_space_exploration.py [workload] [num_records]
"""

from __future__ import annotations

import sys

from repro.analysis.evaluation import simulate_rnuca_cluster
from repro.analysis.reporting import format_table
from repro.sim.engine import simulate_workload


def cluster_sweep(workload: str, num_records: int) -> None:
    rows = []
    for size in (1, 2, 4, 8, 16):
        result = simulate_rnuca_cluster(workload, size, num_records=num_records)
        breakdown = result.cpi_breakdown()
        rows.append(
            {
                "cluster_size": size,
                "cpi": result.cpi,
                "instruction_l2_cpi": result.stats.class_component_cpi("instruction", "l2"),
                "offchip_cpi": breakdown["offchip"],
                "offchip_rate": result.metadata["offchip_rate"],
            }
        )
    print(format_table(rows, title=f"{workload}: instruction-cluster size sweep (Figure 11)"))
    best = min(rows, key=lambda row: row["cpi"])
    print(f"Best cluster size for {workload}: {best['cluster_size']}\n")


def asr_variants(workload: str, num_records: int) -> None:
    rows = []
    for probability in (None, 0.0, 0.25, 0.5, 0.75, 1.0):
        kwargs = {} if probability is None else {"allocation_probability": probability}
        result = simulate_workload(workload, "A", num_records=num_records, **kwargs)
        rows.append(
            {
                "variant": "adaptive" if probability is None else f"static p={probability}",
                "cpi": result.cpi,
                "final_probability": result.metadata["asr_allocation_probability"],
                "offchip_rate": result.metadata["offchip_rate"],
            }
        )
    print(format_table(rows, title=f"{workload}: ASR variants (best is reported in Figures 7-12)"))
    best = min(rows, key=lambda row: row["cpi"])
    print(f"Best ASR variant for {workload}: {best['variant']}\n")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "apache"
    num_records = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    print(f"Exploring the design space on {workload!r} ({num_records} references per run)\n")
    cluster_sweep(workload, num_records)
    asr_variants(workload, num_records)


if __name__ == "__main__":
    main()
