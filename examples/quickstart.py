#!/usr/bin/env python3
"""Quickstart: simulate one workload on every cache design.

This example builds the paper's 16-core tiled CMP (capacity-scaled so it runs
in seconds), generates a synthetic OLTP trace calibrated to the paper's
characterisation, and compares the private, shared, R-NUCA and ideal designs.

Run with::

    python examples/quickstart.py [workload] [num_records]
"""

from __future__ import annotations

import sys

from repro import simulate_workload
from repro.analysis.reporting import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "oltp-db2"
    num_records = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    print(f"Simulating {workload!r} with {num_records} L2 references per design...\n")
    results = {}
    for design in ("P", "S", "R", "I"):
        results[design] = simulate_workload(workload, design, num_records=num_records)

    baseline = results["P"]
    rows = []
    for design, result in results.items():
        breakdown = result.cpi_breakdown()
        rows.append(
            {
                "design": f"{design} ({result.design})",
                "cpi": result.cpi,
                "busy": breakdown["busy"],
                "l2": breakdown["l2"],
                "offchip": breakdown["offchip"],
                "offchip_rate": result.metadata["offchip_rate"],
                "speedup_vs_private": result.speedup_over(baseline),
            }
        )
    print(format_table(rows, title=f"{workload}: cycles per instruction by design"))

    rnuca = results["R"]
    print()
    print(f"R-NUCA speedup over private: {rnuca.speedup_over(results['P']):+.1%}")
    print(f"R-NUCA speedup over shared:  {rnuca.speedup_over(results['S']):+.1%}")
    print(f"Gap to the ideal design:     {rnuca.cpi / results['I'].cpi - 1:+.1%}")
    print(f"Misclassified accesses:      {rnuca.metadata['misclassification_rate']:.2%}")


if __name__ == "__main__":
    main()
