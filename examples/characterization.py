#!/usr/bin/env python3
"""Workload characterisation, reproducing the analysis of paper Section 3.

Generates synthetic traces for a few representative workloads and reports:

* the access-class mix (Figure 3),
* the sharing/read-write clustering (Figure 2),
* working-set footprints (Figure 4),
* instruction and shared-data reuse (Figure 5),
* page-granularity classification accuracy (Section 5.2).

Run with::

    python examples/characterization.py [num_records]
"""

from __future__ import annotations

import sys

from repro.analysis.characterization import (
    classification_accuracy,
    reference_breakdown,
    reference_clustering,
    reuse_histogram,
    working_set_cdf,
)
from repro.analysis.reporting import format_table
from repro.cmp.config import SystemConfig
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import get_workload

WORKLOADS = ("oltp-db2", "apache", "dss-qry6", "em3d", "mix")


def main() -> None:
    num_records = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000

    breakdown_rows = []
    accuracy_rows = []
    for name in WORKLOADS:
        spec = get_workload(name)
        config = SystemConfig.for_workload_category(spec.category).scaled(DEFAULT_SCALE)
        trace = SyntheticTraceGenerator(spec, config, seed=1, scale=DEFAULT_SCALE).generate(
            num_records
        )
        breakdown_rows.append({"workload": name, **reference_breakdown(trace)})
        accuracy_rows.append(
            {"workload": name, **classification_accuracy(trace, page_size=config.page_size)}
        )

        if name == "oltp-db2":
            print(format_table(
                [r for r in reference_clustering(trace) if r["access_share"] > 0.01],
                title=f"Figure 2 — reference clustering for {name}",
            ))
            print()
            reuse = reuse_histogram(trace)
            print(format_table(
                [{"class": cls, **bins} for cls, bins in reuse.items()],
                title=f"Figure 5 — reuse by the same core for {name}",
            ))
            print()
            footprints = {
                cls: curve[-1][0] for cls, curve in working_set_cdf(trace).items()
            }
            print(f"Figure 4 — scaled working-set footprints for {name} (KB): {footprints}")
            print()

    print(format_table(breakdown_rows, title="Figure 3 — L2 reference breakdown"))
    print()
    print(format_table(accuracy_rows, title="Section 5.2 — classification accuracy"))


if __name__ == "__main__":
    main()
