#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench run against a committed baseline.

Usage::

    python tools/check_bench.py --baseline BENCH_engine.json --current bench-engine-ci.json
    python tools/check_bench.py --baseline BENCH_trace.json  --current bench-trace-ci.json \
        --threshold 0.30

Both files must be payloads written by ``repro bench`` (engine or trace
flavour; the ``benchmark`` field says which, and the two files must
match).  For every throughput metric present in both payloads the gate
computes ``current / baseline`` and **fails (exit 1) when any ratio drops
below ``1 - threshold``** — i.e. the default ``--threshold 0.30`` allows
up to a 30% records/sec regression before failing, a deliberately
tolerant bound for CI-runner speed variance.  Faster-than-baseline runs
always pass; metrics missing from either side are reported but ignored.

Metrics compared:

* engine payloads — ``fast_records_per_sec`` and (when present)
  ``batch_records_per_sec`` per design (the production replay paths; R is
  the paper's R-NUCA number the gate exists for);
* trace payloads — ``binary_load_records_per_sec`` (keyed by record
  count, since the O(1) mmap load rate scales with trace length — quick
  runs against a full-length baseline skip it rather than ratio-gate
  noise) plus the per-design replay rates ``static_records_per_sec`` and
  ``dynamic_records_per_sec`` (the static column closes the mmap-replay
  blind spot: a static-replay regression used to be invisible to this
  gate);
* serve payloads (``BENCH_serve.json``) — end-to-end ``requests_per_sec``
  plus the warm-path (store-hit) p50/p99 latencies, gated as inverse
  latency so the same lower-bound ratio check applies: a warm p99 that
  doubles halves its inverse and trips the gate.
* chaos payloads (``BENCH_chaos.json``) — ``requests_per_sec`` and p50/p99
  under injected faults as ratio metrics, **plus absolute floors that no
  threshold relaxes**: availability must be exactly 1.0, zero failed
  requests, and results bit-identical to the fault-free arm.  A ratio gate
  would let availability drift (0.97/1.0 passes a 30% threshold); the
  chaos claim is all-or-nothing, so it is checked as a contract.

Stdlib only, like the rest of ``tools/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.30


def engine_metrics(payload: dict) -> dict[str, float]:
    metrics = {}
    for row in payload.get("results", []):
        metrics[f"{row['design']}.fast_records_per_sec"] = row["fast_records_per_sec"]
        if "batch_records_per_sec" in row:
            metrics[f"{row['design']}.batch_records_per_sec"] = row["batch_records_per_sec"]
    return metrics


def trace_metrics(payload: dict) -> dict[str, float]:
    metrics = {}
    persistence = payload.get("persistence", {})
    if "binary_load_records_per_sec" in persistence:
        # The mmap load is O(1) in trace length, so this rate is dominated
        # by fixed open overhead and scales with the record count.  Keying
        # it by length keeps the gate honest: a --quick run against a
        # full-length baseline becomes a one-sided (skipped) metric instead
        # of a guaranteed-noise ratio, while like-for-like runs still gate.
        records = payload.get("records", "?")
        metrics[f"binary_load_records_per_sec@{records}rec"] = persistence[
            "binary_load_records_per_sec"
        ]
    for row in payload.get("replay", []):
        for metric in ("static_records_per_sec", "dynamic_records_per_sec"):
            if metric in row:
                metrics[f"{row['design']}.{metric}"] = row[metric]
    return metrics


def serve_metrics(payload: dict) -> dict[str, float]:
    metrics = {}
    if payload.get("requests_per_sec"):
        metrics["requests_per_sec"] = payload["requests_per_sec"]
    warm = payload.get("warm", {})
    for percentile in ("p50_ms", "p99_ms"):
        latency = warm.get(percentile)
        if latency:
            metrics[f"warm.{percentile}.inverse"] = 1000.0 / latency
    return metrics


def chaos_metrics(payload: dict) -> dict[str, float]:
    metrics = {}
    if payload.get("requests_per_sec"):
        metrics["requests_per_sec"] = payload["requests_per_sec"]
    latency = payload.get("latency", {})
    for percentile in ("p50_ms", "p99_ms"):
        value = latency.get(percentile)
        if value:
            metrics[f"latency.{percentile}.inverse"] = 1000.0 / value
    return metrics


def chaos_contract(payload: dict) -> list[str]:
    """Absolute floors of the chaos soak (thresholds do not apply)."""
    problems = []
    if payload.get("availability") != 1.0:
        problems.append(f"availability {payload.get('availability')!r} != 1.0")
    if payload.get("failed_requests"):
        problems.append(f"{payload['failed_requests']} failed client request(s)")
    if not payload.get("identical_to_fault_free"):
        problems.append("results under faults are not bit-identical to the fault-free arm")
    return problems


EXTRACTORS = {
    "trace-engine-records-per-sec": engine_metrics,
    "trace-pipeline": trace_metrics,
    "serve-loadgen": serve_metrics,
    "serve-chaos": chaos_metrics,
}

#: Absolute (threshold-independent) contracts per benchmark kind.
CONTRACTS = {
    "serve-chaos": chaos_contract,
}


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"check_bench: cannot read {path}: {error}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"max tolerated fractional regression (default: {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")

    baseline = load(args.baseline)
    current = load(args.current)
    kind = baseline.get("benchmark")
    if current.get("benchmark") != kind:
        sys.exit(
            f"check_bench: benchmark kinds differ: baseline={kind!r} "
            f"current={current.get('benchmark')!r}"
        )
    extractor = EXTRACTORS.get(kind)
    if extractor is None:
        sys.exit(f"check_bench: no metric extractor for benchmark kind {kind!r}")

    contract = CONTRACTS.get(kind)
    if contract is not None:
        violations = [
            f"{label}: {problem}"
            for label, payload in (("baseline", baseline), ("current", current))
            for problem in contract(payload)
        ]
        if violations:
            for violation in violations:
                print(f"  contract violated ({violation})")
            print(f"check_bench: FAIL — {len(violations)} absolute contract violation(s)")
            return 1
        print("  absolute contract: ok (availability 1.0, bit-identical)")

    base_metrics = extractor(baseline)
    curr_metrics = extractor(current)
    shared = sorted(set(base_metrics) & set(curr_metrics))
    if not shared:
        sys.exit("check_bench: no shared metrics between baseline and current")
    for name in sorted(set(base_metrics) ^ set(curr_metrics)):
        print(f"  (skipping {name}: present on one side only)")

    floor = 1.0 - args.threshold
    regressions = []
    width = max(len(name) for name in shared)
    for name in shared:
        base, curr = base_metrics[name], curr_metrics[name]
        ratio = curr / base if base else float("inf")
        verdict = "ok" if ratio >= floor else "REGRESSED"
        print(f"  {name:<{width}}  {base:>12.1f} -> {curr:>12.1f}  x{ratio:.3f}  {verdict}")
        if ratio < floor:
            regressions.append((name, ratio))
    if regressions:
        names = ", ".join(f"{name} (x{ratio:.3f})" for name, ratio in regressions)
        print(
            f"check_bench: FAIL — {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}: {names}"
        )
        return 1
    print(f"check_bench: OK — {len(shared)} metric(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
