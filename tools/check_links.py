#!/usr/bin/env python3
"""Markdown link checker for the docs surface (no third-party deps).

Usage::

    python tools/check_links.py docs ROADMAP.md CHANGES.md

Directories are scanned recursively for ``*.md``.  For every inline
markdown link ``[text](target)``:

* ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI);
* relative file targets must exist on disk, resolved against the
  containing file's directory;
* ``#fragment`` anchors (same-file or into another ``.md``) must match a
  heading in the target, using GitHub's slugging rules.

Exits 0 when every link resolves, 1 with one line per broken link
otherwise.  ``tests/test_docs.py`` runs the same check in tier 1, so a
broken link fails locally before it fails the CI docs job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our docs)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    return {github_slug(match) for match in HEADING_RE.findall(markdown)}


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    # Links inside fenced code blocks are examples, not navigation.
    prose = CODE_FENCE_RE.sub("", text)
    problems = []
    targets = LINK_RE.findall(prose) + IMAGE_RE.findall(prose)
    for target in targets:
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_slugs(resolved.read_text(encoding="utf-8")):
                    problems.append(f"{path}: missing anchor -> {target}")
        elif fragment:
            if fragment not in heading_slugs(text):
                problems.append(f"{path}: missing anchor -> #{fragment}")
    return problems


def main(arguments: list[str]) -> int:
    files = iter_markdown_files(arguments)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"check_links: {len(files)} file(s), {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
