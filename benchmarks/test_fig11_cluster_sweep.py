"""Figure 11: CPI breakdown of instruction clusters of various sizes."""

from repro.analysis.cpi_breakdown import FIG7_COMPONENTS, cluster_size_sweep
from repro.analysis.reporting import format_table


def test_fig11_instruction_cluster_sweep(benchmark, sweep_suite):
    rows = benchmark(cluster_size_sweep, sweep_suite)
    print()
    print(
        format_table(
            rows,
            columns=["workload", "cluster_size", *FIG7_COMPONENTS, "total", "offchip_rate"],
            title="Figure 11 — instruction-cluster size sweep (normalised to size-1)",
        )
    )

    by_key = {(r["workload"], r["cluster_size"]): r for r in rows}
    server = [w for w in sweep_suite.workloads if w not in ("em3d", "mix")]
    for workload in server:
        size1 = by_key[(workload, 1)]
        size4 = by_key[(workload, 4)]
        size16 = by_key[(workload, 16)]
        # Storing instructions only locally (size-1) replicates the
        # instruction working set in every slice and raises off-chip misses.
        assert size1["offchip_rate"] >= size4["offchip_rate"] - 0.01
        # Very large clusters spread instructions farther away, raising the
        # L2-hit component relative to size-4.
        assert size16["l2"] >= size4["l2"] - 0.02
    # Size-4 is the sweet spot for the paper's configuration: it should not
    # lose to both extremes on any server workload.
    for workload in server:
        best_extreme = min(by_key[(workload, 1)]["total"], by_key[(workload, 16)]["total"])
        assert by_key[(workload, 4)]["total"] <= best_extreme + 0.05
