"""Figure 12: performance improvement over the private design."""

from repro.analysis.reporting import format_percentage_map, format_table
from repro.analysis.speedup import fig12_speedups, headline_numbers, workload_aversion


def test_fig12_speedup(benchmark, evaluation_suite):
    rows = benchmark(fig12_speedups, evaluation_suite)
    print()
    print(
        format_table(
            rows,
            columns=["workload", "design", "speedup", "ci_half_width"],
            title="Figure 12 — speedup over the private design (with 95% CI half-widths)",
        )
    )
    numbers = headline_numbers(evaluation_suite)
    print()
    print(format_percentage_map(numbers, title="Headline numbers (paper: 14% avg / 32% max over private, 6% over shared, within 5% of ideal)"))
    print()
    print("Workload aversion:", workload_aversion(evaluation_suite))

    by_key = {(r["workload"], r["design"]): r["speedup"] for r in rows}
    for workload in evaluation_suite.workloads:
        # R-NUCA matches or beats the better of the two conventional designs.
        assert by_key[(workload, "R")] >= min(0.0, by_key[(workload, "S")]) - 0.02
        # The ideal design bounds everything.
        assert by_key[(workload, "I")] >= by_key[(workload, "R")] - 0.02
    # Headline shapes: R-NUCA improves on both baselines on average, and by a
    # double-digit percentage over one of them.
    assert numbers["avg_speedup_over_private"] > 0.03
    assert numbers["avg_speedup_over_shared"] > 0.03
    assert numbers["max_speedup_over_private"] > 0.10
    assert numbers["avg_gap_to_ideal"] < 0.30
