"""Figure 3: distribution of L2 references by access class."""

from repro.analysis.characterization import reference_breakdown
from repro.analysis.reporting import format_table
from repro.workloads.spec import get_workload


def test_fig03_reference_breakdown(benchmark, characterization_traces):
    def analyse():
        return {
            name: reference_breakdown(trace)
            for name, (trace, _) in characterization_traces.items()
        }

    breakdowns = benchmark(analyse)
    rows = [{"workload": name, **values} for name, values in breakdowns.items()]
    print()
    print(
        format_table(
            rows,
            columns=["workload", "instruction", "private", "shared_rw", "shared_ro"],
            title="Figure 3 — L2 reference breakdown by access class",
        )
    )

    for name, observed in breakdowns.items():
        spec = get_workload(name)
        assert sum(observed.values()) > 0.999
        # The observed mix must track the published (spec) mix reasonably.
        # (Shared blocks touched by only one core within the finite trace are
        # counted as private by the trace analysis, so "private" reads a few
        # points high, exactly as a finite measurement window would.)
        assert abs(observed["instruction"] - spec.instructions.fraction) < 0.06
        assert abs(observed["private"] - spec.private_data.fraction) < 0.15
    # Server workloads are dominated by instructions + shared data,
    # scientific/multi-programmed by private data (paper Section 3.2).
    assert breakdowns["oltp-db2"]["instruction"] + breakdowns["oltp-db2"]["shared_rw"] > 0.5
    assert breakdowns["mix"]["private"] > 0.8
    assert breakdowns["em3d"]["private"] > 0.7
