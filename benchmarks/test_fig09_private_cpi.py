"""Figure 9: CPI contribution of L2 accesses to private data."""

from repro.analysis.cpi_breakdown import fig9_private_data_cpi
from repro.analysis.reporting import format_table


def test_fig09_private_data_cpi(benchmark, evaluation_suite):
    rows = benchmark(fig9_private_data_cpi, evaluation_suite)
    print()
    print(
        format_table(
            rows,
            columns=["workload", "design", "normalized_cpi"],
            title="Figure 9 — private-data CPI (normalised to the private design)",
        )
    )

    by_key = {(r["workload"], r["design"]): r["normalized_cpi"] for r in rows}
    wins = 0
    for workload in evaluation_suite.workloads:
        # R-NUCA allocates private data locally, matching the private design
        # and beating the shared design, which spreads it across the chip.
        if by_key[(workload, "R")] <= by_key[(workload, "S")] + 1e-9:
            wins += 1
        assert by_key[(workload, "R")] <= by_key[(workload, "S")] * 1.3
    assert wins >= len(evaluation_suite.workloads) - 1
