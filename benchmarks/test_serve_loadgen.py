"""Serving-path benchmark contracts (``repro serve`` + ``repro loadgen``).

Pins the properties the committed ``BENCH_serve.json`` baseline claims:

* a closed-loop run with >= 4 concurrent clients over a duplicated point
  mix completes with zero errors;
* the in-flight dedupe fires (identical cold requests from concurrent
  clients share one simulation, so executed == unique points);
* warm requests (result-store hits) are measurably faster than cold ones
  (the whole reason a long-lived daemon beats per-invocation ``repro
  run``: no process startup, no pool spin-up, no re-simulation).

The run is in-process (ephemeral port, throwaway stores), scaled down the
same way the rest of the suite scales the machine, so it stays a few
seconds in tier 1.
"""

from __future__ import annotations

from repro.serve import run_serve_bench

#: Down-scale factor for the served simulations (machine 8x smaller than
#: the paper's; latency split, not absolute CPI, is what is pinned here).
SERVE_BENCH_SCALE = 8

#: Short traces: serving latency, not simulation depth, is under test.
SERVE_BENCH_RECORDS = 2_000


def test_serve_loadgen_dedupes_and_warm_beats_cold():
    payload = run_serve_bench(
        workloads=("mix", "oltp-db2"),
        designs=("P", "R"),
        clients=4,
        num_requests=32,
        num_records=SERVE_BENCH_RECORDS,
        scale=SERVE_BENCH_SCALE,
    )
    assert payload["errors"] == 0, payload["error_messages"]
    assert payload["requests"] == 32
    assert payload["clients"] == 4
    assert payload["requests_per_sec"] > 0

    stats = payload["daemon_stats"]
    # Exactly one simulation per unique point; everything else was served
    # from the in-flight table or the result store.
    assert stats["executed"] == payload["unique_points"]
    assert stats["deduped"] > 0, stats
    assert stats["cached"] > 0, stats
    assert stats["errors"] == 0

    # Warm (store-hit) requests must be measurably faster than cold
    # (executed) ones — at least 2x on the mean, a conservative bound for
    # a split that measures ~10-30x in practice.
    cold = payload["cold"]["mean_ms"]
    warm = payload["warm"]["mean_ms"]
    assert warm > 0 and cold > 0
    assert warm * 2 < cold, f"warm {warm}ms not measurably faster than cold {cold}ms"
    assert payload["warm_speedup"] >= 2
