"""Figure 2: L2 reference clustering (sharers vs. read-write behaviour)."""

from repro.analysis.characterization import reference_clustering
from repro.analysis.reporting import format_table
from repro.workloads.spec import WORKLOADS, get_workload


def test_fig02_reference_clustering(benchmark, characterization_traces):
    def analyse():
        return {
            name: reference_clustering(trace)
            for name, (trace, _) in characterization_traces.items()
        }

    clustering = benchmark(analyse)
    print()
    for name, rows in clustering.items():
        category = get_workload(name).category
        interesting = [r for r in rows if r["access_share"] > 0.01]
        print(
            format_table(
                interesting,
                columns=["sharers", "kind", "blocks", "access_share", "read_write_block_fraction"],
                title=f"Figure 2 — {name} ({category})",
            )
        )
        print()

    # Paper observations: server instruction/shared-data blocks are shared by
    # (nearly) all cores; instructions are read-only; private data dominates
    # the scientific and multi-programmed workloads.
    for name in ("oltp-db2", "apache", "oltp-oracle"):
        rows = clustering[name]
        assert any(r["sharers"] >= 8 and r["access_share"] > 0.05 for r in rows)
        for row in rows:
            if row["kind"] == "instruction":
                assert row["read_write_block_fraction"] == 0.0
    for name in ("em3d", "mix"):
        single_sharer = sum(
            r["access_share"] for r in clustering[name] if r["sharers"] == 1
        )
        assert single_sharer > 0.6
    assert len(clustering) == len(WORKLOADS)
