"""Ablation: rotational versus standard interleaving for instruction clusters.

Rotational interleaving (Section 4.1) lets overlapping fixed-center clusters
replicate the instruction working set while every slice stores exactly the
same 1/n-th of it and every lookup stays within one hop.  The alternative —
standard address interleaving over disjoint size-4 clusters — pins each block
to one slice of a fixed partition, so some lookups travel farther and
partition-corner tiles lose the nearest-neighbour property.
"""

import statistics

from repro.analysis.reporting import format_table
from repro.core.clusters import partition_into_fixed_boundary
from repro.core.rotational import RotationalInterleaver
from repro.interconnect.topology import FoldedTorus2D


def test_ablation_rotational_vs_standard_interleaving(benchmark):
    def run():
        torus = FoldedTorus2D(4, 4)
        rotational = RotationalInterleaver(torus, 4)
        partitions = partition_into_fixed_boundary(torus, 2, 2)

        rotational_distances = []
        replica_counts_rotational = set()
        for center in range(16):
            rotational_distances.append(rotational.average_lookup_distance(center))
            members = rotational.cluster_members(center)
            replica_counts_rotational.add(len(set(members)))

        standard_distances = []
        for cluster in partitions:
            for core in cluster.members:
                distances = [
                    torus.hop_distance(core, cluster.slice_for(bits))
                    for bits in range(cluster.size)
                ]
                standard_distances.append(sum(distances) / len(distances))
        return torus, rotational_distances, standard_distances

    _, rotational_distances, standard_distances = benchmark(run)
    rows = [
        {
            "indexing": "rotational (overlapping fixed-center)",
            "avg_lookup_hops": statistics.mean(rotational_distances),
            "worst_core_hops": max(rotational_distances),
        },
        {
            "indexing": "standard (disjoint fixed-boundary)",
            "avg_lookup_hops": statistics.mean(standard_distances),
            "worst_core_hops": max(standard_distances),
        },
    ]
    print()
    print(
        format_table(
            rows,
            title="Ablation — instruction lookup distance, size-4 clusters on the 4x4 torus",
        )
    )

    # Every core's rotational cluster is its immediate neighbourhood, so no
    # lookup is farther than one hop; fixed-boundary partitions leave corner
    # tiles with strictly worse worst-case lookups.
    assert max(rotational_distances) <= 1.0
    assert statistics.mean(rotational_distances) <= statistics.mean(standard_distances)
    assert max(standard_distances) >= max(rotational_distances)
