"""Figure 5: reuse of instructions and shared data by the same core."""

from repro.analysis.characterization import REUSE_BINS, reuse_histogram
from repro.analysis.reporting import format_table


def test_fig05_reuse(benchmark, characterization_traces):
    server = {
        name: pair
        for name, pair in characterization_traces.items()
        if name not in ("em3d", "mix")
    }

    def analyse():
        return {name: reuse_histogram(trace) for name, (trace, _) in server.items()}

    histograms = benchmark(analyse)
    rows = []
    for name, groups in histograms.items():
        for group, bins in groups.items():
            rows.append({"workload": name, "class": group, **bins})
    print()
    print(
        format_table(
            rows,
            columns=["workload", "class", *REUSE_BINS],
            title="Figure 5 — reuse by the same core (share of L2 accesses)",
        )
    )

    for name, groups in histograms.items():
        # Instructions: accesses are finely interleaved between sharers, so
        # most L2 references are the core's first access to the block.
        assert groups["instruction"]["1st access"] > 0.5
        # Shared data: a core rarely accesses a block more than twice before
        # another core writes it (little reuse to exploit by migration).
        first_two = groups["shared"]["1st access"] + groups["shared"]["2nd access"]
        assert first_two > 0.55
