"""Ablation: 2-D folded torus versus 2-D mesh (Section 5.1 discussion).

The paper argues for a torus because it has no edges: every tile sees the
same latency distribution, which matters for address-interleaved shared data.
This ablation quantifies both the topology-level claim (average distances and
hot links) and its end-to-end effect on the shared design.
"""

from dataclasses import replace

from repro.analysis.reporting import format_table
from repro.cmp.config import SystemConfig
from repro.interconnect.routing import link_loads
from repro.interconnect.topology import FoldedTorus2D, Mesh2D
from repro.sim.engine import simulate_workload
from repro.workloads.generator import DEFAULT_SCALE

RECORDS = 25_000


def _uniform_traffic(topology):
    return {
        (src, dst): 1
        for src in range(topology.num_nodes)
        for dst in range(topology.num_nodes)
        if src != dst
    }


def test_ablation_torus_vs_mesh(benchmark):
    def run():
        torus, mesh = FoldedTorus2D(4, 4), Mesh2D(4, 4)
        base = SystemConfig.server_16core().scaled(DEFAULT_SCALE)
        mesh_config = replace(
            base, interconnect=replace(base.interconnect, topology="mesh")
        )
        results = {}
        for label, config in (("torus", base), ("mesh", mesh_config)):
            results[label] = simulate_workload(
                "oltp-db2", "S", num_records=RECORDS, scale=DEFAULT_SCALE, config=config
            )
        return torus, mesh, results

    torus, mesh, results = benchmark(run)

    torus_avg = sum(torus.average_distance(n) for n in range(16)) / 16
    mesh_avg = sum(mesh.average_distance(n) for n in range(16)) / 16
    torus_loads = link_loads(torus, _uniform_traffic(torus))
    mesh_loads = link_loads(mesh, _uniform_traffic(mesh))
    rows = [
        {
            "topology": "torus",
            "avg_hops": torus_avg,
            "worst_node_avg_hops": max(torus.average_distance(n) for n in range(16)),
            "max_link_load": max(torus_loads.values()),
            "shared_design_cpi": results["torus"].cpi,
        },
        {
            "topology": "mesh",
            "avg_hops": mesh_avg,
            "worst_node_avg_hops": max(mesh.average_distance(n) for n in range(16)),
            "max_link_load": max(mesh_loads.values()),
            "shared_design_cpi": results["mesh"].cpi,
        },
    ]
    print()
    print(format_table(rows, title="Ablation — torus vs. mesh (uniform traffic + shared design)"))

    # The torus has lower average distance, no edge penalty, and no hot links
    # relative to the mesh; the shared design benefits accordingly.
    assert torus_avg < mesh_avg
    assert max(torus.average_distance(n) for n in range(16)) <= max(
        mesh.average_distance(n) for n in range(16)
    )
    assert max(torus_loads.values()) <= max(mesh_loads.values())
    assert results["torus"].cpi <= results["mesh"].cpi * 1.02
