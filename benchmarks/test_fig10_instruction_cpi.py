"""Figure 10: CPI contribution of L2 instruction accesses."""

from repro.analysis.cpi_breakdown import fig10_instruction_cpi
from repro.analysis.reporting import format_table
from repro.workloads.spec import get_workload


def test_fig10_instruction_cpi(benchmark, evaluation_suite):
    rows = benchmark(fig10_instruction_cpi, evaluation_suite)
    print()
    print(
        format_table(
            rows,
            columns=["workload", "design", "normalized_cpi"],
            title="Figure 10 — instruction CPI (normalised to the private design)",
        )
    )

    by_key = {(r["workload"], r["design"]): r["normalized_cpi"] for r in rows}
    server = [
        w
        for w in evaluation_suite.workloads
        if get_workload(w).category == "server"
    ]
    # Clustered replication + rotational interleaving keeps instructions at
    # most one hop away: R-NUCA beats the shared design, which spreads
    # instruction blocks across the whole die (Section 5.3).
    wins = sum(1 for w in server if by_key[(w, "R")] <= by_key[(w, "S")] + 1e-9)
    assert wins >= len(server) - 1
