"""Re-classification overhead under dynamic behaviour (paper Sections 4.3/5.2).

The paper argues that R-NUCA's OS-driven page re-classification — the
poison/TLB-shootdown/block-invalidation sequence triggered when a thread
migrates or private data becomes shared — is **negligible in practice**,
because such events happen at OS-scheduling timescales (many millions of
instructions apart), while the per-event cost is fixed and small.

The synthetic dynamic scenarios compress that timescale enormously (a
handful of migrations inside a tens-of-thousands-of-records trace), so the
checks here separate the two halves of the claim:

* the *per-event* accounting is exact — every migration re-own and every
  private->shared re-classification charges the Section-4.3 latency, and
  nothing else lands in the ``reclassification`` CPI component;
* projected back to a realistic event rate, the overhead is far below one
  percent of total CPI (the paper's "negligible"); and
* R-NUCA's placement advantage survives the dynamics: net of the
  fixed OS-event charges (whose rate here is a trace-brevity artefact),
  R-NUCA still beats the private and shared designs on the migrating
  scenario, and beats them outright on the phased scenario, where the mix
  varies but no OS events fire.
"""

from __future__ import annotations

import pytest

from repro import knobs
from repro.osmodel.classifier import DEFAULT_RECLASSIFY_LATENCY
from repro.sim.engine import simulate_workload
from repro.workloads.generator import DEFAULT_SCALE

#: Records per simulation: the suite-wide RNUCA_EVAL_RECORDS knob, bounded
#: so tier-1 stays fast (benchmarks/ is not an importable package, so the
#: conftest constant cannot be imported here).
DYN_RECORDS = min(knobs.eval_records(40_000), 40_000)

#: A generous realistic event rate: five OS events per hundred million
#: instructions (OS quanta are tens of milliseconds on GHz cores; the
#: paper's migrations are rarer still).
REALISTIC_EVENTS_PER_INSTRUCTION = 5 / 100e6

DESIGNS = ("P", "S", "R")


@pytest.fixture(scope="module")
def migrate_results():
    return {
        design: simulate_workload(
            "oltp-db2:migrate",
            design,
            num_records=DYN_RECORDS,
            scale=DEFAULT_SCALE,
            seed=1,
        )
        for design in DESIGNS
    }


@pytest.fixture(scope="module")
def phased_results():
    return {
        design: simulate_workload(
            "mix:phased",
            design,
            num_records=DYN_RECORDS,
            scale=DEFAULT_SCALE,
            seed=1,
        )
        for design in DESIGNS
    }


def test_migrating_scenario_exercises_the_reactive_paths(migrate_results):
    stats = migrate_results["R"].stats
    assert stats.thread_migrations == 4
    assert stats.sharing_onsets == 1
    assert stats.migration_reowns > 0
    assert stats.reclassifications > 0
    assert stats.component_cpi("reclassification") > 0


def test_reclassification_charging_is_exact(migrate_results):
    """Every charged cycle maps to a counted OS event, and vice versa."""
    stats = migrate_results["R"].stats
    charged_cycles = stats.component_cpi("reclassification") * stats.instructions
    charged_events = charged_cycles / DEFAULT_RECLASSIFY_LATENCY
    counted = stats.migration_reowns + stats.reclassifications
    # Events during warm-up are counted but fall outside the measured
    # window, so charged <= counted; with the schedule's events placed past
    # the warm-up fraction they coincide exactly.
    assert charged_events == pytest.approx(counted)


def test_overhead_negligible_at_realistic_event_rates(migrate_results):
    """The paper's claim is about rates: project the measured per-event cost
    onto an OS-timescale event rate and the overhead share vanishes."""
    result = migrate_results["R"]
    stats = result.stats
    events = stats.migration_reowns + stats.reclassifications
    overhead_cycles = stats.component_cpi("reclassification") * stats.instructions
    cycles_per_event = overhead_cycles / events
    projected_overhead_cpi = cycles_per_event * REALISTIC_EVENTS_PER_INSTRUCTION
    assert projected_overhead_cpi / result.cpi < 0.005  # far below 1%


def test_rnuca_placement_survives_migration(migrate_results):
    """Net of the fixed per-event charges (whose *rate* here is a
    trace-brevity artefact), R-NUCA still beats private and shared on the
    migrating scenario: shootdowns, re-owned pages and newly interleaved
    onset pages are all still in play."""
    rnuca = migrate_results["R"]
    net_cpi = rnuca.cpi - rnuca.stats.component_cpi("reclassification")
    assert net_cpi < migrate_results["P"].cpi
    assert net_cpi < migrate_results["S"].cpi


def test_rnuca_wins_outright_on_phased_scenario(phased_results):
    """With time-varying demand but no OS events, R-NUCA beats both
    baselines outright — adaptivity costs nothing when nothing reacts."""
    assert phased_results["R"].cpi < phased_results["P"].cpi
    assert phased_results["R"].cpi < phased_results["S"].cpi
    assert phased_results["R"].stats.reclassifications == 0


def test_per_phase_cpi_reported_for_every_phase(phased_results):
    for design in DESIGNS:
        breakdown = phased_results[design].stats.phase_breakdown()
        assert [row["phase"] for row in breakdown] == [
            "base",
            "private-heavy",
            "shared-heavy",
        ]
        assert all(row["cpi"] > 0 for row in breakdown)
