"""Shared fixtures for the benchmark harness.

The full evaluation (every workload on every design, plus the ASR variants
and the instruction-cluster sweep) is simulated once per session and shared
by the per-figure benchmark modules, mirroring how the paper reports many
figures from one set of simulations.  The grid is executed through the
parallel :class:`~repro.sim.runner.BatchRunner`, so worker fan-out and the
on-disk result cache are both available from the environment.

Environment knobs:

``RNUCA_EVAL_RECORDS``
    Number of L2 references per (workload, design) simulation
    (default 20000 — sized so tier-1 stays inside its wall-clock budget
    on one core; every figure assertion is qualitative and stable from
    well below that).  Raise it (e.g. to 40000) when regenerating
    figures at full fidelity, or lower it for a quick smoke run.

``RNUCA_JOBS``
    Worker processes for the simulation grid (default 1 = serial).

``RNUCA_RESULTS_DIR``
    If set, persist simulation results as content-addressed JSON under this
    directory; repeat benchmark runs then reuse them as cache hits.

``RNUCA_ENGINE``
    Replay engine for every simulation: ``batch`` (the vectorised numpy
    kernel, the benchmark session's default), ``fast`` (the columnar
    allocation-free path, the library default) or ``reference`` (the
    preserved seed path).  All three produce identical numbers — see
    tests/test_engine_equivalence.py — so this knob exists for
    cross-checking and for benchmarking the engines against each other
    (``repro bench``).  The session fixture below defaults it to
    ``batch`` for wall-clock: combinations outside the batch closed form
    (replacement policies, adaptive scheduling, dynamic traces) fall
    back to the fast engine with bit-identical statistics.

``RNUCA_EVAL_SCHEDULERS``
    Comma-separated scheduler axis for the evaluation grid (e.g.
    ``fixed,greedy``).  Non-``fixed`` names add one extra point per
    (workload, design) pair, exposed via
    ``evaluation_suite.scheduler_sweep`` — the figure baselines in
    ``evaluation_suite.results`` are unchanged.
"""

from __future__ import annotations

import os

import pytest

from repro import knobs
from repro.analysis.evaluation import run_evaluation
from repro.cmp.config import SystemConfig
from repro.sim.runner import ResultStore
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import WORKLOADS, get_workload

#: Trace length for the evaluation suite (per workload, per design).
#: The ASR best-of-six replays every (workload, design=A) point six times
#: through the scalar coherence model, so this default is the dominant
#: term in tier-1 wall clock; raise via ``RNUCA_EVAL_RECORDS`` for
#: full-fidelity figure regeneration.
EVAL_RECORDS = knobs.eval_records(20_000)

#: Trace length for the characterisation figures (no design simulation).
CHARACTERIZATION_RECORDS = knobs.characterization_records(30_000)


def _result_store():
    """Optional on-disk result cache, enabled via ``RNUCA_RESULTS_DIR``."""
    directory = knobs.results_dir()
    return ResultStore(directory) if directory else None


@pytest.fixture(scope="session", autouse=True)
def _batch_engine_default():
    """Replay the benchmark grids through the batch kernel by default.

    An explicit ``RNUCA_ENGINE`` in the environment always wins, so the
    suite can still be forced through ``fast`` or ``reference``.  The
    engines are differentially pinned bit-identical
    (tests/test_engine_equivalence.py), so this is purely a wall-clock
    choice; worker processes inherit the variable through the
    environment.
    """
    if os.environ.get(knobs.ENGINE.name):
        yield
        return
    os.environ[knobs.ENGINE.name] = "batch"
    try:
        yield
    finally:
        os.environ.pop(knobs.ENGINE.name, None)


@pytest.fixture(scope="session")
def evaluation_suite():
    """P/A/S/R/I results for the eight primary workloads (Figures 7-10, 12).

    ``RNUCA_EVAL_SCHEDULERS`` widens the grid with the replay-time
    scheduler axis; the extra points land in ``suite.scheduler_sweep`` so
    every figure's baseline numbers are unaffected.
    """
    return run_evaluation(
        num_records=EVAL_RECORDS,
        schedulers=knobs.eval_schedulers(),
        store=_result_store(),
    )


@pytest.fixture(scope="session")
def sweep_suite():
    """R-NUCA instruction-cluster sweep (Figure 11)."""
    return run_evaluation(
        designs=("P", "R"),
        num_records=EVAL_RECORDS,
        include_cluster_sweep=True,
        store=_result_store(),
    )


@pytest.fixture(scope="session")
def characterization_traces():
    """Synthetic traces for the characterisation figures (Figures 2-5, 5.2)."""
    traces = {}
    for name in WORKLOADS:
        spec = get_workload(name)
        config = SystemConfig.for_workload_category(spec.category).scaled(DEFAULT_SCALE)
        generator = SyntheticTraceGenerator(spec, config, seed=1, scale=DEFAULT_SCALE)
        traces[name] = (generator.generate(CHARACTERIZATION_RECORDS), config)
    return traces
