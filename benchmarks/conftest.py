"""Shared fixtures for the benchmark harness.

The full evaluation (every workload on every design, plus the ASR variants
and the instruction-cluster sweep) is simulated once per session and shared
by the per-figure benchmark modules, mirroring how the paper reports many
figures from one set of simulations.

Environment knobs:

``RNUCA_EVAL_RECORDS``
    Number of L2 references per (workload, design) simulation
    (default 40000).  Lower it for a quick smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.evaluation import run_evaluation
from repro.cmp.config import SystemConfig
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import WORKLOADS, get_workload

#: Trace length for the evaluation suite (per workload, per design).
EVAL_RECORDS = int(os.environ.get("RNUCA_EVAL_RECORDS", 40_000))

#: Trace length for the characterisation figures (no design simulation).
CHARACTERIZATION_RECORDS = int(
    os.environ.get("RNUCA_CHARACTERIZATION_RECORDS", 60_000)
)


@pytest.fixture(scope="session")
def evaluation_suite():
    """P/A/S/R/I results for the eight primary workloads (Figures 7-10, 12)."""
    return run_evaluation(num_records=EVAL_RECORDS)


@pytest.fixture(scope="session")
def sweep_suite():
    """R-NUCA instruction-cluster sweep (Figure 11)."""
    return run_evaluation(
        designs=("P", "R"),
        num_records=EVAL_RECORDS,
        include_cluster_sweep=True,
    )


@pytest.fixture(scope="session")
def characterization_traces():
    """Synthetic traces for the characterisation figures (Figures 2-5, 5.2)."""
    traces = {}
    for name in WORKLOADS:
        spec = get_workload(name)
        config = SystemConfig.for_workload_category(spec.category).scaled(DEFAULT_SCALE)
        generator = SyntheticTraceGenerator(spec, config, seed=1, scale=DEFAULT_SCALE)
        traces[name] = (generator.generate(CHARACTERIZATION_RECORDS), config)
    return traces
