"""Figure 4: L2 working-set sizes (CDF of references vs. footprint)."""

from repro.analysis.characterization import working_set_cdf
from repro.analysis.reporting import format_table


def _footprint_at(curve, fraction_of_class_max):
    """Footprint (KB) at which the CDF reaches a fraction of its maximum."""
    if not curve:
        return 0.0
    target = curve[-1][1] * fraction_of_class_max
    for footprint, fraction in curve:
        if fraction >= target:
            return footprint
    return curve[-1][0]


def test_fig04_working_set_cdfs(benchmark, characterization_traces):
    def analyse():
        return {
            name: working_set_cdf(trace)
            for name, (trace, _) in characterization_traces.items()
        }

    curves = benchmark(analyse)
    rows = []
    for name, classes in curves.items():
        row = {"workload": name}
        for class_name, curve in classes.items():
            row[f"{class_name}_footprint_kb"] = curve[-1][0] if curve else 0.0
            row[f"{class_name}_90pct_kb"] = _footprint_at(curve, 0.9)
        rows.append(row)
    print()
    print(
        format_table(
            rows,
            title="Figure 4 — working-set footprints (scaled KB; 100% and 90% of class references)",
            precision=1,
        )
    )

    # Shape checks from the paper: DSS/scientific private working sets dwarf
    # OLTP's; instruction working sets of scientific/multi-programmed
    # workloads are tiny compared to the server workloads'.
    by_name = {row["workload"]: row for row in rows}
    assert by_name["dss-qry6"]["private_footprint_kb"] > 2 * by_name["oltp-db2"]["private_footprint_kb"]
    assert by_name["mix"]["instruction_footprint_kb"] < by_name["oltp-oracle"]["instruction_footprint_kb"]
    assert by_name["em3d"]["instruction_footprint_kb"] < by_name["apache"]["instruction_footprint_kb"]
