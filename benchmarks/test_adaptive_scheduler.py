"""Adaptive-scheduler benchmark: feedback beats a fixed schedule under load.

The ``mix:adaptive`` scenario launches two threads per core on half the
machine (the other half idles), so the packed cores' L2 slices carry twice
the working set and thrash.  A fixed schedule replays that imbalance
verbatim; the ``greedy`` feedback policy observes per-core pressure during
replay, spreads the hot threads across the idle cores, and pays for each
move through the OS re-own machinery (5000 cycles per affected page at its
next touch).

The claim measured here mirrors the paper's reactive story at steady
state: on a full-length trace (60k records — the default evaluation
length), the one-time migration cost amortises and the greedy scheduler
ends up with **lower mean CPI** than the fixed schedule on R-NUCA.  The
run also pins the mechanism (off-chip rate drops because the spread
working sets fit their slices) and the backward-compatibility contract
(``scheduler=fixed`` is bit-identical to the pre-adaptive dynamics path).
"""

from __future__ import annotations

import pytest

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design
from repro.dynamics.scenarios import resolve_dynamic
from repro.sim.engine import TraceSimulator, generate_workload_trace
from repro.sim.latency import CpiModel
from repro.workloads.generator import DEFAULT_SCALE

#: Full evaluation length: long enough that the one-time re-own charges
#: amortise against the per-record capacity benefit (the paper measures
#: steady state, not migration transients).
RECORDS = 60_000

SCENARIO = "mix:adaptive"
SEED = 3


@pytest.fixture(scope="module")
def scenario():
    """One shared (spec, config, trace) triple for every comparison."""
    dyn = resolve_dynamic(SCENARIO)
    config = SystemConfig.for_workload_category(dyn.category).scaled(DEFAULT_SCALE)
    trace = generate_workload_trace(
        dyn.base, dyn, config, RECORDS, seed=SEED, scale=DEFAULT_SCALE
    )
    return dyn, config, trace


def _replay(scenario, scheduler):
    dyn, config, trace = scenario
    design = build_design("R", TiledChip(config))
    simulator = TraceSimulator(
        design, CpiModel.for_workload(dyn.base), scheduler=scheduler
    )
    return simulator.run(trace)


@pytest.fixture(scope="module")
def fixed_result(scenario):
    return _replay(scenario, None)


@pytest.fixture(scope="module")
def greedy_result(scenario):
    return _replay(scenario, "greedy")


def test_greedy_beats_fixed_on_rnuca(fixed_result, greedy_result):
    """The headline claim: feedback-driven rebalancing lowers mean CPI."""
    assert greedy_result.stats.adaptive_migrations > 0
    assert greedy_result.cpi < fixed_result.cpi, (
        f"greedy CPI {greedy_result.cpi:.4f} should beat "
        f"fixed CPI {fixed_result.cpi:.4f}"
    )


def test_rebalancing_mechanism_is_capacity_relief(fixed_result, greedy_result):
    """The win comes from where the model says it should: the packed cores'
    slices stop thrashing, so off-chip traffic falls."""
    assert (
        greedy_result.metadata["offchip_rate"]
        < fixed_result.metadata["offchip_rate"]
    )
    imbalance = greedy_result.stats.window_imbalance
    assert imbalance[0] > 0.5  # packed launch: visibly imbalanced
    assert imbalance[-1] < imbalance[0] / 2  # repaired by the end
    # The moves were paid for, not free: re-owns flowed through the OS.
    assert greedy_result.stats.migration_reowns > 0


def test_fixed_scheduler_is_bit_identical_to_the_dynamics_path(scenario, fixed_result):
    """``scheduler=fixed`` must replay through the pre-adaptive code path."""
    explicit_fixed = _replay(scenario, "fixed")
    assert explicit_fixed.stats.to_dict() == fixed_result.stats.to_dict()
    assert explicit_fixed.cpi == fixed_result.cpi
    assert explicit_fixed.cpi_breakdown() == fixed_result.cpi_breakdown()
    assert explicit_fixed.metadata == fixed_result.metadata
    assert "scheduler" not in explicit_fixed.metadata


def test_adaptive_replay_is_deterministic(scenario, greedy_result):
    """Same trace + policy + seed: bit-identical statistics on a re-run."""
    again = _replay(scenario, "greedy")
    assert again.stats.to_dict() == greedy_result.stats.to_dict()
    assert again.cpi == greedy_result.cpi
