"""Figure 7: total CPI breakdown for the P/A/S/R designs."""

from repro.analysis.cpi_breakdown import FIG7_COMPONENTS, fig7_cpi_breakdown
from repro.analysis.reporting import format_table


def test_fig07_total_cpi_breakdown(benchmark, evaluation_suite):
    rows = benchmark(fig7_cpi_breakdown, evaluation_suite)
    print()
    print(
        format_table(
            rows,
            columns=["workload", "design", *FIG7_COMPONENTS, "total"],
            title="Figure 7 — total CPI breakdown (normalised to the private design)",
        )
    )

    by_key = {(r["workload"], r["design"]): r for r in rows}
    for workload in evaluation_suite.workloads:
        # Normalisation: the private design's stacked components sum to 1.
        assert abs(by_key[(workload, "P")]["total"] - 1.0) < 1e-6
        # R-NUCA never loses to both conventional designs (performance
        # stability across workloads, the paper's headline claim).
        rnuca = by_key[(workload, "R")]["total"]
        assert rnuca <= max(by_key[(workload, "P")]["total"], by_key[(workload, "S")]["total"]) + 1e-6
        # The re-classification overhead of R-NUCA is negligible (Section 5.3).
        assert by_key[(workload, "R")]["reclassification"] < 0.05
    # Only the private/ASR designs pay L1-to-L1 + coherence through the
    # directory; R-NUCA and shared never show a coherence component.
    assert all(by_key[(w, "R")]["busy"] > 0 for w in evaluation_suite.workloads)
