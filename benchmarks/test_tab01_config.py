"""Table 1: system and application parameters for the 8- and 16-core CMPs."""

from repro.cmp.config import SystemConfig
from repro.workloads.spec import WORKLOADS


def test_table1_system_parameters(benchmark):
    summaries = benchmark(
        lambda: [
            SystemConfig.server_16core().summary(),
            SystemConfig.multiprogrammed_8core().summary(),
        ]
    )
    print()
    print("Table 1 (left): system parameters")
    for summary in summaries:
        print(summary)
        print()
    print("Table 1 (right): workloads")
    for spec in WORKLOADS.values():
        print(f"  {spec.name:12s} [{spec.category}] {spec.description}")

    config16 = SystemConfig.server_16core()
    assert config16.l2_slice.hit_latency == 14
    assert SystemConfig.multiprogrammed_8core().l2_slice.hit_latency == 25
