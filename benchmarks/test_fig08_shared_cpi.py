"""Figure 8: CPI breakdown of L1-to-L1 transfers and L2 shared-data loads."""

from repro.analysis.cpi_breakdown import fig8_shared_data_cpi
from repro.analysis.reporting import format_table


def test_fig08_shared_data_cpi(benchmark, evaluation_suite):
    rows = benchmark(fig8_shared_data_cpi, evaluation_suite)
    print()
    print(
        format_table(
            rows,
            columns=[
                "workload",
                "design",
                "l2_shared_load",
                "l2_shared_load_coherence",
                "l1_to_l1",
            ],
            title="Figure 8 — shared-data CPI (normalised to the private design)",
        )
    )

    by_key = {(r["workload"], r["design"]): r for r in rows}
    for workload in evaluation_suite.workloads:
        shared_design = by_key[(workload, "S")]
        rnuca = by_key[(workload, "R")]
        private = by_key[(workload, "P")]
        # The shared and R-NUCA designs never engage an L2 coherence
        # mechanism; the private design does.
        assert shared_design["l2_shared_load_coherence"] == 0.0
        assert rnuca["l2_shared_load_coherence"] == 0.0
        assert private["l2_shared_load_coherence"] >= 0.0
    # Eliminating L2 coherence lowers the shared-data CPI of R-NUCA relative
    # to the private design on the server workloads (Section 5.3).
    server = [w for w in evaluation_suite.workloads if w not in ("mix",)]
    improved = sum(
        1
        for w in server
        if sum(v for k, v in by_key[(w, "R")].items() if isinstance(v, float))
        <= sum(v for k, v in by_key[(w, "P")].items() if isinstance(v, float)) + 1e-9
    )
    assert improved >= len(server) // 2
