"""Pinned benchmark: R-NUCA with LRU replacement is near-optimal.

The paper's claim is that R-NUCA achieves *near-optimal* block placement.
This benchmark makes the replacement half of that claim a regression gate:
on the server workloads, R-NUCA's online LRU replacement must stay within
a small CPI bound of the Belady/OPT oracle replaying the *same* trace on
the *same* chip.  Observed regret on the pinned geometry is well under
0.5%; the bound leaves headroom for trace-generator drift without letting
a replacement regression through.

The committed full-scale numbers live in BENCH_oracle.json (refreshed by
``repro bench --oracle``); this test uses the quick geometry so it stays
cheap enough for tier 1.
"""

from repro.analysis.oracle import placement_regret
from repro.analysis.reporting import format_table
from repro.sim.bench import QUICK_ORACLE_BENCH_RECORDS, QUICK_ORACLE_BENCH_SCALE

#: The two server workloads the near-optimality claim is checked on.
WORKLOADS = ("oltp-db2", "apache")

#: Max tolerated CPI regret of R-NUCA+LRU vs Belady/OPT, in percent.
MAX_REGRET_PCT = 2.0


def test_rnuca_lru_is_near_optimal(benchmark):
    def regret_rows():
        rows = []
        for workload in WORKLOADS:
            rows.extend(
                placement_regret(
                    workload,
                    designs=("R",),
                    num_records=QUICK_ORACLE_BENCH_RECORDS,
                    scale=QUICK_ORACLE_BENCH_SCALE,
                    seed=0,
                )
            )
        return rows

    rows = benchmark(regret_rows)
    print()
    print(
        format_table(
            [row.to_dict() for row in rows],
            columns=["workload", "design", "policy", "policy_cpi", "oracle_cpi", "cpi_regret_pct"],
            title="Belady/OPT placement regret — R-NUCA with LRU replacement",
        )
    )
    assert {row.workload for row in rows} == set(WORKLOADS)
    for row in rows:
        # The online policy should not beat the clairvoyant schedule (for
        # R the oracle is a strong heuristic, not a proven optimum, so a
        # hair of negative slack is tolerated rather than zero).
        assert row.cpi_regret_pct > -0.5, row.to_dict()
        # And it must stay near it: the paper's near-optimality claim.
        assert row.cpi_regret_pct < MAX_REGRET_PCT, row.to_dict()
