"""Section 5.2: accuracy of page-granularity classification."""

from repro.analysis.characterization import classification_accuracy
from repro.analysis.reporting import format_table


def test_sec52_classification_accuracy(benchmark, characterization_traces):
    def analyse():
        return {
            name: classification_accuracy(trace, page_size=config.page_size)
            for name, (trace, config) in characterization_traces.items()
        }

    accuracy = benchmark(analyse)
    rows = [{"workload": name, **values} for name, values in accuracy.items()]
    print()
    print(
        format_table(
            rows,
            columns=[
                "workload",
                "multi_class_page_access_fraction",
                "misclassified_access_fraction",
                "pages",
            ],
            title="Section 5.2 — page-granularity classification accuracy "
            "(paper: 6%-26% of accesses touch multi-class pages; <0.75% misclassified)",
        )
    )

    for name, values in accuracy.items():
        # Some pages hold more than one class, but the accesses they receive
        # are dominated by a single class, so misclassification stays small.
        assert values["multi_class_page_access_fraction"] < 0.6
        assert values["misclassified_access_fraction"] < 0.05
        assert (
            values["misclassified_access_fraction"]
            <= values["multi_class_page_access_fraction"] + 1e-9
        )
