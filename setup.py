"""Setuptools shim.

The environment used for development has no ``wheel`` package available, so
PEP-517 editable installs fail; this shim lets ``pip install -e . --no-use-pep517``
(and plain ``python setup.py develop``) work offline.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
