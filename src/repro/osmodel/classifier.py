"""OS-driven page classification (paper Section 4.3).

Classification happens at TLB-miss time and at page granularity:

* Requests from the L1 instruction cache are classified as *instructions*
  immediately, with no page-table involvement.
* Data requests consult the TLB.  On a miss the OS traps:

  - first touch marks the page *private* and records the accessor's CID;
  - a TLB miss by a different core re-classifies the page as *shared*
    (poison -> TLB shootdown -> block invalidation at the previous accessor's
    tile -> clear Private -> unpoison), unless the OS knows the accessing
    thread simply migrated, in which case the page stays private and only the
    owner CID is updated.

The classifier charges an OS-trap latency to every TLB miss and a much larger
re-classification latency to every private->shared transition (or
migration re-own); the paper shows this overhead is negligible and the
benchmarks confirm the same here.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ClassificationError
from repro.osmodel.page_table import PageClass, PageTable, PageTableEntry
from repro.osmodel.scheduler import ThreadScheduler
from repro.osmodel.tlb import Tlb, TlbEntry

#: Cycles charged for an OS trap servicing an ordinary TLB miss.
DEFAULT_TRAP_LATENCY = 30

#: Cycles charged for a private->shared re-classification (poison, TLB
#: shootdown, block invalidation at the previous accessor, page-table update).
DEFAULT_RECLASSIFY_LATENCY = 5000

#: Shootdown callback signature: (page_number, previous_owner_tile) -> number
#: of cache blocks invalidated.  Provided by the cache design, which knows
#: where the page's blocks live.
ShootdownCallback = Callable[[int, int], int]


@dataclass
class ClassificationEvent:
    """What the OS did while classifying one access."""

    kind: str
    page_number: int
    page_class: PageClass
    latency_cycles: int = 0
    shootdown_blocks: int = 0

    #: Event kinds.
    TLB_HIT = "tlb_hit"
    FIRST_TOUCH = "first_touch"
    TLB_FILL = "tlb_fill"
    RECLASSIFY_TO_SHARED = "reclassify_to_shared"
    MIGRATION_REOWN = "migration_reown"
    INSTRUCTION = "instruction"


class PageClassifier:
    """The OS component that drives R-NUCA's access classification."""

    def __init__(
        self,
        num_cores: int,
        *,
        page_table: PageTable | None = None,
        scheduler: ThreadScheduler | None = None,
        tlb_entries: int = 512,
        trap_latency: int = DEFAULT_TRAP_LATENCY,
        reclassify_latency: int = DEFAULT_RECLASSIFY_LATENCY,
        migration_window: int | None = None,
    ) -> None:
        if num_cores <= 0:
            raise ClassificationError("classifier needs at least one core")
        self.num_cores = num_cores
        self.page_table = page_table if page_table is not None else PageTable()
        self.scheduler = (
            scheduler
            if scheduler is not None
            else ThreadScheduler(num_cores, migration_window=migration_window)
        )
        self.tlbs = [Tlb(core, entries=tlb_entries) for core in range(num_cores)]
        self.trap_latency = trap_latency
        self.reclassify_latency = reclassify_latency
        # Statistics
        self.instruction_accesses = 0
        self.data_accesses = 0
        self.first_touches = 0
        self.reclassifications = 0
        self.migration_reowns = 0
        self.total_overhead_cycles = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def classify_access(
        self,
        core_id: int,
        page_number: int,
        *,
        instruction: bool,
        thread_id: int | None = None,
        shootdown: ShootdownCallback | None = None,
    ) -> tuple[PageClass, ClassificationEvent]:
        """Classify one access and return (class, OS event).

        ``shootdown`` is invoked when a page moves away from its previous
        owner so the design can invalidate that tile's cached copies.
        """
        page_class, kind, latency, shootdown_blocks = self.classify_fast(
            core_id,
            page_number,
            instruction=instruction,
            thread_id=thread_id,
            shootdown=shootdown,
        )
        event = ClassificationEvent(
            kind=kind,
            page_number=page_number,
            page_class=page_class,
            latency_cycles=latency,
            shootdown_blocks=shootdown_blocks,
        )
        return page_class, event

    def classify_fast(
        self,
        core_id: int,
        page_number: int,
        *,
        instruction: bool,
        thread_id: int | None = None,
        shootdown: ShootdownCallback | None = None,
    ) -> tuple[PageClass, str, int, int]:
        """Allocation-free :meth:`classify_access`.

        Returns ``(page class, event kind, latency cycles, shootdown
        blocks)`` as a flat tuple so the simulation hot loop never builds a
        :class:`ClassificationEvent` for the overwhelmingly common TLB-hit
        and instruction cases.
        """
        self._check_core(core_id)
        if instruction:
            self.instruction_accesses += 1
            entry = self.page_table.get_or_create(page_number)
            if entry.page_class is not PageClass.INSTRUCTION and entry.owner_cid is None:
                # Never touched as data: adopt the instruction classification.
                entry.mark_instruction()
            return PageClass.INSTRUCTION, ClassificationEvent.INSTRUCTION, 0, 0

        self.data_accesses += 1
        cached = self.tlbs[core_id].lookup(page_number)
        if cached is not None:
            return cached.page_class, ClassificationEvent.TLB_HIT, 0, 0
        return self._handle_tlb_miss(
            core_id, page_number, thread_id=thread_id, shootdown=shootdown
        )

    def classification_of(self, page_number: int) -> PageClass | None:
        """Current page-table classification (None if never touched)."""
        entry = self.page_table.lookup(page_number)
        return entry.page_class if entry else None

    # ------------------------------------------------------------------ #
    # TLB-miss handling (the Section 4.3 state machine)
    # ------------------------------------------------------------------ #
    def _handle_tlb_miss(
        self,
        core_id: int,
        page_number: int,
        *,
        thread_id: int | None,
        shootdown: ShootdownCallback | None,
    ) -> tuple[PageClass, str, int, int]:
        entry = self.page_table.lookup(page_number)
        if entry is None:
            return self._first_touch(core_id, page_number)
        if entry.poisoned:
            # TLB misses for a poisoned page wait for the re-classification
            # to complete; in the serialized model this simply costs the
            # re-classification latency again.
            self.total_overhead_cycles += self.trap_latency
        if entry.page_class is PageClass.SHARED:
            return self._fill(core_id, entry, ClassificationEvent.TLB_FILL)
        if entry.page_class is PageClass.INSTRUCTION:
            # A data access to a page previously seen only as instructions:
            # treat it as a first data touch by this core.
            entry.mark_private(core_id)
            return self._fill(core_id, entry, ClassificationEvent.TLB_FILL)

        # Private page.
        if entry.owner_cid == core_id:
            return self._fill(core_id, entry, ClassificationEvent.TLB_FILL)
        # Re-own only when the accessing thread migrated *away from the
        # page's owner core* — a thread that migrated between unrelated
        # cores and then touches the page is a genuine new sharer.
        if thread_id is not None and self.scheduler.migrated_from(
            thread_id, entry.owner_cid
        ):
            return self._migration_reown(core_id, entry, shootdown)
        return self._reclassify_to_shared(core_id, entry, shootdown)

    def _first_touch(
        self, core_id: int, page_number: int
    ) -> tuple[PageClass, str, int, int]:
        entry = self.page_table.get_or_create(page_number)
        entry.mark_private(core_id)
        self.first_touches += 1
        self.total_overhead_cycles += self.trap_latency
        self.tlbs[core_id].fill(
            TlbEntry(
                page_number=page_number,
                page_class=PageClass.PRIVATE,
                private=True,
                owner_cid=core_id,
            )
        )
        return (
            PageClass.PRIVATE,
            ClassificationEvent.FIRST_TOUCH,
            self.trap_latency,
            0,
        )

    def _fill(
        self, core_id: int, entry: PageTableEntry, kind: str
    ) -> tuple[PageClass, str, int, int]:
        self.total_overhead_cycles += self.trap_latency
        self.tlbs[core_id].fill(
            TlbEntry(
                page_number=entry.page_number,
                page_class=entry.page_class,
                private=entry.private,
                owner_cid=entry.owner_cid,
            )
        )
        return entry.page_class, kind, self.trap_latency, 0

    def _migration_reown(
        self,
        core_id: int,
        entry: PageTableEntry,
        shootdown: ShootdownCallback | None,
    ) -> tuple[PageClass, str, int, int]:
        previous_owner = entry.owner_cid
        invalidated = 0
        if shootdown is not None and previous_owner is not None:
            invalidated = shootdown(entry.page_number, previous_owner)
        self._shootdown_tlbs(entry.page_number, exclude=core_id)
        entry.mark_private(core_id)
        entry.migrations += 1
        self.migration_reowns += 1
        self.total_overhead_cycles += self.reclassify_latency
        self.tlbs[core_id].fill(
            TlbEntry(
                page_number=entry.page_number,
                page_class=PageClass.PRIVATE,
                private=True,
                owner_cid=core_id,
            )
        )
        return (
            PageClass.PRIVATE,
            ClassificationEvent.MIGRATION_REOWN,
            self.reclassify_latency,
            invalidated,
        )

    def _reclassify_to_shared(
        self,
        core_id: int,
        entry: PageTableEntry,
        shootdown: ShootdownCallback | None,
    ) -> tuple[PageClass, str, int, int]:
        previous_owner = entry.owner_cid
        entry.poisoned = True
        invalidated = 0
        if shootdown is not None and previous_owner is not None:
            invalidated = shootdown(entry.page_number, previous_owner)
        self._shootdown_tlbs(entry.page_number, exclude=None)
        entry.mark_shared()
        entry.poisoned = False
        entry.reclassifications += 1
        self.reclassifications += 1
        self.total_overhead_cycles += self.reclassify_latency
        self.tlbs[core_id].fill(
            TlbEntry(
                page_number=entry.page_number,
                page_class=PageClass.SHARED,
                private=False,
            )
        )
        return (
            PageClass.SHARED,
            ClassificationEvent.RECLASSIFY_TO_SHARED,
            self.reclassify_latency,
            invalidated,
        )

    def _shootdown_tlbs(self, page_number: int, exclude: int | None) -> int:
        count = 0
        for tlb in self.tlbs:
            if exclude is not None and tlb.core_id == exclude:
                continue
            if tlb.shootdown(page_number):
                count += 1
        return count

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ClassificationError(
                f"core {core_id} out of range (num_cores={self.num_cores})"
            )
