"""Operating-system model: page table, TLBs, page classification, scheduling."""

from repro.osmodel.classifier import ClassificationEvent, PageClassifier
from repro.osmodel.page_table import PageClass, PageTable, PageTableEntry
from repro.osmodel.scheduler import ThreadScheduler
from repro.osmodel.tlb import Tlb, TlbEntry

__all__ = [
    "PageClass",
    "PageTableEntry",
    "PageTable",
    "Tlb",
    "TlbEntry",
    "PageClassifier",
    "ClassificationEvent",
    "ThreadScheduler",
]
