"""Page table extended with the R-NUCA classification fields.

Section 4.3: the OS extends each page-table entry with a *Private* bit that
records the current classification and a field holding the core ID (CID) of
the last core to access the page.  Re-classification from private to shared
goes through a transient *poisoned* state during which TLB misses for the
page are stalled.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import ClassificationError


class PageClass(enum.Enum):
    """The three R-NUCA access classes of Section 3.2."""

    INSTRUCTION = "instruction"
    PRIVATE = "private"
    SHARED = "shared"


@dataclass(slots=True)
class PageTableEntry:
    """One page's OS-visible classification state."""

    page_number: int
    page_class: PageClass = PageClass.PRIVATE
    #: The Private bit of Section 4.3 (set for private data pages).
    private: bool = True
    #: CID of the last core to access the page (meaningful while private).
    owner_cid: int | None = None
    #: Poisoned bit: set during private->shared re-classification.
    poisoned: bool = False
    #: Number of re-classification events this page has undergone.
    reclassifications: int = 0
    #: Number of owner changes caused by thread migration.
    migrations: int = 0
    #: Extra OS metadata (e.g. fixed-center cluster hints for extensions).
    metadata: dict = field(default_factory=dict)

    def mark_shared(self) -> None:
        if self.page_class is PageClass.INSTRUCTION:
            raise ClassificationError(
                f"instruction page {self.page_number:#x} cannot become shared data"
            )
        self.page_class = PageClass.SHARED
        self.private = False
        self.owner_cid = None

    def mark_private(self, owner_cid: int) -> None:
        self.page_class = PageClass.PRIVATE
        self.private = True
        self.owner_cid = owner_cid

    def mark_instruction(self) -> None:
        self.page_class = PageClass.INSTRUCTION
        self.private = False
        self.owner_cid = None


class PageTable:
    """All page-table entries, keyed by page number."""

    def __init__(self) -> None:
        self._entries: dict[int, PageTableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page_number: int) -> bool:
        return page_number in self._entries

    def __iter__(self) -> Iterator[PageTableEntry]:
        return iter(self._entries.values())

    def lookup(self, page_number: int) -> PageTableEntry | None:
        return self._entries.get(page_number)

    def get_or_create(self, page_number: int) -> PageTableEntry:
        entry = self._entries.get(page_number)
        if entry is None:
            entry = PageTableEntry(page_number=page_number)
            self._entries[page_number] = entry
        return entry

    def pages_of_class(self, page_class: PageClass) -> list[PageTableEntry]:
        return [e for e in self._entries.values() if e.page_class is page_class]

    def clear(self) -> None:
        self._entries.clear()
