"""Per-core TLB holding the classification delivered by the OS.

The TLB fill carries the page's classification (the Private bit, plus the
shared/instruction distinction) so that the core can route each access to the
correct cluster without consulting the OS again.  Shootdowns remove an entry
from every core's TLB; they are issued during page re-classification.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.osmodel.page_table import PageClass


@dataclass(slots=True)
class TlbEntry:
    """A cached translation plus the R-NUCA classification bits."""

    page_number: int
    page_class: PageClass
    private: bool
    owner_cid: int | None = None


class Tlb:
    """A per-core, fully-associative, LRU TLB."""

    def __init__(self, core_id: int, entries: int = 512) -> None:
        if entries <= 0:
            raise ConfigurationError("TLB must have at least one entry")
        self.core_id = core_id
        self.capacity = entries
        self._entries: OrderedDict[int, TlbEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.shootdowns = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page_number: int) -> bool:
        return page_number in self._entries

    def lookup(self, page_number: int) -> TlbEntry | None:
        """Probe the TLB, updating LRU order and hit/miss statistics."""
        entry = self._entries.get(page_number)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(page_number)
        self.hits += 1
        return entry

    def fill(self, entry: TlbEntry) -> None:
        """Install a translation after a TLB miss is serviced by the OS."""
        if entry.page_number in self._entries:
            self._entries.move_to_end(entry.page_number)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[entry.page_number] = entry

    def shootdown(self, page_number: int) -> bool:
        """Remove a translation (returns True if it was present)."""
        present = self._entries.pop(page_number, None) is not None
        if present:
            self.shootdowns += 1
        return present

    def clear(self) -> None:
        self._entries.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
