"""Thread-to-core scheduling.

The OS is fully aware of thread scheduling (Section 4.3), which is what lets
it distinguish a page whose accessing *thread* migrated to a new core from a
page that is genuinely shared by multiple threads.  The scheduler keeps the
thread-to-core mapping and a history of migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class MigrationRecord:
    """One thread migration event."""

    thread_id: int
    from_core: int
    to_core: int
    time: int


@dataclass
class ThreadScheduler:
    """Tracks which core each thread runs on."""

    num_cores: int
    _thread_to_core: dict[int, int] = field(default_factory=dict)
    migrations: list[MigrationRecord] = field(default_factory=list)
    _clock: int = 0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("scheduler needs at least one core")

    def schedule(self, thread_id: int, core_id: int) -> None:
        """Pin (or initially place) a thread on a core."""
        self._check_core(core_id)
        self._thread_to_core[thread_id] = core_id

    def core_of(self, thread_id: int) -> int:
        """Core currently running a thread (threads default to core == id)."""
        return self._thread_to_core.get(thread_id, thread_id % self.num_cores)

    def thread_on_core(self, core_id: int) -> list[int]:
        return [t for t, c in self._thread_to_core.items() if c == core_id]

    def migrate(self, thread_id: int, to_core: int) -> MigrationRecord:
        """Move a thread to a new core and record the migration."""
        self._check_core(to_core)
        from_core = self.core_of(thread_id)
        self._thread_to_core[thread_id] = to_core
        self._clock += 1
        record = MigrationRecord(
            thread_id=thread_id, from_core=from_core, to_core=to_core, time=self._clock
        )
        self.migrations.append(record)
        return record

    def recently_migrated(self, thread_id: int) -> bool:
        """Whether the thread's most recent event was a migration.

        The page classifier uses this to decide that a CID mismatch on a
        private page is due to thread migration rather than sharing.
        """
        for record in reversed(self.migrations):
            if record.thread_id == thread_id:
                return True
        return False

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ConfigurationError(
                f"core {core_id} out of range (num_cores={self.num_cores})"
            )
