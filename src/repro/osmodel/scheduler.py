"""Thread-to-core scheduling.

The OS is fully aware of thread scheduling (Section 4.3), which is what lets
it distinguish a page whose accessing *thread* migrated to a new core from a
page that is genuinely shared by multiple threads.  The scheduler keeps the
thread-to-core mapping and a history of migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class MigrationRecord:
    """One thread migration event."""

    thread_id: int
    from_core: int
    to_core: int
    time: int


@dataclass
class ThreadScheduler:
    """Tracks which core each thread runs on.

    ``migration_window`` bounds how long a migration keeps counting as
    *recent* for :meth:`recently_migrated`, measured in scheduler clock
    ticks (the clock advances once per migration).  ``None`` — the
    default, and the seed behaviour — means a migrated thread is treated
    as recently migrated forever.
    """

    num_cores: int
    migration_window: int | None = None
    _thread_to_core: dict[int, int] = field(default_factory=dict)
    migrations: list[MigrationRecord] = field(default_factory=list)
    _clock: int = 0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("scheduler needs at least one core")
        if self.migration_window is not None and self.migration_window < 0:
            raise ConfigurationError("migration_window cannot be negative")

    def schedule(self, thread_id: int, core_id: int) -> None:
        """Pin (or initially place) a thread on a core."""
        self._check_core(core_id)
        self._thread_to_core[thread_id] = core_id

    def core_of(self, thread_id: int) -> int:
        """Core currently running a thread (threads default to core == id)."""
        return self._thread_to_core.get(thread_id, thread_id % self.num_cores)

    def thread_on_core(self, core_id: int) -> list[int]:
        return [t for t, c in self._thread_to_core.items() if c == core_id]

    def migrate(self, thread_id: int, to_core: int) -> MigrationRecord:
        """Move a thread to a new core and record the migration."""
        self._check_core(to_core)
        from_core = self.core_of(thread_id)
        self._thread_to_core[thread_id] = to_core
        self._clock += 1
        record = MigrationRecord(
            thread_id=thread_id, from_core=from_core, to_core=to_core, time=self._clock
        )
        self.migrations.append(record)
        return record

    def recently_migrated(self, thread_id: int) -> bool:
        """Whether the thread migrated within the migration window.

        The page classifier uses this to decide that a CID mismatch on a
        private page is due to thread migration rather than sharing.  With
        the default ``migration_window=None`` any past migration counts;
        with a window of ``w``, a migration only counts while at most ``w``
        further migrations have happened since (the scheduler clock advances
        once per migration, so ``w=0`` means "the very last migration").
        """
        window = self.migration_window
        for record in reversed(self.migrations):
            if window is not None and self._clock - record.time > window:
                return False
            if record.thread_id == thread_id:
                return True
        return False

    def migrated_from(self, thread_id: int, from_core: int | None) -> bool:
        """Whether the thread migrated away from ``from_core`` in the window.

        This is the page classifier's re-own test: a CID mismatch on a
        private page is attributable to migration only when the accessing
        thread's (windowed) migration history includes a move *away from
        the page's owner core* — a thread that migrated between two
        unrelated cores and then touches the page is a genuine new sharer,
        not the owner following itself.
        """
        if from_core is None:
            return False
        window = self.migration_window
        for record in reversed(self.migrations):
            if window is not None and self._clock - record.time > window:
                return False
            if record.thread_id == thread_id and record.from_core == from_core:
                return True
        return False

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ConfigurationError(
                f"core {core_id} out of range (num_cores={self.num_cores})"
            )
