"""The conventional address-interleaved shared L2 design (paper Section 2.2).

Every block has a single, fixed home slice chosen by the address bits above
the set index.  No two frames ever cache the same block, so the aggregate
capacity is maximal and no L2 coherence mechanism is needed — the directory
at the home slice only covers the L1 caches.  The cost is latency: private
data and instructions are scattered across the whole die, so most accesses
pay a round trip to a remote slice.
"""

from __future__ import annotations

from repro.cache.block import CoherenceState
from repro.designs.base import (
    L2,
    AccessOutcome,
    CacheDesign,
    L2Access,
)


class SharedDesign(CacheDesign):
    """Statically address-interleaved shared L2."""

    short_name = "S"
    name = "shared"

    def _service(self, access: L2Access, outcome: AccessOutcome) -> None:
        home = self.chip.home_slice(access.block_address)
        outcome.target_slice = home
        tile = self._tiles[home]

        # A dirty copy in a remote L1 must supply the data (L1-to-L1 via the
        # home slice, which holds the L1 directory state).
        if not access.is_instruction:
            owner = self.l1.dirty_owner(access.block_address, access.core)
            if owner is not None:
                self.remote_l1_transfer(access, home, owner, outcome)
                # The home slice keeps (or receives) the up-to-date data.
                tile.l2.insert_block(
                    access.block_address,
                    state=CoherenceState.OWNED,
                    dirty=True,
                )
                return

        # The L2 component is written exactly once per access below, so the
        # direct component store is equivalent to outcome.add(L2, ...).
        latency = self.network_round_trip(access.core, home) + self._l2_hit_latency
        hit = tile.l2.lookup_block(access.block_address, access.is_write)
        if hit is not None:
            outcome.components[L2] = latency
            outcome.hit_where = "l2_local" if home == access.core else "l2_remote"
        else:
            # Check the slice's victim buffer before going off chip.
            victim_hit = tile.l2_victim.extract(access.block_address)
            if victim_hit is not None:
                tile.l2.insert_block(
                    access.block_address,
                    state=victim_hit.state,
                    dirty=victim_hit.dirty,
                )
                outcome.components[L2] = latency
                outcome.hit_where = "l2_local" if home == access.core else "l2_remote"
            else:
                outcome.components[L2] = latency
                self.offchip_fetch(access, home, outcome)
                self._fill(tile, access)

        if access.is_write:
            # Invalidate the other L1 copies (store latency itself is hidden
            # by the store buffer and accounted under "other" by the paper).
            self.l1.invalidate_all_remote(access.block_address, exclude=access.core)

    def _fill(self, tile, access: L2Access) -> None:
        state = (
            CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED
        )
        _, victim = tile.l2.insert_block(
            access.block_address, state=state, dirty=access.is_write
        )
        if victim is not None:
            displaced = tile.l2_victim.insert(victim)
            if displaced is not None and displaced.dirty:
                self.memory.access(tile.tile_id, displaced.address, write=True)
