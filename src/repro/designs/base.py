"""Common interface and shared machinery for the cache designs.

Every design consumes :class:`L2Access` requests (one per trace record) and
returns an :class:`AccessOutcome` that carries the stall latency broken into
the CPI components the paper plots (L1-to-L1, L2, off-chip, other,
re-classification).  The simulation engine is therefore completely
design-agnostic.

The base class also owns the **L1 residency tracker**: a per-core model of
the L1 data cache used to (a) find remote dirty copies that must be supplied
by an L1-to-L1 transfer, (b) generate the L1-eviction stream that ASR's
replication decisions feed on, and (c) honour invalidations.  The trace is
already the post-L1 (L2 reference) stream, so the tracker never filters
accesses; it only mirrors what the L1s would contain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cache.block import AccessType, CacheBlock, CoherenceState
from repro.cache.cache_array import CacheArray
from repro.cache.policies import DEFAULT_POLICY, build_policy, normalize_policy
from repro.cmp.chip import TiledChip
from repro.osmodel.page_table import PageClass

# CPI component names (match the paper's Figure 7 legend).
BUSY = "busy"
L1_TO_L1 = "l1_to_l1"
L2 = "l2"
OFF_CHIP = "offchip"
OTHER = "other"
RECLASSIFICATION = "reclassification"

#: All stall components a design may report (busy is added by the engine).
STALL_COMPONENTS = (L1_TO_L1, L2, OFF_CHIP, OTHER, RECLASSIFICATION)

#: Latency of probing a directory slice or an L1 tag array (cycles).
DIRECTORY_LATENCY = 2
L1_PROBE_LATENCY = 2

_MODIFIED = CoherenceState.MODIFIED
_SHARED = CoherenceState.SHARED


class L2Access:
    """One L2 reference presented to a design.

    Mutable by design: the simulation hot loop reuses a single instance,
    rewriting its fields per trace record instead of allocating sixty
    thousand of them per run.  ``is_instruction``/``is_write`` are plain
    precomputed attributes (not properties) for the same reason, and
    ``page_number`` carries the page number precomputed once per trace
    (``None`` means "derive it from ``byte_address``").
    """

    __slots__ = (
        "core",
        "block_address",
        "byte_address",
        "access_type",
        "thread_id",
        "true_class",
        "page_number",
        "is_instruction",
        "is_write",
    )

    def __init__(
        self,
        core: int = 0,
        block_address: int = 0,
        byte_address: int = 0,
        access_type: AccessType = AccessType.LOAD,
        thread_id: int = 0,
        true_class: str | None = None,
        page_number: int | None = None,
    ) -> None:
        self.core = core
        self.block_address = block_address
        self.byte_address = byte_address
        self.access_type = access_type
        self.thread_id = thread_id
        self.true_class = true_class
        self.page_number = page_number
        self.is_instruction = access_type is AccessType.INSTRUCTION
        self.is_write = access_type is AccessType.STORE

    @property
    def data_class(self) -> str:
        """Coarse ground-truth class: instruction / private / shared."""
        if self.true_class is None:
            return "instruction" if self.is_instruction else "shared"
        if self.true_class.startswith("shared"):
            return "shared"
        return self.true_class

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"L2Access(core={self.core}, block_address={self.block_address:#x}, "
            f"access_type={self.access_type.value})"
        )


@dataclass(slots=True)
class AccessOutcome:
    """Latency and bookkeeping for one serviced access."""

    components: dict[str, float] = field(default_factory=dict)
    hit_where: str = "l2_local"  # l2_local | l2_remote | l1_remote | offchip
    target_slice: int = 0
    offchip: bool = False
    #: True when the access engaged the L2 coherence mechanism (remote L2
    #: access through the directory in the private/ASR designs).
    coherence: bool = False
    #: Classification used by the design (R-NUCA) or ground truth otherwise.
    page_class: PageClass | None = None

    @property
    def latency(self) -> float:
        return sum(self.components.values())

    def add(self, component: str, cycles: float) -> None:
        if cycles:
            self.components[component] = self.components.get(component, 0.0) + cycles

    def reset(self) -> None:
        """Restore the defaults so one instance can be reused per access."""
        self.components.clear()
        self.hit_where = "l2_local"
        self.target_slice = 0
        self.offchip = False
        self.coherence = False
        self.page_class = None


class L1Tracker:
    """Mirrors each core's L1 data cache contents."""

    def __init__(self, chip: TiledChip) -> None:
        self._arrays = [
            CacheArray(chip.config.l1d, name=f"l1track{core}")
            for core in range(chip.num_tiles)
        ]
        #: block address -> {core: state} for fast remote-copy lookup.
        self._holders: dict[int, dict[int, CoherenceState]] = {}

    def holders(self, block_address: int) -> dict[int, CoherenceState]:
        return self._holders.get(block_address, {})

    def dirty_owner(self, block_address: int, exclude: int = -1) -> int | None:
        """Core (other than ``exclude``) holding a modified copy, if any."""
        holders = self._holders.get(block_address)
        if holders is None:
            return None
        for core, state in holders.items():
            if core != exclude and state.can_write:
                return core
        return None

    def remote_holders(self, block_address: int, *, exclude: int) -> list[int]:
        return [c for c in self.holders(block_address) if c != exclude]

    def fill(
        self, core: int, block_address: int, write: bool = False
    ) -> CacheBlock | None:
        """Install a block in a core's L1; returns the evicted block, if any.

        Runs once per data access, so :meth:`CacheArray.insert_block` is
        inlined here (same state updates, same statistics).
        """
        state = _MODIFIED if write else _SHARED
        array = self._arrays[core]
        now = array._now = array._now + 1
        cache_set = array._sets[block_address & array._set_mask]
        existing = cache_set.get(block_address)
        victim: CacheBlock | None = None
        if existing is not None:
            existing.dirty = existing.dirty or write
            existing.state = state
            existing.last_access = now
            existing.access_count += 1
            cache_set.move_to_end(block_address)
        else:
            if len(cache_set) >= array._associativity:
                _, victim = cache_set.popitem(last=False)
                array.evictions += 1
            cache_set[block_address] = CacheBlock(
                address=block_address,
                state=state,
                dirty=write,
                last_access=now,
                metadata={},
            )
        holders = self._holders.get(block_address)
        if holders is None:
            holders = self._holders[block_address] = {}
        holders[core] = state
        if victim is not None:
            self._forget(core, victim.address)
        return victim

    def downgrade(self, core: int, block_address: int) -> None:
        """Remote read observed: a modified copy becomes owned/shared."""
        block = self._arrays[core].peek(block_address)
        if block is not None and block.state.can_write:
            block.state = CoherenceState.OWNED
            self._holders.setdefault(block_address, {})[core] = CoherenceState.OWNED

    def invalidate(self, core: int, block_address: int) -> None:
        self._arrays[core].invalidate(block_address)
        self._forget(core, block_address)

    def invalidate_all_remote(self, block_address: int, *, exclude: int) -> int:
        """Invalidate every copy except the requestor's; returns the count."""
        others = self.remote_holders(block_address, exclude=exclude)
        for core in others:
            self.invalidate(core, block_address)
        return len(others)

    def _forget(self, core: int, block_address: int) -> None:
        holders = self._holders.get(block_address)
        if holders is not None:
            holders.pop(core, None)
            if not holders:
                del self._holders[block_address]


class CacheDesign(ABC):
    """Interface every cache design implements."""

    #: Single-letter label used in the paper's figures (P/A/S/R/I).
    short_name: str = "?"
    name: str = "design"

    def __init__(
        self,
        chip: TiledChip,
        *,
        l2_policy: str | None = None,
        policy_seed: int = 0,
    ) -> None:
        self.chip = chip
        self.config = chip.config
        self.network = chip.network
        self.memory = chip.memory
        self.l1 = L1Tracker(chip)
        self.accesses = 0
        self.offchip_accesses = 0
        # L2 replacement policy: "lru" (the default) keeps the native inlined
        # LRU path in CacheArray; anything else installs a per-slice
        # ReplacementPolicy seeded deterministically per tile.
        self.l2_policy = normalize_policy(l2_policy)
        self.policy_seed = policy_seed
        if self.l2_policy != DEFAULT_POLICY:
            for tile in chip.tiles:
                tile.l2.set_policy(
                    build_policy(
                        self.l2_policy,
                        tile.l2.num_sets,
                        tile.l2.associativity,
                        seed=(policy_seed * 1_000_003 + tile.tile_id) & 0xFFFFFFFF,
                    )
                )
        # Hot-path caches: all static for the design's lifetime.
        self._l2_hit_latency = chip.config.l2_slice.hit_latency
        self._one_way = chip.network.one_way_table
        self._wants_l1_evictions = (
            type(self).on_l1_eviction is not CacheDesign.on_l1_eviction
        )
        self._l1_fill = self.l1.fill
        self._tiles = chip.tiles

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def access(
        self, access: L2Access, outcome: AccessOutcome | None = None
    ) -> AccessOutcome:
        """Service one L2 reference.

        ``outcome`` may be a caller-owned instance to reuse across accesses
        (the hot loop passes the same one every time); it is reset here.
        """
        self.accesses += 1
        if outcome is None:
            outcome = AccessOutcome()
        else:
            # Inline AccessOutcome.reset - this wrapper runs once per record.
            outcome.components.clear()
            outcome.hit_where = "l2_local"
            outcome.target_slice = 0
            outcome.offchip = False
            outcome.coherence = False
            outcome.page_class = None
        self._service(access, outcome)
        if outcome.offchip:
            self.offchip_accesses += 1
        # Mirror the fill into the requestor's L1 (data accesses only).
        if not access.is_instruction:
            victim = self._l1_fill(access.core, access.block_address, access.is_write)
            if victim is not None and self._wants_l1_evictions:
                self.on_l1_eviction(access.core, victim)
        return outcome

    @abstractmethod
    def _service(self, access: L2Access, outcome: AccessOutcome) -> None:
        """Design-specific handling of one access, written into ``outcome``."""

    def on_l1_eviction(self, core: int, victim: CacheBlock) -> None:
        """Hook invoked when the requesting core's L1 evicts a block."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def l2_hit_latency(self) -> int:
        return self._l2_hit_latency

    def network_round_trip(self, src: int, dst: int) -> int:
        """Request/response latency; zero network cost for the local slice."""
        if src == dst:
            return 0
        return 2 * self._one_way[src][dst]

    def remote_l1_transfer(
        self, access: L2Access, home: int, owner: int, outcome: AccessOutcome
    ) -> None:
        """Account an L1-to-L1 transfer through the home/directory tile."""
        latency = (
            self.network.one_way_latency(access.core, home)
            + DIRECTORY_LATENCY
            + self.network.one_way_latency(home, owner)
            + L1_PROBE_LATENCY
            + self.network.one_way_latency(owner, access.core)
        )
        outcome.add(L1_TO_L1, latency)
        outcome.hit_where = "l1_remote"
        outcome.target_slice = home
        if access.is_write:
            self.l1.invalidate_all_remote(access.block_address, exclude=access.core)
        else:
            self.l1.downgrade(owner, access.block_address)

    def offchip_fetch(
        self, access: L2Access, issuing_tile: int, outcome: AccessOutcome
    ) -> None:
        """Account an off-chip memory fetch issued from ``issuing_tile``."""
        latency = self.memory.access(
            issuing_tile, access.block_address, write=False
        )
        if issuing_tile != access.core:
            latency += self.network.one_way_latency(access.core, issuing_tile)
        outcome.add(OFF_CHIP, latency)
        outcome.offchip = True
        outcome.hit_where = "offchip"

    @property
    def offchip_rate(self) -> float:
        return self.offchip_accesses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(chip={self.chip.config.name!r})"
