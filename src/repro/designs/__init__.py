"""The five last-level cache designs evaluated in the paper.

* ``private`` (P): each tile's L2 slice is a private cache, kept coherent by
  an (optimistically zero-area) full-map distributed directory.
* ``asr`` (A): the private design plus Adaptive Selective Replication of
  clean shared blocks [Beckmann et al., MICRO 2006].
* ``shared`` (S): a single address-interleaved shared L2.
* ``rnuca`` (R): the paper's contribution.
* ``ideal`` (I): aggregate capacity at local-slice latency (upper bound).
"""

from repro.designs.asr import AsrDesign
from repro.designs.base import AccessOutcome, CacheDesign, L2Access
from repro.designs.ideal import IdealDesign
from repro.designs.private import PrivateDesign
from repro.designs.rnuca_design import RNucaDesign
from repro.designs.shared import SharedDesign

#: Short letter -> design class, following the paper's P/A/S/R/I labels.
DESIGNS = {
    "P": PrivateDesign,
    "A": AsrDesign,
    "S": SharedDesign,
    "R": RNucaDesign,
    "I": IdealDesign,
}

#: Long-name aliases accepted by :func:`build_design`.
_ALIASES = {
    "private": "P",
    "asr": "A",
    "shared": "S",
    "rnuca": "R",
    "r-nuca": "R",
    "ideal": "I",
}


def normalize_design(name: str) -> str:
    """Canonicalise a design letter ("P") or long name ("private") to a letter."""
    key = _ALIASES.get(name.lower(), name.upper())
    if key not in DESIGNS:
        known = ", ".join(sorted(set(DESIGNS) | set(_ALIASES)))
        raise ValueError(f"unknown design {name!r}; known designs: {known}")
    return key


def build_design(name: str, chip, **kwargs):
    """Instantiate a design by letter ("P") or by name ("private")."""
    return DESIGNS[normalize_design(name)](chip, **kwargs)


__all__ = [
    "L2Access",
    "AccessOutcome",
    "CacheDesign",
    "PrivateDesign",
    "AsrDesign",
    "SharedDesign",
    "RNucaDesign",
    "IdealDesign",
    "DESIGNS",
    "build_design",
    "normalize_design",
]
