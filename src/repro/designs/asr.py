"""Adaptive Selective Replication (ASR) on top of the private design.

ASR [Beckmann, Marty and Wood — MICRO 2006] starts from the private design
and controls how aggressively *clean shared* blocks are replicated in the
local L2 slice when they are evicted from the L1.  Allocating locally makes
the next local access fast but consumes local capacity; skipping allocation
preserves capacity but forces the next access to fetch the block from a
remote tile through the directory.

Following the paper's methodology (Section 5.1), this implementation offers
six variants: an *adaptive* one that periodically nudges the allocation
probability toward whichever choice has recently been cheaper, and five
static variants with allocation probabilities 0, 0.25, 0.5, 0.75 and 1.  The
evaluation harness runs all six and reports the best, exactly as the paper
does.
"""

from __future__ import annotations

import random

from repro.cache.block import CacheBlock, CoherenceState
from repro.cmp.chip import TiledChip
from repro.designs.base import L2Access
from repro.designs.private import PrivateDesign

#: Static allocation probabilities evaluated alongside the adaptive scheme.
STATIC_ASR_LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Number of L1 evictions between adaptive probability adjustments.
_ADAPTATION_PERIOD = 2048


class AsrDesign(PrivateDesign):
    """Private design + (adaptive) selective replication of clean shared data."""

    short_name = "A"
    name = "asr"

    def __init__(
        self,
        chip: TiledChip,
        *,
        allocation_probability: float | None = None,
        seed: int = 0,
        **design_kwargs,
    ) -> None:
        super().__init__(chip, **design_kwargs)
        if allocation_probability is not None and not 0.0 <= allocation_probability <= 1.0:
            raise ValueError("allocation probability must be within [0, 1]")
        self.adaptive = allocation_probability is None
        self.allocation_probability = (
            0.5 if allocation_probability is None else allocation_probability
        )
        self._rng = random.Random(seed)
        # Adaptive bookkeeping: benefit = local hits to replicated blocks,
        # cost = local misses that evicted something due to replication.
        self._window_evictions = 0
        self._replica_hits = 0
        self._replica_evictions = 0
        self.replications = 0
        self.replication_skips = 0
        if self.adaptive:
            self.name = "asr-adaptive"
        else:
            self.name = f"asr-{self.allocation_probability:.2f}"

    # ------------------------------------------------------------------ #
    # Replication decision
    # ------------------------------------------------------------------ #
    def on_l1_eviction(self, core: int, victim: CacheBlock) -> None:
        """Decide whether to replicate a clean shared L1 victim locally."""
        block_address = victim.address
        if victim.dirty or victim.state.is_dirty:
            # Dirty blocks are written back to the local slice regardless;
            # ASR only concerns clean (read-shared) blocks.
            self.chip.tiles[core].l2.insert_block(
                block_address, state=CoherenceState.OWNED, dirty=True
            )
            return
        remote_copy_exists = bool(
            self.l1.remote_holders(block_address, exclude=core)
        ) or self._find_remote_l2_holder(block_address, core) is not None
        if not remote_copy_exists:
            # Not a shared block: keep it in the local slice like the
            # private design would.
            self.chip.tiles[core].l2.insert_block(
                block_address, state=CoherenceState.SHARED, dirty=False
            )
            return

        self._window_evictions += 1
        if self._rng.random() < self.allocation_probability:
            tile = self.chip.tiles[core]
            inserted, evicted = tile.l2.insert_block(
                block_address, state=CoherenceState.SHARED, dirty=False
            )
            inserted.metadata["asr_replica"] = True
            if evicted is not None:
                self._replica_evictions += 1
                self._handle_eviction(core, tile.l2, evicted)
            self.replications += 1
        else:
            # The block is dropped locally; another on-chip copy (or memory)
            # will service the next access.
            self.replication_skips += 1
        if self.adaptive and self._window_evictions >= _ADAPTATION_PERIOD:
            self._adapt()

    def _service(self, access: L2Access, outcome) -> None:
        super()._service(access, outcome)
        if outcome.hit_where == "l2_local":
            block = self.chip.tiles[access.core].l2.peek(access.block_address)
            if block is not None and block.metadata.get("asr_replica"):
                self._replica_hits += 1

    # ------------------------------------------------------------------ #
    # Adaptive controller
    # ------------------------------------------------------------------ #
    def _adapt(self) -> None:
        """Nudge the allocation probability toward the cheaper behaviour.

        Replication is paying off when replicated blocks see local reuse
        more often than their allocation displaces useful blocks; otherwise
        back off.  The probability moves along the same five levels the
        static variants use.
        """
        levels = list(STATIC_ASR_LEVELS)
        index = min(
            range(len(levels)),
            key=lambda i: abs(levels[i] - self.allocation_probability),
        )
        if self._replica_hits > 2 * self._replica_evictions:
            index = min(index + 1, len(levels) - 1)
        elif self._replica_hits < self._replica_evictions:
            index = max(index - 1, 0)
        self.allocation_probability = levels[index]
        self._window_evictions = 0
        self._replica_hits = 0
        self._replica_evictions = 0


def asr_variants(chip_factory, *, include_adaptive: bool = True):
    """Yield (label, design) pairs for the six ASR variants.

    ``chip_factory`` is a zero-argument callable returning a fresh
    :class:`~repro.cmp.chip.TiledChip`, because each variant must run on its
    own chip instance.
    """
    if include_adaptive:
        yield "asr-adaptive", AsrDesign(chip_factory())
    for level in STATIC_ASR_LEVELS:
        yield f"asr-{level:.2f}", AsrDesign(chip_factory(), allocation_probability=level)
