"""The private L2 design (paper Section 2.2).

Each tile's L2 slice is a private second-level cache for its core.  Hits in
the local slice are fast, but a local miss must consult the address-
interleaved distributed directory, which either forwards the request to a
remote tile holding the block (a coherence transfer: three network
traversals plus a remote L2 — and possibly L1 — probe) or fetches the block
from memory.  Shared blocks are replicated in many slices, which wastes
capacity and inflates the off-chip miss rate; the paper (and this model)
optimistically gives the directory zero area overhead.
"""

from __future__ import annotations

from repro.cache.block import CacheBlock, CoherenceState
from repro.cache.cache_array import CacheArray
from repro.designs.base import (
    DIRECTORY_LATENCY,
    L1_PROBE_LATENCY,
    L1_TO_L1,
    L2,
    AccessOutcome,
    CacheDesign,
    L2Access,
)


class PrivateDesign(CacheDesign):
    """Private per-tile L2 slices with a distributed full-map directory."""

    short_name = "P"
    name = "private"

    def _service(self, access: L2Access, outcome: AccessOutcome) -> None:
        core = access.core
        local_tile = self._tiles[core]
        outcome.target_slice = core

        hit = local_tile.l2.lookup_block(access.block_address, access.is_write)
        if hit is not None:
            # First (and only) L2 write on this path: a direct component
            # store is equivalent to outcome.add(L2, ...).
            outcome.components[L2] = self._l2_hit_latency
            outcome.hit_where = "l2_local"
            if access.is_write:
                self._invalidate_remote_copies(access)
            return

        victim_hit = local_tile.l2_victim.extract(access.block_address)
        if victim_hit is not None:
            self._fill_local(core, access, state=victim_hit.state, dirty=victim_hit.dirty)
            outcome.components[L2] = self._l2_hit_latency
            outcome.hit_where = "l2_local"
            if access.is_write:
                self._invalidate_remote_copies(access)
            return

        # Local miss: consult the distributed directory at the block's home.
        outcome.add(L2, self.l2_hit_latency())  # the local probe that missed
        dir_home = self.chip.home_slice(access.block_address)
        directory = self._tiles[dir_home].directory
        to_directory = self.network.one_way_latency(core, dir_home) + DIRECTORY_LATENCY

        remote_l2_holder = self._find_remote_l2_holder(access.block_address, core)
        remote_l1_owner = self.l1.dirty_owner(access.block_address, core)

        if remote_l1_owner is not None:
            # Data supplied by a remote L1 (through its tile), i.e. an
            # L1-to-L1 transfer that also probes the remote L2 slice.
            latency = (
                to_directory
                + self.network.one_way_latency(dir_home, remote_l1_owner)
                + self.l2_hit_latency()
                + L1_PROBE_LATENCY
                + self.network.one_way_latency(remote_l1_owner, core)
            )
            outcome.add(L1_TO_L1, latency)
            outcome.hit_where = "l1_remote"
            outcome.coherence = True
            if access.is_write:
                self.l1.invalidate_all_remote(access.block_address, exclude=core)
                self._invalidate_remote_l2_copies(access.block_address, exclude=core)
            else:
                self.l1.downgrade(remote_l1_owner, access.block_address)
            self._fill_local(
                core,
                access,
                state=(
                    CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED
                ),
                dirty=access.is_write,
            )
            directory.record_write(
                access.block_address, core
            ) if access.is_write else directory.record_read(access.block_address, core)
            return

        if remote_l2_holder is not None:
            # Coherence transfer from a remote private L2 slice.
            latency = (
                to_directory
                + self.network.one_way_latency(dir_home, remote_l2_holder)
                + self.l2_hit_latency()
                + self.network.one_way_latency(remote_l2_holder, core)
            )
            outcome.add(L2, latency)
            outcome.hit_where = "l2_remote"
            outcome.coherence = True
            if access.is_write:
                self._invalidate_remote_l2_copies(access.block_address, exclude=core)
                self.l1.invalidate_all_remote(access.block_address, exclude=core)
                directory.record_write(access.block_address, core)
            else:
                directory.record_read(access.block_address, core)
            self._fill_local(
                core,
                access,
                state=(
                    CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED
                ),
                dirty=access.is_write,
            )
            return

        # Nobody on chip has the block: fetch from memory via the directory.
        outcome.add(L2, to_directory)
        self.offchip_fetch(access, dir_home, outcome)
        outcome.coherence = False
        if access.is_write:
            directory.record_write(access.block_address, core)
        else:
            directory.record_read(access.block_address, core)
        self._fill_local(
            core,
            access,
            state=(
                CoherenceState.MODIFIED if access.is_write else CoherenceState.EXCLUSIVE
            ),
            dirty=access.is_write,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _find_remote_l2_holder(self, block_address: int, exclude: int) -> int | None:
        """Closest remote tile whose private L2 slice holds the block."""
        directory = self._tiles[self.chip.home_slice(block_address)].directory
        entry = directory.peek(block_address)
        if entry is None:
            return None
        tiles = self._tiles
        distance = self.chip.distance
        best = None
        best_key: tuple[int, int] | None = None
        for tile_id in entry.copy_holders():
            if tile_id == exclude:
                continue
            if tiles[tile_id].l2.peek(block_address) is None:
                continue
            key = (distance(exclude, tile_id), tile_id)
            if best_key is None or key < best_key:
                best, best_key = tile_id, key
        return best

    def _invalidate_remote_copies(self, access: L2Access) -> None:
        """Write upgrade: invalidate all other L1 and L2 copies."""
        self.l1.invalidate_all_remote(access.block_address, exclude=access.core)
        self._invalidate_remote_l2_copies(access.block_address, exclude=access.core)
        directory = self.chip.tile(
            self.chip.home_slice(access.block_address)
        ).directory
        directory.record_write(access.block_address, access.core)

    def _invalidate_remote_l2_copies(self, block_address: int, *, exclude: int) -> int:
        count = 0
        for tile in self.chip.tiles:
            if tile.tile_id == exclude:
                continue
            if tile.l2.invalidate(block_address) is not None:
                count += 1
            tile.l2_victim.invalidate(block_address)
        return count

    def _fill_local(
        self,
        core: int,
        access: L2Access,
        *,
        state: CoherenceState,
        dirty: bool,
    ) -> None:
        """Allocate the block in the requesting tile's private slice."""
        tile = self._tiles[core]
        _, victim = tile.l2.insert_block(access.block_address, state=state, dirty=dirty)
        directory = self._tiles[self.chip.home_slice(access.block_address)].directory
        if access.is_write:
            directory.record_write(access.block_address, core)
        else:
            directory.record_read(access.block_address, core)
        if victim is not None:
            self._handle_eviction(tile.tile_id, tile.l2, victim)

    def _handle_eviction(self, tile_id: int, array: CacheArray, victim: CacheBlock) -> None:
        tile = self.chip.tile(tile_id)
        displaced = tile.l2_victim.insert(victim)
        home = self.chip.home_slice(victim.address)
        self.chip.tile(home).directory.record_eviction(victim.address, tile_id)
        if displaced is not None:
            if displaced.dirty:
                self.memory.access(tile_id, displaced.address, write=True)
            dhome = self.chip.home_slice(displaced.address)
            self.chip.tile(dhome).directory.record_eviction(displaced.address, tile_id)
