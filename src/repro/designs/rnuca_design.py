"""The R-NUCA cache design (paper Section 4).

R-NUCA classifies each access through the OS (instruction / private data /
shared data) and places it in the appropriate cluster:

* private data in the local slice (size-1 cluster);
* shared data address-interleaved across all slices (size-16 cluster) — a
  unique location per block, so no L2 coherence is needed;
* instructions in a size-4 fixed-center cluster indexed by rotational
  interleaving, replicating the instruction working set once per cluster
  while every lookup still needs exactly one probe.

Page re-classification (private -> shared, or a private page following a
migrated thread) invalidates the page's blocks at the previous owner's slice
and is charged to the ``reclassification`` CPI component.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.block import CoherenceState
from repro.cmp.chip import TiledChip
from repro.core.rnuca import RNucaConfig, RNucaPolicy
from repro.designs.base import (
    L2,
    OTHER,
    RECLASSIFICATION,
    AccessOutcome,
    CacheDesign,
    L2Access,
)
from repro.osmodel.classifier import ClassificationEvent
from repro.osmodel.page_table import PageClass


class RNucaDesign(CacheDesign):
    """Reactive NUCA."""

    short_name = "R"
    name = "rnuca"

    def __init__(
        self,
        chip: TiledChip,
        *,
        rnuca_config: Optional[RNucaConfig] = None,
    ) -> None:
        super().__init__(chip)
        self.policy = RNucaPolicy(
            chip.config, rnuca_config=rnuca_config, topology=chip.topology
        )
        # Publish the OS-assigned RIDs on the tiles (useful for inspection).
        rids = self.policy.rids
        if rids is not None:
            for tile, rid in zip(chip.tiles, rids):
                tile.rid = rid
        self.misclassified_accesses = 0

    @property
    def instruction_cluster_size(self) -> int:
        return self.policy.config.instruction_cluster_size

    # ------------------------------------------------------------------ #
    # Access handling
    # ------------------------------------------------------------------ #
    def _service(self, access: L2Access) -> AccessOutcome:
        outcome = AccessOutcome()
        lookup = self.policy.lookup(
            access.core,
            access.byte_address,
            instruction=access.is_instruction,
            thread_id=access.thread_id,
            shootdown=self._shootdown,
        )
        target = lookup.target_slice
        outcome.target_slice = target
        outcome.page_class = lookup.page_class
        self._account_os_event(lookup.classification, outcome)
        self._track_misclassification(access, lookup.page_class)

        # Shared read-write data may live dirty in a remote L1; the home
        # slice (the unique interleaved location) forwards the request.
        if lookup.page_class is PageClass.SHARED and not access.is_instruction:
            owner = self.l1.dirty_owner(access.block_address, exclude=access.core)
            if owner is not None:
                self.remote_l1_transfer(access, target, owner, outcome)
                self.chip.tile(target).l2.insert(
                    access.block_address, state=CoherenceState.OWNED, dirty=True
                )
                return outcome

        tile = self.chip.tile(target)
        network = self.network_round_trip(access.core, target)
        result = tile.l2.lookup(access.block_address, write=access.is_write)
        if result.hit:
            outcome.add(L2, network + self.l2_hit_latency())
            outcome.hit_where = "l2_local" if target == access.core else "l2_remote"
        else:
            victim_hit = tile.l2_victim.extract(access.block_address)
            if victim_hit is not None:
                tile.l2.insert(
                    access.block_address,
                    state=victim_hit.state,
                    dirty=victim_hit.dirty,
                )
                outcome.add(L2, network + self.l2_hit_latency())
                outcome.hit_where = (
                    "l2_local" if target == access.core else "l2_remote"
                )
            else:
                # R-NUCA never retrieves instruction blocks from other
                # clusters' replicas: a cluster miss goes off chip
                # (a "compulsory" miss per cluster, Section 4.2).
                outcome.add(L2, network + self.l2_hit_latency())
                self.offchip_fetch(access, target, outcome)
                self._fill(tile, access, lookup.page_class)

        if access.is_write:
            self.l1.invalidate_all_remote(access.block_address, exclude=access.core)
        return outcome

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _fill(self, tile, access: L2Access, page_class: PageClass) -> None:
        state = (
            CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED
        )
        result = tile.l2.insert(
            access.block_address,
            state=state,
            dirty=access.is_write,
            metadata={"class": page_class.value},
        )
        if result.victim is not None:
            displaced = tile.l2_victim.insert(result.victim)
            if displaced is not None and displaced.dirty:
                self.memory.access(tile.tile_id, displaced.address, write=True)

    def _account_os_event(
        self, event: ClassificationEvent, outcome: AccessOutcome
    ) -> None:
        """Charge the CPI cost of OS involvement.

        Only the events R-NUCA *adds* are charged: page re-classification
        (and migration re-owning) under ``reclassification`` and the
        first-touch trap under ``other``.  Ordinary TLB refills are not
        charged because every design pays them equally and the baseline
        designs do not model them at all.
        """
        if event.latency_cycles == 0:
            return
        if event.kind in (
            ClassificationEvent.RECLASSIFY_TO_SHARED,
            ClassificationEvent.MIGRATION_REOWN,
        ):
            outcome.add(RECLASSIFICATION, event.latency_cycles)
        elif event.kind == ClassificationEvent.FIRST_TOUCH:
            outcome.add(OTHER, event.latency_cycles)

    def _track_misclassification(self, access: L2Access, page_class: PageClass) -> None:
        """Count accesses whose page-level class differs from the block truth."""
        truth = access.data_class
        if truth == "instruction":
            expected = PageClass.INSTRUCTION
        elif truth == "private":
            expected = PageClass.PRIVATE
        else:
            expected = PageClass.SHARED
        if page_class is not expected:
            self.misclassified_accesses += 1

    def _shootdown(self, page_number: int, previous_owner: int) -> int:
        """Invalidate a page's blocks at the previous owner's slice and L1."""
        page_size = self.config.page_size
        block_size = self.config.block_size
        first_block = (page_number * page_size) // block_size
        last_block = first_block + page_size // block_size
        tile = self.chip.tile(previous_owner)
        removed = tile.l2.invalidate_where(
            lambda blk: first_block <= blk.address < last_block
        )
        for block in removed:
            if block.dirty:
                self.memory.access(previous_owner, block.address, write=True)
        for block_address in range(first_block, last_block):
            self.l1.invalidate(previous_owner, block_address)
        return len(removed)

    @property
    def misclassification_rate(self) -> float:
        return self.misclassified_accesses / self.accesses if self.accesses else 0.0
