"""The R-NUCA cache design (paper Section 4).

R-NUCA classifies each access through the OS (instruction / private data /
shared data) and places it in the appropriate cluster:

* private data in the local slice (size-1 cluster);
* shared data address-interleaved across all slices (size-16 cluster) — a
  unique location per block, so no L2 coherence is needed;
* instructions in a size-4 fixed-center cluster indexed by rotational
  interleaving, replicating the instruction working set once per cluster
  while every lookup still needs exactly one probe.

Page re-classification (private -> shared, or a private page following a
migrated thread) invalidates the page's blocks at the previous owner's slice
and is charged to the ``reclassification`` CPI component.
"""

from __future__ import annotations

from repro.cache.block import CoherenceState
from repro.cmp.chip import TiledChip
from repro.core.rnuca import RNucaConfig, RNucaPolicy
from repro.designs.base import (
    L2,
    OTHER,
    RECLASSIFICATION,
    AccessOutcome,
    CacheDesign,
    L2Access,
)
from repro.osmodel.classifier import ClassificationEvent
from repro.osmodel.page_table import PageClass, PageTableEntry

_INSTRUCTION = PageClass.INSTRUCTION
_PRIVATE = PageClass.PRIVATE
_SHARED = PageClass.SHARED
_INVALID = CoherenceState.INVALID


class RNucaDesign(CacheDesign):
    """Reactive NUCA."""

    short_name = "R"
    name = "rnuca"

    def __init__(
        self,
        chip: TiledChip,
        *,
        rnuca_config: RNucaConfig | None = None,
        **design_kwargs,
    ) -> None:
        super().__init__(chip, **design_kwargs)
        self.policy = RNucaPolicy(
            chip.config, rnuca_config=rnuca_config, topology=chip.topology
        )
        # Publish the OS-assigned RIDs on the tiles (useful for inspection).
        rids = self.policy.rids
        if rids is not None:
            for tile, rid in zip(chip.tiles, rids, strict=True):
                tile.rid = rid
        self.misclassified_accesses = 0
        self._page_shift = chip.config.page_size.bit_length() - 1
        # Bound once: creating the bound methods per access costs more than
        # the calls themselves.
        self._shootdown_handler = self._shootdown
        self._dirty_owner = self.l1.dirty_owner
        self._invalidate_all_remote = self.l1.invalidate_all_remote
        #: true_class string -> the PageClass ground truth expects (lazily
        #: filled; avoids re-deriving the coarse class string per access).
        self._expected_class: dict[str, PageClass] = {}

    @property
    def instruction_cluster_size(self) -> int:
        return self.policy.config.instruction_cluster_size

    # ------------------------------------------------------------------ #
    # Access handling
    # ------------------------------------------------------------------ #
    def _service(self, access: L2Access, outcome: AccessOutcome) -> None:
        """Service one access.

        This is the hottest method of the whole simulator, so the per-access
        pieces of :meth:`RNucaPolicy.lookup_fast` (classification + placement
        + policy counters) and :meth:`CacheArray.lookup_block` (the single L2
        probe) are fused in rather than called — every counter and state
        update matches those methods exactly, and the seed-path equivalence
        suite pins the behaviour.
        """
        core = access.core
        block_address = access.block_address
        page_number = access.page_number
        if page_number is None:
            page_number = access.byte_address >> self._page_shift
        policy = self.policy
        classifier = policy.classifier
        if not 0 <= core < classifier.num_cores:
            classifier._check_core(core)  # raises the range error
        instruction = access.is_instruction
        if instruction:
            # Classification: the classifier's instruction branch.
            classifier.instruction_accesses += 1
            entries = policy._page_entries
            entry = entries.get(page_number)
            if entry is None:
                entry = PageTableEntry(page_number=page_number)
                entries[page_number] = entry
            if entry.page_class is not _INSTRUCTION and entry.owner_cid is None:
                entry.mark_instruction()
            page_class = _INSTRUCTION
            policy.instruction_lookups += 1
            members = policy._instruction_members[core]
            target = members[
                (block_address >> policy._set_index_bits) & policy._instruction_mask
            ]
        else:
            # Classification: TLB hit inline, TLB miss through the state
            # machine (which may charge an OS event).
            classifier.data_accesses += 1
            tlb = policy._tlbs[core]
            entries = tlb._entries
            cached = entries.get(page_number)
            if cached is not None:
                entries.move_to_end(page_number)
                tlb.hits += 1
                page_class = cached.page_class
            else:
                tlb.misses += 1
                page_class, kind, event_latency, _ = classifier._handle_tlb_miss(
                    core,
                    page_number,
                    thread_id=access.thread_id,
                    shootdown=self._shootdown_handler,
                )
                if event_latency:
                    self._account_os_event(kind, event_latency, outcome)
            # Placement (RNucaPolicy.target tables).
            if page_class is _PRIVATE:
                policy.private_lookups += 1
                target = core
            elif page_class is _SHARED:
                policy.shared_lookups += 1
                target = policy._shared_members[
                    (block_address >> policy._set_index_bits) & policy._shared_mask
                ]
            else:  # pragma: no cover - data accesses never classify as instruction
                policy.instruction_lookups += 1
                members = policy._instruction_members[core]
                target = members[
                    (block_address >> policy._set_index_bits) & policy._instruction_mask
                ]
        if target == core:
            policy.local_lookups += 1
        outcome.target_slice = target
        outcome.page_class = page_class

        # Misclassification tracking (inlined _track_misclassification).
        true_class = access.true_class
        if true_class is None:
            expected = _INSTRUCTION if instruction else _SHARED
        else:
            expected = self._expected_class.get(true_class)
            if expected is None:
                expected = self._expect_class_for(true_class)
        if page_class is not expected:
            self.misclassified_accesses += 1

        # Shared read-write data may live dirty in a remote L1; the home
        # slice (the unique interleaved location) forwards the request.
        if page_class is _SHARED and not instruction:
            owner = self._dirty_owner(block_address, core)
            if owner is not None:
                self.remote_l1_transfer(access, target, owner, outcome)
                self._tiles[target].l2.insert_block(
                    block_address, state=CoherenceState.OWNED, dirty=True
                )
                return

        tile = self._tiles[target]
        # Inline network_round_trip + outcome.add(L2, ...): the L2 component
        # is written exactly once per access, so a direct store is safe.
        latency = self._l2_hit_latency
        if target != core:
            latency += 2 * self._one_way[core][target]
        # The L2 probe (CacheArray.lookup_block inlined when the array runs
        # the native LRU path; with a replacement policy installed the probe
        # goes through lookup_block so the policy observes every event).
        write = access.is_write
        l2_array = tile.l2
        if l2_array._policy is None:
            now = l2_array._now = l2_array._now + 1
            cache_set = l2_array._sets[block_address & l2_array._set_mask]
            block = cache_set.get(block_address)
            if block is not None and block.state is not _INVALID:
                cache_set.move_to_end(block_address)
                block.last_access = now
                block.access_count += 1
                if write:
                    block.dirty = True
                    block.state = CoherenceState.MODIFIED
                l2_array.hits += 1
            else:
                block = None
                l2_array.misses += 1
        else:
            block = l2_array.lookup_block(block_address, write)
        if block is not None:
            outcome.components[L2] = latency
            outcome.hit_where = "l2_local" if target == core else "l2_remote"
        else:
            victim_hit = tile.l2_victim.extract(block_address)
            if victim_hit is not None:
                l2_array.insert_block(
                    block_address,
                    state=victim_hit.state,
                    dirty=victim_hit.dirty,
                )
                outcome.components[L2] = latency
                outcome.hit_where = "l2_local" if target == core else "l2_remote"
            else:
                # R-NUCA never retrieves instruction blocks from other
                # clusters' replicas: a cluster miss goes off chip
                # (a "compulsory" miss per cluster, Section 4.2).
                outcome.components[L2] = latency
                self.offchip_fetch(access, target, outcome)
                self._fill(tile, access, page_class)

        if write:
            self._invalidate_all_remote(block_address, exclude=core)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _fill(self, tile, access: L2Access, page_class: PageClass) -> None:
        state = (
            CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED
        )
        _, victim = tile.l2.insert_block(
            access.block_address,
            state=state,
            dirty=access.is_write,
            metadata={"class": page_class.value},
        )
        if victim is not None:
            displaced = tile.l2_victim.insert(victim)
            if displaced is not None and displaced.dirty:
                self.memory.access(tile.tile_id, displaced.address, write=True)

    def _account_os_event(
        self, kind: str, latency_cycles: int, outcome: AccessOutcome
    ) -> None:
        """Charge the CPI cost of OS involvement.

        Only the events R-NUCA *adds* are charged: page re-classification
        (and migration re-owning) under ``reclassification`` and the
        first-touch trap under ``other``.  Ordinary TLB refills are not
        charged because every design pays them equally and the baseline
        designs do not model them at all.
        """
        if latency_cycles == 0:
            return
        if kind in (
            ClassificationEvent.RECLASSIFY_TO_SHARED,
            ClassificationEvent.MIGRATION_REOWN,
        ):
            outcome.add(RECLASSIFICATION, latency_cycles)
        elif kind == ClassificationEvent.FIRST_TOUCH:
            outcome.add(OTHER, latency_cycles)

    def _expect_class_for(self, true_class: str) -> PageClass:
        """Memoise the PageClass a ground-truth label maps to.

        Same mapping as ``L2Access.data_class`` folded into expected
        classes: "instruction" and "private" map to their classes, every
        other label (the shared_* variants and unknown strings) to SHARED.
        """
        if true_class == "instruction":
            expected = _INSTRUCTION
        elif true_class == "private":
            expected = _PRIVATE
        else:
            expected = _SHARED
        self._expected_class[true_class] = expected
        return expected

    def _shootdown(self, page_number: int, previous_owner: int) -> int:
        """Invalidate a page's blocks at the previous owner's slice and L1."""
        page_size = self.config.page_size
        block_size = self.config.block_size
        first_block = (page_number * page_size) // block_size
        last_block = first_block + page_size // block_size
        tile = self.chip.tile(previous_owner)
        removed = tile.l2.invalidate_where(
            lambda blk: first_block <= blk.address < last_block
        )
        for block in removed:
            if block.dirty:
                self.memory.access(previous_owner, block.address, write=True)
        for block_address in range(first_block, last_block):
            self.l1.invalidate(previous_owner, block_address)
        return len(removed)

    @property
    def misclassification_rate(self) -> float:
        return self.misclassified_accesses / self.accesses if self.accesses else 0.0
