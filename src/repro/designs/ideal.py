"""The ideal design (paper Section 5.4, Figure 12).

The ideal design is a *shared* organisation (address-interleaved, maximum
aggregate capacity, no replication) in which every slice is reachable at the
latency of the local slice: the paper describes it as a shared design with
direct on-chip links from every core to every slice and unlimited banking.
It therefore inherits the shared design's capacity behaviour exactly and
differs only in never paying a network traversal.  R-NUCA is shown to come
within 5% of it.
"""

from __future__ import annotations

from repro.designs.base import L1_TO_L1, AccessOutcome, L2Access
from repro.designs.shared import SharedDesign


class IdealDesign(SharedDesign):
    """Shared-design capacity at local-slice latency."""

    short_name = "I"
    name = "ideal"

    def network_round_trip(self, src: int, dst: int) -> int:
        """Every slice is as close as the local one."""
        return 0

    def remote_l1_transfer(
        self, access: L2Access, home: int, owner: int, outcome: AccessOutcome
    ) -> None:
        """Dirty data still comes from the owning L1, but over ideal links."""
        outcome.add(L1_TO_L1, self.l2_hit_latency())
        outcome.hit_where = "l1_remote"
        outcome.target_slice = home
        if access.is_write:
            self.l1.invalidate_all_remote(access.block_address, exclude=access.core)
        else:
            self.l1.downgrade(owner, access.block_address)

    def offchip_fetch(
        self, access: L2Access, issuing_tile: int, outcome: AccessOutcome
    ) -> None:
        """Off-chip latency without the on-chip traversal to the controller."""
        latency = self.memory.latency_cycles
        if not access.is_write:
            self.memory.controller_for(access.block_address).reads += 1
        else:
            self.memory.controller_for(access.block_address).writes += 1
        outcome.add("offchip", latency)
        outcome.offchip = True
        outcome.hit_where = "offchip"
