"""Trace records and containers.

A trace is the sequence of **L2 references** (L1 misses) observed by the
last-level cache, which is the granularity at which the paper characterises
workloads (Section 3) and at which every design differentiates itself.  Each
record carries the number of instructions the issuing core committed since
its previous L2 reference, so the simulation engine can convert stall cycles
into CPI.

Storage is **columnar**: a trace holds one numpy array per field
(:class:`TraceColumns`), so sixty thousand references cost a handful of
arrays instead of sixty thousand dataclass instances.  The record-oriented
API (:attr:`Trace.records`, iteration, indexing) is preserved as a lazily
materialised view, and the hot-path accessors (:meth:`Trace.hot_columns`,
:meth:`Trace.block_numbers`, :meth:`Trace.page_numbers`) hand the simulation
engine plain Python lists with block/page numbers precomputed once per trace
instead of once per (design, record).

Persistence is **binary columnar**: :meth:`Trace.save` writes an
uncompressed ``.npz`` archive (one ``.npy`` member per column, events
included, plus a JSON header member for the workload name, core count,
metadata and class table) and :meth:`Trace.load` memory-maps the members
back, so a sixty-thousand-record trace loads in microseconds and any number
of worker processes share one copy of the column data through the page
cache.  The pre-binary JSON-lines format is gone: its one-release
deprecation window (readable + writable via ``format="jsonl"``) has
closed, and :meth:`Trace.load` now rejects non-binary files loudly.
Content-addressed stores treat that rejection as a cache miss, so a stale
JSON-lines artifact regenerates instead of crashing a run.
"""

from __future__ import annotations

import json
import zipfile
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, fields
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.cache.block import AccessType
from repro.errors import TraceError

#: Integer codes used for :attr:`TraceColumns.access_type`.  Index into
#: :data:`ACCESS_TYPE_BY_CODE`; the instruction code is 0 so hot loops can
#: test ``code == 0`` instead of comparing enum members.
INSTRUCTION_CODE = 0
LOAD_CODE = 1
STORE_CODE = 2

ACCESS_TYPE_BY_CODE: tuple[AccessType, ...] = (
    AccessType.INSTRUCTION,
    AccessType.LOAD,
    AccessType.STORE,
)

_CODE_BY_ACCESS_TYPE = {kind: code for code, kind in enumerate(ACCESS_TYPE_BY_CODE)}

#: Sentinel in the ``thread_id`` column meaning "defaults to the core id".
NO_THREAD = -1

#: Integer codes for :attr:`TraceEvents.kind`.
MIGRATION_EVENT = 0  # arg0 = thread id, arg1 = destination core
SHARING_ONSET_EVENT = 1  # arg0 = victim thread whose private region went shared
PHASE_EVENT = 2  # arg0 = phase index into the trace's "phases" metadata

#: Version stamp written into the binary trace header.
TRACE_FORMAT_VERSION = 1

#: Leading bytes of a zip archive — how :meth:`Trace.load` tells the binary
#: columnar format apart from legacy JSON-lines files.
_ZIP_MAGIC = b"PK\x03\x04"

#: Column dtypes of the binary format, enforced on load so a trace restored
#: from disk is indistinguishable from a freshly generated one.
_COLUMN_DTYPES = {
    "core": np.int64,
    "access_type": np.int8,
    "address": np.int64,
    "instructions": np.int64,
    "thread_id": np.int64,
    "true_class": np.int16,
}

_EVENT_DTYPES = {
    "event_record_index": np.int64,
    "event_kind": np.int8,
    "event_arg0": np.int64,
    "event_arg1": np.int64,
}


@dataclass(frozen=True)
class TraceEvents:
    """Compact, sorted event stream accompanying a dynamic trace.

    Events mark points in the record stream where execution behaviour
    changes: a thread migrating to another core, a private region going
    shared, or a workload phase boundary.  Storage is columnar (one numpy
    array per field, like :class:`TraceColumns`) so the fast replay engine
    walks events without allocating per-event objects.  ``record_index``
    is sorted ascending; an event at index ``i`` takes effect *before*
    record ``i`` replays.
    """

    record_index: np.ndarray  # int64, sorted ascending
    kind: np.ndarray  # int8 codes, see MIGRATION_EVENT & friends
    arg0: np.ndarray  # int64 payload (thread id / phase index)
    arg1: np.ndarray  # int64 payload (destination core / unused)

    def __len__(self) -> int:
        return int(self.record_index.shape[0])

    def validate(self) -> None:
        n = len(self)
        for name in ("kind", "arg0", "arg1"):
            if getattr(self, name).shape[0] != n:
                raise TraceError(f"event column {name!r} length differs")
        if n == 0:
            return
        if self.record_index.min(initial=0) < 0:
            raise TraceError("event record index cannot be negative")
        if np.any(np.diff(self.record_index) < 0):
            raise TraceError("trace events must be sorted by record index")
        if self.kind.min(initial=0) < MIGRATION_EVENT or self.kind.max(
            initial=0
        ) > PHASE_EVENT:
            raise TraceError("unknown event kind in trace events")

    @classmethod
    def empty(cls) -> "TraceEvents":
        return cls(
            record_index=np.empty(0, dtype=np.int64),
            kind=np.empty(0, dtype=np.int8),
            arg0=np.empty(0, dtype=np.int64),
            arg1=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_rows(cls, rows: Sequence[tuple[int, int, int, int]]) -> "TraceEvents":
        """Build from ``(record_index, kind, arg0, arg1)`` tuples (sorted here)."""
        ordered = sorted(rows, key=lambda row: row[0])
        return cls(
            record_index=_int64_column([r[0] for r in ordered], "event indices"),
            kind=np.asarray([r[1] for r in ordered], dtype=np.int8),
            arg0=_int64_column([r[2] for r in ordered], "event payloads"),
            arg1=_int64_column([r[3] for r in ordered], "event payloads"),
        )

    def rows(self) -> list[tuple[int, int, int, int]]:
        """Plain ``(record_index, kind, arg0, arg1)`` tuples for replay."""
        return list(
            zip(
                self.record_index.tolist(),
                self.kind.tolist(),
                self.arg0.tolist(),
                self.arg1.tolist(),
                strict=True,
            )
        )


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One L2 reference."""

    core: int
    access_type: AccessType
    address: int
    #: Instructions committed by this core since its previous L2 reference.
    instructions: int = 20
    #: Software thread issuing the access (defaults to one thread per core).
    thread_id: int | None = None
    #: Ground-truth access class assigned by the generator ("instruction",
    #: "private", "shared_rw", "shared_ro").  Used only by the analysis code
    #: (classification-accuracy experiment); designs never see it.
    true_class: str | None = None

    def __post_init__(self) -> None:
        if self.core < 0:
            raise TraceError("core id cannot be negative")
        if self.address < 0:
            raise TraceError("address cannot be negative")
        if self.instructions < 0:
            raise TraceError("instruction count cannot be negative")

    @property
    def thread(self) -> int:
        """Thread id, defaulting to the core id."""
        return self.core if self.thread_id is None else self.thread_id

    @property
    def is_instruction(self) -> bool:
        return self.access_type is AccessType.INSTRUCTION

    @property
    def is_write(self) -> bool:
        return self.access_type is AccessType.STORE


@dataclass(frozen=True)
class TraceColumns:
    """Structure-of-arrays representation of a trace.

    ``true_class`` stores small integer codes into ``class_table`` (entry 0
    is always ``None`` for records without a ground-truth label).
    """

    core: np.ndarray  # int64
    access_type: np.ndarray  # int8 codes, see ACCESS_TYPE_BY_CODE
    address: np.ndarray  # int64 physical byte addresses
    instructions: np.ndarray  # int64
    thread_id: np.ndarray  # int64, NO_THREAD means "use the core id"
    true_class: np.ndarray  # int16 codes into class_table
    class_table: tuple[str | None, ...]

    def __len__(self) -> int:
        return int(self.core.shape[0])

    def validate(self) -> None:
        n = len(self)
        for name in ("access_type", "address", "instructions", "thread_id", "true_class"):
            if getattr(self, name).shape[0] != n:
                raise TraceError(f"column {name!r} length differs from the core column")
        if n == 0:
            return
        if self.core.min(initial=0) < 0:
            raise TraceError("core id cannot be negative")
        if self.address.min(initial=0) < 0:
            raise TraceError("address cannot be negative")
        if self.instructions.min(initial=0) < 0:
            raise TraceError("instruction count cannot be negative")
        if self.access_type.min(initial=0) < 0 or self.access_type.max(
            initial=0
        ) >= len(ACCESS_TYPE_BY_CODE):
            raise TraceError("unknown access-type code in trace columns")


class HotColumns(NamedTuple):
    """Plain-list columns for the allocation-free simulation loop.

    Everything derivable per record is resolved once here: ``thread`` applies
    the core-id default, ``true_class`` is decoded to strings, and
    ``coarse_class`` carries the instruction/private/shared label the
    statistics use (see :func:`repro.sim.stats.coarse_class_label`).
    """

    core: list[int]
    access_code: list[int]
    address: list[int]
    instructions: list[int]
    thread: list[int]
    true_class: list[str | None]
    coarse_class: list[str]


def _coarse_label(access_code: int, true_class: str | None) -> str:
    if access_code == INSTRUCTION_CODE or true_class == "instruction":
        return "instruction"
    if true_class is None:
        return "shared"
    return "private" if true_class == "private" else "shared"


def _int64_column(values: list[int], what: str) -> np.ndarray:
    try:
        return np.asarray(values, dtype=np.int64)
    except OverflowError as error:
        raise TraceError(
            f"trace {what} must fit in a signed 64-bit integer "
            "(columnar storage)"
        ) from error


def _columns_from_records(records: Sequence[TraceRecord]) -> TraceColumns:
    class_codes: dict[str | None, int] = {None: 0}
    table: list[str | None] = [None]
    cores: list[int] = []
    kinds: list[int] = []
    addresses: list[int] = []
    instructions: list[int] = []
    threads: list[int] = []
    labels: list[int] = []
    for record in records:
        cores.append(record.core)
        kinds.append(_CODE_BY_ACCESS_TYPE[record.access_type])
        addresses.append(record.address)
        instructions.append(record.instructions)
        threads.append(NO_THREAD if record.thread_id is None else record.thread_id)
        code = class_codes.get(record.true_class)
        if code is None:
            code = len(table)
            class_codes[record.true_class] = code
            table.append(record.true_class)
        labels.append(code)
    return TraceColumns(
        core=_int64_column(cores, "core ids"),
        access_type=np.asarray(kinds, dtype=np.int8),
        address=_int64_column(addresses, "addresses"),
        instructions=_int64_column(instructions, "instruction counts"),
        thread_id=_int64_column(threads, "thread ids"),
        true_class=np.asarray(labels, dtype=np.int16),
        class_table=tuple(table),
    )


class Trace:
    """An in-memory, columnar sequence of trace records plus metadata.

    The columns are the single source of truth and a trace is effectively
    immutable once built: :attr:`records` (and every other accessor) is a
    view **derived** from the columns, so mutating the returned record list
    does not change the trace the engines replay.  Build a new ``Trace``
    (or new :class:`TraceColumns`) to alter one.
    """

    def __init__(
        self,
        records: Sequence[TraceRecord] | Iterable[TraceRecord] = (),
        *,
        workload: str = "unknown",
        num_cores: int = 0,
        metadata: dict | None = None,
        columns: TraceColumns | None = None,
        events: TraceEvents | None = None,
    ) -> None:
        if columns is None:
            columns = _columns_from_records(list(records))
        columns.validate()
        if events is None:
            events = TraceEvents.empty()
        events.validate()
        if len(events) and int(events.record_index[-1]) >= len(columns):
            raise TraceError(
                "trace event index past the end of the trace: replay would "
                "silently drop it"
            )
        self.columns = columns
        self.events = events
        self.workload = workload
        self.num_cores = num_cores or (
            1 + int(columns.core.max(initial=0))
        )
        self.metadata = dict(metadata or {})
        self._records: list[TraceRecord] | None = None
        self._hot: HotColumns | None = None
        self._hot_rows: dict[tuple[int, int], list[tuple]] = {}
        self._block_numbers: dict[int, list[int]] = {}
        self._page_numbers: dict[int, list[int]] = {}
        self._page_arrays: dict[int, np.ndarray] = {}
        self._page_indexes: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._page_profiles: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    @classmethod
    def from_columns(
        cls,
        columns: TraceColumns,
        *,
        workload: str = "unknown",
        num_cores: int = 0,
        metadata: dict | None = None,
        events: TraceEvents | None = None,
    ) -> "Trace":
        return cls(
            workload=workload,
            num_cores=num_cores,
            metadata=metadata,
            columns=columns,
            events=events,
        )

    @property
    def is_dynamic(self) -> bool:
        """Whether the trace carries behaviour-changing events."""
        return len(self.events) > 0

    def equals(self, other: "Trace") -> bool:
        """Deep equality: columns, events, identity and metadata.

        The column and event field lists come from the dataclass
        definitions, so a field added to :class:`TraceColumns` or
        :class:`TraceEvents` is compared automatically — persistence tests
        and the bench round-trip check cannot silently stop covering it.
        """
        for field in fields(TraceColumns):
            mine = getattr(self.columns, field.name)
            theirs = getattr(other.columns, field.name)
            if field.name == "class_table":
                if mine != theirs:
                    return False
            elif not np.array_equal(mine, theirs):
                return False
        for field in fields(TraceEvents):
            if not np.array_equal(
                getattr(self.events, field.name), getattr(other.events, field.name)
            ):
                return False
        return (
            self.workload == other.workload
            and self.num_cores == other.num_cores
            and self.metadata == other.metadata
        )

    # ------------------------------------------------------------------ #
    # Record-oriented view (compatibility API)
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> list[TraceRecord]:
        """The trace as :class:`TraceRecord` objects (materialised lazily).

        A derived, cached view of :attr:`columns`: mutating the returned
        list (or its records) does not modify the trace — the columns stay
        authoritative for ``len``, replay, and persistence.
        """
        if self._records is None:
            cols = self.columns
            table = cols.class_table
            self._records = [
                TraceRecord(
                    core=core,
                    access_type=ACCESS_TYPE_BY_CODE[kind],
                    address=address,
                    instructions=instructions,
                    thread_id=None if thread == NO_THREAD else thread,
                    true_class=table[label],
                )
                for core, kind, address, instructions, thread, label in zip(
                    cols.core.tolist(),
                    cols.access_type.tolist(),
                    cols.address.tolist(),
                    cols.instructions.tolist(),
                    cols.thread_id.tolist(),
                    cols.true_class.tolist(),
                    strict=True,
                )
            ]
        return self._records

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def total_instructions(self) -> int:
        return int(self.columns.instructions.sum())

    def records_for_core(self, core: int) -> list[TraceRecord]:
        """Records issued by one core, materialised from a boolean mask.

        Only the matching rows become :class:`TraceRecord` objects; the rest
        of the trace stays columnar (filtering sixty thousand records for
        one of sixteen cores used to build all sixty thousand first).
        """
        cols = self.columns
        mask = cols.core == core
        table = cols.class_table
        return [
            TraceRecord(
                core=row_core,
                access_type=ACCESS_TYPE_BY_CODE[kind],
                address=address,
                instructions=instructions,
                thread_id=None if thread == NO_THREAD else thread,
                true_class=table[label],
            )
            for row_core, kind, address, instructions, thread, label in zip(
                cols.core[mask].tolist(),
                cols.access_type[mask].tolist(),
                cols.address[mask].tolist(),
                cols.instructions[mask].tolist(),
                cols.thread_id[mask].tolist(),
                cols.true_class[mask].tolist(),
                strict=True,
            )
        ]

    def class_mix(self) -> dict[str, float]:
        """Fraction of references per ground-truth class."""
        total = len(self)
        if not total:
            return {}
        counts = np.bincount(
            self.columns.true_class, minlength=len(self.columns.class_table)
        )
        mix = {
            (name if name is not None else "unknown"): int(count) / total
            for name, count in zip(self.columns.class_table, counts.tolist(), strict=True)
            if count
        }
        return dict(sorted(mix.items()))

    # ------------------------------------------------------------------ #
    # Hot-path accessors (columnar fast path)
    # ------------------------------------------------------------------ #
    def hot_columns(self) -> HotColumns:
        """Plain-list columns for the simulation hot loop (cached).

        Everything is derived from the typed column arrays with vectorised
        table lookups — per-table-entry decode plus object-array fancy
        indexing — so no per-record Python loop runs; the only per-record
        work is the final ``tolist()`` conversion the replay loop needs.
        Because the lookup tables hold one interned string per class, equal
        labels in the result are the *same* string object, which keeps the
        engine's string comparisons on the pointer-equality fast path.
        """
        if self._hot is None:
            cols = self.columns
            class_table = np.array(cols.class_table, dtype=object)
            true_class = class_table[cols.true_class]
            # Coarse label per class-table entry (assuming a data access),
            # then instruction accesses overridden in one vectorised store.
            data_coarse = np.array(
                [_coarse_label(LOAD_CODE, entry) for entry in cols.class_table],
                dtype=object,
            )
            coarse = data_coarse[cols.true_class]
            coarse[cols.access_type == INSTRUCTION_CODE] = "instruction"
            threads = np.where(cols.thread_id == NO_THREAD, cols.core, cols.thread_id)
            self._hot = HotColumns(
                core=cols.core.tolist(),
                access_code=cols.access_type.tolist(),
                address=cols.address.tolist(),
                instructions=cols.instructions.tolist(),
                thread=threads.tolist(),
                true_class=true_class.tolist(),
                coarse_class=coarse.tolist(),
            )
        return self._hot

    def hot_rows(self, block_size: int, page_size: int) -> list[tuple]:
        """Per-record tuples for the replay loop, cached per geometry.

        Each row is ``(core, access code, address, instructions, thread,
        true_class, coarse_class, block number, page number)``.  One list of
        prebuilt tuples iterates with a single iterator where zipping nine
        parallel columns would advance nine.
        """
        rows = self._hot_rows.get((block_size, page_size))
        if rows is None:
            hot = self.hot_columns()
            rows = list(
                zip(
                    hot.core,
                    hot.access_code,
                    hot.address,
                    hot.instructions,
                    hot.thread,
                    hot.true_class,
                    hot.coarse_class,
                    self.block_numbers(block_size),
                    self.page_numbers(page_size),
                    strict=True,
                )
            )
            self._hot_rows[(block_size, page_size)] = rows
        return rows

    def block_numbers(self, block_size: int) -> list[int]:
        """Per-record block numbers, computed once per (trace, block size)."""
        numbers = self._block_numbers.get(block_size)
        if numbers is None:
            shift = block_size.bit_length() - 1
            numbers = (self.columns.address >> shift).tolist()
            self._block_numbers[block_size] = numbers
        return numbers

    def page_numbers(self, page_size: int) -> list[int]:
        """Per-record page numbers, computed once per (trace, page size)."""
        numbers = self._page_numbers.get(page_size)
        if numbers is None:
            numbers = self.page_number_array(page_size).tolist()
            self._page_numbers[page_size] = numbers
        return numbers

    def page_number_array(self, page_size: int) -> np.ndarray:
        """Per-record page numbers as an int64 array (cached)."""
        array = self._page_arrays.get(page_size)
        if array is None:
            shift = page_size.bit_length() - 1
            array = self.columns.address >> shift
            self._page_arrays[page_size] = array
        return array

    def page_index(self, page_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Unique page numbers plus each record's slot in them (cached).

        Page-table warm-up and the batch replay kernel both need the
        trace's page population; caching the unique/inverse pair per
        (trace, page size) keeps repeated replays of one trace from
        re-sorting the page column every run.
        """
        pair = self._page_indexes.get(page_size)
        if pair is None:
            unique_pages, inverse = np.unique(
                self.page_number_array(page_size), return_inverse=True
            )
            pair = (unique_pages, inverse)
            self._page_indexes[page_size] = pair
        return pair

    def page_profile(
        self, page_size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-unique-page access profile, aligned with :meth:`page_index`.

        Returns ``(instruction_touched, accessor_count, sole_accessor)``:
        a bool mask of pages with instruction accesses, the number of
        distinct cores issuing *data* accesses to each page, and the
        lowest such core (meaningful when the count is exactly one).
        Purely trace-derived, so cached per (trace, page size).
        """
        profile = self._page_profiles.get(page_size)
        if profile is None:
            unique_pages, inverse = self.page_index(page_size)
            num_unique = unique_pages.shape[0]
            is_instr = self.columns.access_type == INSTRUCTION_CODE
            instruction_touched = np.zeros(num_unique, dtype=bool)
            instruction_touched[inverse[is_instr]] = True
            cores = self.columns.core
            width = int(cores.max(initial=0)) + 1
            touched = np.zeros((num_unique, width), dtype=bool)
            touched[inverse[~is_instr], cores[~is_instr]] = True
            accessor_count = np.count_nonzero(touched, axis=1)
            sole_accessor = touched.argmax(axis=1)
            profile = (instruction_touched, accessor_count, sole_accessor)
            self._page_profiles[page_size] = profile
        return profile

    # ------------------------------------------------------------------ #
    # Persistence (binary columnar .npz)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as an uncompressed ``.npz`` archive.

        One ``.npy`` member per column (events included) plus a JSON
        ``header`` member; :meth:`load` memory-maps the members back
        without copying the column data.  (The legacy JSON-lines writer
        was removed after its one-release deprecation window.)
        """
        self._save_binary(Path(path))

    def _save_binary(self, path: Path) -> None:
        cols = self.columns
        events = self.events
        header = {
            "version": TRACE_FORMAT_VERSION,
            "workload": self.workload,
            "num_cores": self.num_cores,
            "metadata": self.metadata,
            "class_table": list(cols.class_table),
        }
        header_bytes = json.dumps(header, default=_json_scalar).encode()
        arrays = {
            "core": np.ascontiguousarray(cols.core, dtype=np.int64),
            "access_type": np.ascontiguousarray(cols.access_type, dtype=np.int8),
            "address": np.ascontiguousarray(cols.address, dtype=np.int64),
            "instructions": np.ascontiguousarray(cols.instructions, dtype=np.int64),
            "thread_id": np.ascontiguousarray(cols.thread_id, dtype=np.int64),
            "true_class": np.ascontiguousarray(cols.true_class, dtype=np.int16),
            "event_record_index": np.ascontiguousarray(events.record_index, dtype=np.int64),
            "event_kind": np.ascontiguousarray(events.kind, dtype=np.int8),
            "event_arg0": np.ascontiguousarray(events.arg0, dtype=np.int64),
            "event_arg1": np.ascontiguousarray(events.arg1, dtype=np.int64),
            "header": np.frombuffer(header_bytes, dtype=np.uint8),
        }
        # np.savez on an open handle keeps the caller's exact path (the
        # string form would append ".npz"); members are ZIP_STORED, which is
        # what makes the member-level memory mapping in load() possible.
        with path.open("wb") as handle:
            np.savez(handle, **arrays)

    @classmethod
    def load(cls, path: str | Path, *, mmap: bool = True) -> "Trace":
        """Read a trace previously written by :meth:`save`.

        Binary traces are memory-mapped by default: the column arrays are
        read-only views straight into the page cache, so loading is O(1) in
        the trace length and concurrent processes share one physical copy.
        Pass ``mmap=False`` to force an in-memory copy (e.g. when the file
        will be replaced while the trace is still alive).

        A file that is not a binary columnar archive — including traces
        written by the removed JSON-lines format — raises
        :class:`~repro.errors.TraceError`; stores catch that and treat the
        file as a cache miss.
        """
        path = Path(path)
        try:
            with path.open("rb") as handle:
                magic = handle.read(len(_ZIP_MAGIC))
        except OSError as error:
            raise TraceError(f"cannot read trace file {path}: {error}") from error
        if magic != _ZIP_MAGIC:
            raise TraceError(
                f"{path} is not a binary columnar trace (the legacy "
                "JSON-lines format was removed; regenerate the trace)"
            )
        return cls._load_binary(path, mmap=mmap)

    @classmethod
    def _load_binary(cls, path: Path, *, mmap: bool) -> "Trace":
        arrays = _mmap_npz_members(path) if mmap else None
        if arrays is None:
            try:
                with np.load(path, allow_pickle=False) as bundle:
                    arrays = {name: bundle[name] for name in bundle.files}
            except (OSError, ValueError, zipfile.BadZipFile) as error:
                raise TraceError(f"corrupt binary trace {path}: {error}") from error
        try:
            header = json.loads(bytes(arrays["header"]).decode())
            columns = TraceColumns(
                class_table=tuple(header["class_table"]),
                **{
                    name: _typed_column(arrays[name], dtype, name)
                    for name, dtype in _COLUMN_DTYPES.items()
                },
            )
            events = TraceEvents(
                record_index=_typed_column(
                    arrays["event_record_index"], np.int64, "event_record_index"
                ),
                kind=_typed_column(arrays["event_kind"], np.int8, "event_kind"),
                arg0=_typed_column(arrays["event_arg0"], np.int64, "event_arg0"),
                arg1=_typed_column(arrays["event_arg1"], np.int64, "event_arg1"),
            )
            return cls.from_columns(
                columns,
                workload=header.get("workload", "unknown"),
                num_cores=header.get("num_cores", 0),
                metadata=header.get("metadata", {}),
                events=events,
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
            raise TraceError(f"corrupt binary trace {path}: {error}") from error

def _json_scalar(value):
    """JSON fallback for numpy scalars hiding in trace metadata."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"{value!r} is not JSON serializable")


def _typed_column(array: np.ndarray, dtype, name: str) -> np.ndarray:
    """Check a loaded column's dtype without copying memory-mapped data."""
    if array.dtype != dtype:
        raise TraceError(f"trace column {name!r} has dtype {array.dtype}, expected {dtype}")
    if array.ndim != 1:
        raise TraceError(f"trace column {name!r} must be one-dimensional")
    return array


def _mmap_npz_members(path: Path) -> dict[str, np.ndarray] | None:
    """Memory-map every ``.npy`` member of an uncompressed ``.npz`` archive.

    ``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for zip
    archives, so the zero-copy path is built by hand: each member written by
    ``np.savez`` is ZIP_STORED (no compression), meaning its ``.npy`` bytes
    sit verbatim in the file and a :class:`numpy.memmap` can be opened at
    ``member data offset + npy header size``.  Returns ``None`` whenever the
    archive does not match those expectations (compressed members, object
    dtypes, Fortran order, unknown npy versions); callers then fall back to
    a regular copying load.
    """
    read_header = {
        (1, 0): np.lib.format.read_array_header_1_0,
        (2, 0): np.lib.format.read_array_header_2_0,
    }
    try:
        arrays: dict[str, np.ndarray] = {}
        with zipfile.ZipFile(path) as archive, path.open("rb") as raw:
            for info in archive.infolist():
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                if not info.filename.endswith(".npy"):
                    return None
                # The local file header is 30 fixed bytes plus the name and
                # the extra field; the member's data follows immediately.
                raw.seek(info.header_offset)
                local_header = raw.read(30)
                if len(local_header) < 30 or not local_header.startswith(_ZIP_MAGIC):
                    return None
                name_len = int.from_bytes(local_header[26:28], "little")
                extra_len = int.from_bytes(local_header[28:30], "little")
                raw.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(raw)
                if version not in read_header:
                    return None
                shape, fortran_order, dtype = read_header[version](raw)
                if fortran_order or dtype.hasobject:
                    return None
                name = info.filename[: -len(".npy")]
                if int(np.prod(shape)) == 0:
                    # mmap cannot map zero bytes; an empty array is free.
                    arrays[name] = np.empty(shape, dtype=dtype)
                else:
                    arrays[name] = np.memmap(
                        path, mode="r", dtype=dtype, shape=shape, offset=raw.tell()
                    )
        return arrays
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
