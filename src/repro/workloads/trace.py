"""Trace records and containers.

A trace is the sequence of **L2 references** (L1 misses) observed by the
last-level cache, which is the granularity at which the paper characterises
workloads (Section 3) and at which every design differentiates itself.  Each
record carries the number of instructions the issuing core committed since
its previous L2 reference, so the simulation engine can convert stall cycles
into CPI.

Storage is **columnar**: a trace holds one numpy array per field
(:class:`TraceColumns`), so sixty thousand references cost a handful of
arrays instead of sixty thousand dataclass instances.  The record-oriented
API (:attr:`Trace.records`, iteration, indexing) is preserved as a lazily
materialised view, and the hot-path accessors (:meth:`Trace.hot_columns`,
:meth:`Trace.block_numbers`, :meth:`Trace.page_numbers`) hand the simulation
engine plain Python lists with block/page numbers precomputed once per trace
instead of once per (design, record).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, NamedTuple, Optional, Sequence

import numpy as np

from repro.cache.block import AccessType
from repro.errors import TraceError

#: Integer codes used for :attr:`TraceColumns.access_type`.  Index into
#: :data:`ACCESS_TYPE_BY_CODE`; the instruction code is 0 so hot loops can
#: test ``code == 0`` instead of comparing enum members.
INSTRUCTION_CODE = 0
LOAD_CODE = 1
STORE_CODE = 2

ACCESS_TYPE_BY_CODE: tuple[AccessType, ...] = (
    AccessType.INSTRUCTION,
    AccessType.LOAD,
    AccessType.STORE,
)

_CODE_BY_ACCESS_TYPE = {kind: code for code, kind in enumerate(ACCESS_TYPE_BY_CODE)}

#: Sentinel in the ``thread_id`` column meaning "defaults to the core id".
NO_THREAD = -1

#: Integer codes for :attr:`TraceEvents.kind`.
MIGRATION_EVENT = 0  # arg0 = thread id, arg1 = destination core
SHARING_ONSET_EVENT = 1  # arg0 = victim thread whose private region went shared
PHASE_EVENT = 2  # arg0 = phase index into the trace's "phases" metadata


@dataclass(frozen=True)
class TraceEvents:
    """Compact, sorted event stream accompanying a dynamic trace.

    Events mark points in the record stream where execution behaviour
    changes: a thread migrating to another core, a private region going
    shared, or a workload phase boundary.  Storage is columnar (one numpy
    array per field, like :class:`TraceColumns`) so the fast replay engine
    walks events without allocating per-event objects.  ``record_index``
    is sorted ascending; an event at index ``i`` takes effect *before*
    record ``i`` replays.
    """

    record_index: np.ndarray  # int64, sorted ascending
    kind: np.ndarray  # int8 codes, see MIGRATION_EVENT & friends
    arg0: np.ndarray  # int64 payload (thread id / phase index)
    arg1: np.ndarray  # int64 payload (destination core / unused)

    def __len__(self) -> int:
        return int(self.record_index.shape[0])

    def validate(self) -> None:
        n = len(self)
        for name in ("kind", "arg0", "arg1"):
            if getattr(self, name).shape[0] != n:
                raise TraceError(f"event column {name!r} length differs")
        if n == 0:
            return
        if self.record_index.min(initial=0) < 0:
            raise TraceError("event record index cannot be negative")
        if np.any(np.diff(self.record_index) < 0):
            raise TraceError("trace events must be sorted by record index")
        if self.kind.min(initial=0) < MIGRATION_EVENT or self.kind.max(
            initial=0
        ) > PHASE_EVENT:
            raise TraceError("unknown event kind in trace events")

    @classmethod
    def empty(cls) -> "TraceEvents":
        return cls(
            record_index=np.empty(0, dtype=np.int64),
            kind=np.empty(0, dtype=np.int8),
            arg0=np.empty(0, dtype=np.int64),
            arg1=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_rows(cls, rows: Sequence[tuple[int, int, int, int]]) -> "TraceEvents":
        """Build from ``(record_index, kind, arg0, arg1)`` tuples (sorted here)."""
        ordered = sorted(rows, key=lambda row: row[0])
        return cls(
            record_index=_int64_column([r[0] for r in ordered], "event indices"),
            kind=np.asarray([r[1] for r in ordered], dtype=np.int8),
            arg0=_int64_column([r[2] for r in ordered], "event payloads"),
            arg1=_int64_column([r[3] for r in ordered], "event payloads"),
        )

    def rows(self) -> list[tuple[int, int, int, int]]:
        """Plain ``(record_index, kind, arg0, arg1)`` tuples for replay."""
        return list(
            zip(
                self.record_index.tolist(),
                self.kind.tolist(),
                self.arg0.tolist(),
                self.arg1.tolist(),
            )
        )


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One L2 reference."""

    core: int
    access_type: AccessType
    address: int
    #: Instructions committed by this core since its previous L2 reference.
    instructions: int = 20
    #: Software thread issuing the access (defaults to one thread per core).
    thread_id: int | None = None
    #: Ground-truth access class assigned by the generator ("instruction",
    #: "private", "shared_rw", "shared_ro").  Used only by the analysis code
    #: (classification-accuracy experiment); designs never see it.
    true_class: str | None = None

    def __post_init__(self) -> None:
        if self.core < 0:
            raise TraceError("core id cannot be negative")
        if self.address < 0:
            raise TraceError("address cannot be negative")
        if self.instructions < 0:
            raise TraceError("instruction count cannot be negative")

    @property
    def thread(self) -> int:
        """Thread id, defaulting to the core id."""
        return self.core if self.thread_id is None else self.thread_id

    @property
    def is_instruction(self) -> bool:
        return self.access_type is AccessType.INSTRUCTION

    @property
    def is_write(self) -> bool:
        return self.access_type is AccessType.STORE


@dataclass(frozen=True)
class TraceColumns:
    """Structure-of-arrays representation of a trace.

    ``true_class`` stores small integer codes into ``class_table`` (entry 0
    is always ``None`` for records without a ground-truth label).
    """

    core: np.ndarray  # int64
    access_type: np.ndarray  # int8 codes, see ACCESS_TYPE_BY_CODE
    address: np.ndarray  # int64 physical byte addresses
    instructions: np.ndarray  # int64
    thread_id: np.ndarray  # int64, NO_THREAD means "use the core id"
    true_class: np.ndarray  # int16 codes into class_table
    class_table: tuple[Optional[str], ...]

    def __len__(self) -> int:
        return int(self.core.shape[0])

    def validate(self) -> None:
        n = len(self)
        for name in ("access_type", "address", "instructions", "thread_id", "true_class"):
            if getattr(self, name).shape[0] != n:
                raise TraceError(f"column {name!r} length differs from the core column")
        if n == 0:
            return
        if self.core.min(initial=0) < 0:
            raise TraceError("core id cannot be negative")
        if self.address.min(initial=0) < 0:
            raise TraceError("address cannot be negative")
        if self.instructions.min(initial=0) < 0:
            raise TraceError("instruction count cannot be negative")
        if self.access_type.min(initial=0) < 0 or self.access_type.max(
            initial=0
        ) >= len(ACCESS_TYPE_BY_CODE):
            raise TraceError("unknown access-type code in trace columns")


class HotColumns(NamedTuple):
    """Plain-list columns for the allocation-free simulation loop.

    Everything derivable per record is resolved once here: ``thread`` applies
    the core-id default, ``true_class`` is decoded to strings, and
    ``coarse_class`` carries the instruction/private/shared label the
    statistics use (see :func:`repro.sim.stats.coarse_class_label`).
    """

    core: list[int]
    access_code: list[int]
    address: list[int]
    instructions: list[int]
    thread: list[int]
    true_class: list[Optional[str]]
    coarse_class: list[str]


def _coarse_label(access_code: int, true_class: Optional[str]) -> str:
    if access_code == INSTRUCTION_CODE or true_class == "instruction":
        return "instruction"
    if true_class is None:
        return "shared"
    return "private" if true_class == "private" else "shared"


def _int64_column(values: list[int], what: str) -> np.ndarray:
    try:
        return np.asarray(values, dtype=np.int64)
    except OverflowError as error:
        raise TraceError(
            f"trace {what} must fit in a signed 64-bit integer "
            "(columnar storage)"
        ) from error


def _columns_from_records(records: Sequence[TraceRecord]) -> TraceColumns:
    class_codes: dict[Optional[str], int] = {None: 0}
    table: list[Optional[str]] = [None]
    cores: list[int] = []
    kinds: list[int] = []
    addresses: list[int] = []
    instructions: list[int] = []
    threads: list[int] = []
    labels: list[int] = []
    for record in records:
        cores.append(record.core)
        kinds.append(_CODE_BY_ACCESS_TYPE[record.access_type])
        addresses.append(record.address)
        instructions.append(record.instructions)
        threads.append(NO_THREAD if record.thread_id is None else record.thread_id)
        code = class_codes.get(record.true_class)
        if code is None:
            code = len(table)
            class_codes[record.true_class] = code
            table.append(record.true_class)
        labels.append(code)
    return TraceColumns(
        core=_int64_column(cores, "core ids"),
        access_type=np.asarray(kinds, dtype=np.int8),
        address=_int64_column(addresses, "addresses"),
        instructions=_int64_column(instructions, "instruction counts"),
        thread_id=_int64_column(threads, "thread ids"),
        true_class=np.asarray(labels, dtype=np.int16),
        class_table=tuple(table),
    )


class Trace:
    """An in-memory, columnar sequence of trace records plus metadata.

    The columns are the single source of truth and a trace is effectively
    immutable once built: :attr:`records` (and every other accessor) is a
    view **derived** from the columns, so mutating the returned record list
    does not change the trace the engines replay.  Build a new ``Trace``
    (or new :class:`TraceColumns`) to alter one.
    """

    def __init__(
        self,
        records: Sequence[TraceRecord] | Iterable[TraceRecord] = (),
        *,
        workload: str = "unknown",
        num_cores: int = 0,
        metadata: dict | None = None,
        columns: TraceColumns | None = None,
        events: TraceEvents | None = None,
    ) -> None:
        if columns is None:
            columns = _columns_from_records(list(records))
        columns.validate()
        if events is None:
            events = TraceEvents.empty()
        events.validate()
        if len(events) and int(events.record_index[-1]) >= len(columns):
            raise TraceError(
                "trace event index past the end of the trace: replay would "
                "silently drop it"
            )
        self.columns = columns
        self.events = events
        self.workload = workload
        self.num_cores = num_cores or (
            1 + int(columns.core.max(initial=0))
        )
        self.metadata = dict(metadata or {})
        self._records: list[TraceRecord] | None = None
        self._hot: HotColumns | None = None
        self._hot_rows: dict[tuple[int, int], list[tuple]] = {}
        self._block_numbers: dict[int, list[int]] = {}
        self._page_numbers: dict[int, list[int]] = {}
        self._page_arrays: dict[int, np.ndarray] = {}

    @classmethod
    def from_columns(
        cls,
        columns: TraceColumns,
        *,
        workload: str = "unknown",
        num_cores: int = 0,
        metadata: dict | None = None,
        events: TraceEvents | None = None,
    ) -> "Trace":
        return cls(
            workload=workload,
            num_cores=num_cores,
            metadata=metadata,
            columns=columns,
            events=events,
        )

    @property
    def is_dynamic(self) -> bool:
        """Whether the trace carries behaviour-changing events."""
        return len(self.events) > 0

    # ------------------------------------------------------------------ #
    # Record-oriented view (compatibility API)
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> list[TraceRecord]:
        """The trace as :class:`TraceRecord` objects (materialised lazily).

        A derived, cached view of :attr:`columns`: mutating the returned
        list (or its records) does not modify the trace — the columns stay
        authoritative for ``len``, replay, and persistence.
        """
        if self._records is None:
            cols = self.columns
            table = cols.class_table
            self._records = [
                TraceRecord(
                    core=core,
                    access_type=ACCESS_TYPE_BY_CODE[kind],
                    address=address,
                    instructions=instructions,
                    thread_id=None if thread == NO_THREAD else thread,
                    true_class=table[label],
                )
                for core, kind, address, instructions, thread, label in zip(
                    cols.core.tolist(),
                    cols.access_type.tolist(),
                    cols.address.tolist(),
                    cols.instructions.tolist(),
                    cols.thread_id.tolist(),
                    cols.true_class.tolist(),
                )
            ]
        return self._records

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def total_instructions(self) -> int:
        return int(self.columns.instructions.sum())

    def records_for_core(self, core: int) -> list[TraceRecord]:
        records = self.records
        return [records[i] for i in np.nonzero(self.columns.core == core)[0].tolist()]

    def class_mix(self) -> dict[str, float]:
        """Fraction of references per ground-truth class."""
        total = len(self)
        if not total:
            return {}
        counts = np.bincount(
            self.columns.true_class, minlength=len(self.columns.class_table)
        )
        mix = {
            (name if name is not None else "unknown"): int(count) / total
            for name, count in zip(self.columns.class_table, counts.tolist())
            if count
        }
        return dict(sorted(mix.items()))

    # ------------------------------------------------------------------ #
    # Hot-path accessors (columnar fast path)
    # ------------------------------------------------------------------ #
    def hot_columns(self) -> HotColumns:
        """Plain-list columns for the simulation hot loop (cached)."""
        if self._hot is None:
            cols = self.columns
            codes = cols.access_type.tolist()
            table = cols.class_table
            true_class = [table[label] for label in cols.true_class.tolist()]
            threads = np.where(
                cols.thread_id == NO_THREAD, cols.core, cols.thread_id
            ).tolist()
            self._hot = HotColumns(
                core=cols.core.tolist(),
                access_code=codes,
                address=cols.address.tolist(),
                instructions=cols.instructions.tolist(),
                thread=threads,
                true_class=true_class,
                coarse_class=[
                    _coarse_label(code, label)
                    for code, label in zip(codes, true_class)
                ],
            )
        return self._hot

    def hot_rows(self, block_size: int, page_size: int) -> list[tuple]:
        """Per-record tuples for the replay loop, cached per geometry.

        Each row is ``(core, access code, address, instructions, thread,
        true_class, coarse_class, block number, page number)``.  One list of
        prebuilt tuples iterates with a single iterator where zipping nine
        parallel columns would advance nine.
        """
        rows = self._hot_rows.get((block_size, page_size))
        if rows is None:
            hot = self.hot_columns()
            rows = list(
                zip(
                    hot.core,
                    hot.access_code,
                    hot.address,
                    hot.instructions,
                    hot.thread,
                    hot.true_class,
                    hot.coarse_class,
                    self.block_numbers(block_size),
                    self.page_numbers(page_size),
                )
            )
            self._hot_rows[(block_size, page_size)] = rows
        return rows

    def block_numbers(self, block_size: int) -> list[int]:
        """Per-record block numbers, computed once per (trace, block size)."""
        numbers = self._block_numbers.get(block_size)
        if numbers is None:
            shift = block_size.bit_length() - 1
            numbers = (self.columns.address >> shift).tolist()
            self._block_numbers[block_size] = numbers
        return numbers

    def page_numbers(self, page_size: int) -> list[int]:
        """Per-record page numbers, computed once per (trace, page size)."""
        numbers = self._page_numbers.get(page_size)
        if numbers is None:
            numbers = self.page_number_array(page_size).tolist()
            self._page_numbers[page_size] = numbers
        return numbers

    def page_number_array(self, page_size: int) -> np.ndarray:
        """Per-record page numbers as an int64 array (cached)."""
        array = self._page_arrays.get(page_size)
        if array is None:
            shift = page_size.bit_length() - 1
            array = self.columns.address >> shift
            self._page_arrays[page_size] = array
        return array

    # ------------------------------------------------------------------ #
    # Persistence (JSON-lines; traces are small enough for text)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines (one header line, then records)."""
        path = Path(path)
        cols = self.columns
        table = cols.class_table
        with path.open("w", encoding="utf-8") as handle:
            header = {
                "workload": self.workload,
                "num_cores": self.num_cores,
                "metadata": self.metadata,
            }
            if len(self.events):
                header["events"] = self.events.rows()
            handle.write(json.dumps(header) + "\n")
            for core, kind, address, instructions, thread, label in zip(
                cols.core.tolist(),
                cols.access_type.tolist(),
                cols.address.tolist(),
                cols.instructions.tolist(),
                cols.thread_id.tolist(),
                cols.true_class.tolist(),
            ):
                handle.write(
                    json.dumps(
                        [
                            core,
                            ACCESS_TYPE_BY_CODE[kind].value,
                            address,
                            instructions,
                            None if thread == NO_THREAD else thread,
                            table[label],
                        ]
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        class_codes: dict[Optional[str], int] = {None: 0}
        table: list[Optional[str]] = [None]
        cores: list[int] = []
        kinds: list[int] = []
        addresses: list[int] = []
        instructions: list[int] = []
        threads: list[int] = []
        labels: list[int] = []
        with path.open("r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line:
                raise TraceError(f"trace file {path} is empty")
            header = json.loads(header_line)
            for line in handle:
                core, kind, address, count, thread_id, true_class = json.loads(line)
                cores.append(core)
                kinds.append(_CODE_BY_ACCESS_TYPE[AccessType(kind)])
                addresses.append(address)
                instructions.append(count)
                threads.append(NO_THREAD if thread_id is None else thread_id)
                code = class_codes.get(true_class)
                if code is None:
                    code = len(table)
                    class_codes[true_class] = code
                    table.append(true_class)
                labels.append(code)
        columns = TraceColumns(
            core=_int64_column(cores, "core ids"),
            access_type=np.asarray(kinds, dtype=np.int8),
            address=_int64_column(addresses, "addresses"),
            instructions=_int64_column(instructions, "instruction counts"),
            thread_id=_int64_column(threads, "thread ids"),
            true_class=np.asarray(labels, dtype=np.int16),
            class_table=tuple(table),
        )
        events = header.get("events")
        return cls.from_columns(
            columns,
            workload=header.get("workload", "unknown"),
            num_cores=header.get("num_cores", 0),
            metadata=header.get("metadata", {}),
            events=TraceEvents.from_rows(
                [tuple(row) for row in events]
            ) if events else None,
        )
