"""Trace records and containers.

A trace is the sequence of **L2 references** (L1 misses) observed by the
last-level cache, which is the granularity at which the paper characterises
workloads (Section 3) and at which every design differentiates itself.  Each
record carries the number of instructions the issuing core committed since
its previous L2 reference, so the simulation engine can convert stall cycles
into CPI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.cache.block import AccessType
from repro.errors import TraceError


@dataclass(frozen=True)
class TraceRecord:
    """One L2 reference."""

    core: int
    access_type: AccessType
    address: int
    #: Instructions committed by this core since its previous L2 reference.
    instructions: int = 20
    #: Software thread issuing the access (defaults to one thread per core).
    thread_id: int | None = None
    #: Ground-truth access class assigned by the generator ("instruction",
    #: "private", "shared_rw", "shared_ro").  Used only by the analysis code
    #: (classification-accuracy experiment); designs never see it.
    true_class: str | None = None

    def __post_init__(self) -> None:
        if self.core < 0:
            raise TraceError("core id cannot be negative")
        if self.address < 0:
            raise TraceError("address cannot be negative")
        if self.instructions < 0:
            raise TraceError("instruction count cannot be negative")

    @property
    def thread(self) -> int:
        """Thread id, defaulting to the core id."""
        return self.core if self.thread_id is None else self.thread_id

    @property
    def is_instruction(self) -> bool:
        return self.access_type is AccessType.INSTRUCTION

    @property
    def is_write(self) -> bool:
        return self.access_type is AccessType.STORE


class Trace:
    """An in-memory sequence of trace records plus workload metadata."""

    def __init__(
        self,
        records: Sequence[TraceRecord] | Iterable[TraceRecord],
        *,
        workload: str = "unknown",
        num_cores: int = 0,
        metadata: dict | None = None,
    ) -> None:
        self.records = list(records)
        self.workload = workload
        self.num_cores = num_cores or (
            1 + max((r.core for r in self.records), default=0)
        )
        self.metadata = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.records)

    def records_for_core(self, core: int) -> list[TraceRecord]:
        return [r for r in self.records if r.core == core]

    def class_mix(self) -> dict[str, float]:
        """Fraction of references per ground-truth class."""
        if not self.records:
            return {}
        counts: dict[str, int] = {}
        for record in self.records:
            key = record.true_class or "unknown"
            counts[key] = counts.get(key, 0) + 1
        total = len(self.records)
        return {key: count / total for key, count in sorted(counts.items())}

    # ------------------------------------------------------------------ #
    # Persistence (JSON-lines; traces are small enough for text)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines (one header line, then records)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = {
                "workload": self.workload,
                "num_cores": self.num_cores,
                "metadata": self.metadata,
            }
            handle.write(json.dumps(header) + "\n")
            for record in self.records:
                handle.write(
                    json.dumps(
                        [
                            record.core,
                            record.access_type.value,
                            record.address,
                            record.instructions,
                            record.thread_id,
                            record.true_class,
                        ]
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line:
                raise TraceError(f"trace file {path} is empty")
            header = json.loads(header_line)
            records = []
            for line in handle:
                core, kind, address, instructions, thread_id, true_class = json.loads(
                    line
                )
                records.append(
                    TraceRecord(
                        core=core,
                        access_type=AccessType(kind),
                        address=address,
                        instructions=instructions,
                        thread_id=thread_id,
                        true_class=true_class,
                    )
                )
        return cls(
            records,
            workload=header.get("workload", "unknown"),
            num_cores=header.get("num_cores", 0),
            metadata=header.get("metadata", {}),
        )
