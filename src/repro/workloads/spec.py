"""Workload specifications calibrated to the paper's characterisation.

Each :class:`WorkloadSpec` captures, for one workload, the statistics the
paper reports in Section 3:

* the L2 reference mix across the four access classes (Figure 3);
* the footprint of each class (Figure 4, full-size kilobytes);
* the fraction of read-write blocks and the sharing degree (Figure 2);
* the base (busy) CPI and L2-reference density used by the CPI model.

The absolute numbers are read off the published figures; they are inputs to
the synthetic generators, not measurements of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Workload categories (decides which Table-1 machine runs the workload).
SERVER = "server"
SCIENTIFIC = "scientific"
MULTIPROGRAMMED = "multiprogrammed"


@dataclass(frozen=True)
class AccessClassProfile:
    """Per-class generation parameters.

    Attributes:
        fraction: fraction of L2 references belonging to this class.
        working_set_kb: footprint of the class in full-size kilobytes
            (per core for private data, aggregate otherwise).
        read_write_fraction: fraction of blocks in the class that are
            written at least once.
        zipf_alpha: skew of the popularity distribution over the class's
            blocks (0 = uniform).
        sharers: typical number of cores touching a block of this class
            (used by the characterisation analysis and by the generator to
            restrict scientific shared data to neighbour groups).
    """

    fraction: float
    working_set_kb: float
    read_write_fraction: float = 0.0
    zipf_alpha: float = 0.6
    sharers: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError("class fraction must be within [0, 1]")
        if self.working_set_kb < 0:
            raise ConfigurationError("working set cannot be negative")
        if not 0.0 <= self.read_write_fraction <= 1.0:
            raise ConfigurationError("read-write fraction must be within [0, 1]")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete synthetic workload description."""

    name: str
    category: str
    description: str
    instructions: AccessClassProfile
    private_data: AccessClassProfile
    shared_rw: AccessClassProfile
    shared_ro: AccessClassProfile
    #: Cycles per instruction spent computing (no memory stalls).
    busy_cpi: float = 1.0
    #: Mean instructions committed between consecutive L2 references per core.
    instructions_per_l2_access: float = 25.0
    #: Fraction of L2 references directed at pages that contain more than one
    #: access class (Section 5.2 reports 6%-26% for the studied workloads).
    mixed_page_fraction: float = 0.10
    #: Extra metadata (e.g. which Figure-2 bubble group the workload is in).
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.category not in (SERVER, SCIENTIFIC, MULTIPROGRAMMED):
            raise ConfigurationError(f"unknown category {self.category!r}")
        total = (
            self.instructions.fraction
            + self.private_data.fraction
            + self.shared_rw.fraction
            + self.shared_ro.fraction
        )
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"class fractions of {self.name} sum to {total}, expected 1.0"
            )
        if self.busy_cpi <= 0:
            raise ConfigurationError("busy CPI must be positive")
        if self.instructions_per_l2_access <= 0:
            raise ConfigurationError("instructions_per_l2_access must be positive")
        if not 0.0 <= self.mixed_page_fraction <= 0.5:
            raise ConfigurationError("mixed_page_fraction must be within [0, 0.5]")

    @property
    def class_fractions(self) -> dict[str, float]:
        return {
            "instruction": self.instructions.fraction,
            "private": self.private_data.fraction,
            "shared_rw": self.shared_rw.fraction,
            "shared_ro": self.shared_ro.fraction,
        }

    @property
    def shared_fraction(self) -> float:
        return self.shared_rw.fraction + self.shared_ro.fraction


def _server(
    name: str,
    description: str,
    *,
    instr: float,
    private: float,
    shared_rw: float,
    shared_ro: float,
    instr_ws_kb: float,
    private_ws_kb: float,
    shared_ws_kb: float,
    busy_cpi: float = 1.0,
    instructions_per_l2_access: float = 25.0,
    mixed_page_fraction: float = 0.15,
    private_rw: float = 0.55,
    tags: tuple[str, ...] = (),
) -> WorkloadSpec:
    """Helper for server workloads: universally-shared instructions and data."""
    return WorkloadSpec(
        name=name,
        category=SERVER,
        description=description,
        instructions=AccessClassProfile(
            fraction=instr,
            working_set_kb=instr_ws_kb,
            read_write_fraction=0.0,
            zipf_alpha=1.15,
            sharers=16,
        ),
        private_data=AccessClassProfile(
            fraction=private,
            working_set_kb=private_ws_kb,
            read_write_fraction=private_rw,
            zipf_alpha=0.75,
            sharers=1,
        ),
        shared_rw=AccessClassProfile(
            fraction=shared_rw,
            working_set_kb=shared_ws_kb,
            read_write_fraction=0.95,
            zipf_alpha=0.85,
            sharers=16,
        ),
        shared_ro=AccessClassProfile(
            fraction=shared_ro,
            working_set_kb=shared_ws_kb * 0.25,
            read_write_fraction=0.0,
            zipf_alpha=0.8,
            sharers=16,
        ),
        busy_cpi=busy_cpi,
        instructions_per_l2_access=instructions_per_l2_access,
        mixed_page_fraction=mixed_page_fraction,
        tags=tags,
    )


# --------------------------------------------------------------------------- #
# The eight primary workloads of Table 1 / Figures 7-12
# --------------------------------------------------------------------------- #

OLTP_DB2 = _server(
    "oltp-db2",
    "TPC-C v3.0 on IBM DB2 v8 ESE (100 warehouses, 64 clients)",
    instr=0.45,
    private=0.20,
    shared_rw=0.28,
    shared_ro=0.07,
    instr_ws_kb=1152,
    private_ws_kb=384,
    shared_ws_kb=6144,
    busy_cpi=1.0,
    instructions_per_l2_access=30.0,
    mixed_page_fraction=0.20,
    tags=("oltp", "private-averse"),
)

OLTP_ORACLE = _server(
    "oltp-oracle",
    "TPC-C v3.0 on Oracle 10g Enterprise (100 warehouses, 16 clients)",
    instr=0.52,
    private=0.28,
    shared_rw=0.15,
    shared_ro=0.05,
    instr_ws_kb=1664,
    private_ws_kb=320,
    shared_ws_kb=4096,
    busy_cpi=1.0,
    instructions_per_l2_access=28.0,
    mixed_page_fraction=0.12,
    tags=("oltp", "shared-averse"),
)

APACHE = _server(
    "apache",
    "SPECweb99 on Apache HTTP Server v2.0 (16K connections, fastCGI)",
    instr=0.55,
    private=0.16,
    shared_rw=0.24,
    shared_ro=0.05,
    instr_ws_kb=1024,
    private_ws_kb=256,
    shared_ws_kb=4096,
    busy_cpi=1.1,
    instructions_per_l2_access=26.0,
    mixed_page_fraction=0.26,
    tags=("web", "private-averse"),
)

DSS_QRY6 = _server(
    "dss-qry6",
    "TPC-H query 6 on IBM DB2 v8 ESE (scan-dominated)",
    instr=0.22,
    private=0.62,
    shared_rw=0.11,
    shared_ro=0.05,
    instr_ws_kb=640,
    private_ws_kb=6144,
    shared_ws_kb=8192,
    busy_cpi=0.7,
    instructions_per_l2_access=16.0,
    mixed_page_fraction=0.08,
    private_rw=0.30,
    tags=("dss", "private-averse"),
)

DSS_QRY8 = _server(
    "dss-qry8",
    "TPC-H query 8 on IBM DB2 v8 ESE (join-dominated)",
    instr=0.34,
    private=0.48,
    shared_rw=0.13,
    shared_ro=0.05,
    instr_ws_kb=704,
    private_ws_kb=5120,
    shared_ws_kb=8192,
    busy_cpi=0.8,
    instructions_per_l2_access=18.0,
    mixed_page_fraction=0.10,
    private_rw=0.35,
    tags=("dss", "private-averse"),
)

DSS_QRY13 = _server(
    "dss-qry13",
    "TPC-H query 13 on IBM DB2 v8 ESE",
    instr=0.38,
    private=0.42,
    shared_rw=0.15,
    shared_ro=0.05,
    instr_ws_kb=768,
    private_ws_kb=4608,
    shared_ws_kb=6144,
    busy_cpi=0.85,
    instructions_per_l2_access=20.0,
    mixed_page_fraction=0.10,
    private_rw=0.35,
    tags=("dss", "private-averse"),
)

EM3D = WorkloadSpec(
    name="em3d",
    category=SCIENTIFIC,
    description="em3d electromagnetic wave propagation (768K nodes, 15% remote)",
    instructions=AccessClassProfile(
        fraction=0.03, working_set_kb=48, read_write_fraction=0.0, sharers=16
    ),
    private_data=AccessClassProfile(
        fraction=0.82,
        working_set_kb=4096,
        read_write_fraction=0.65,
        zipf_alpha=0.2,
        sharers=1,
    ),
    shared_rw=AccessClassProfile(
        fraction=0.12,
        working_set_kb=2048,
        read_write_fraction=0.85,
        zipf_alpha=0.3,
        sharers=2,
    ),
    shared_ro=AccessClassProfile(
        fraction=0.03, working_set_kb=512, read_write_fraction=0.0, sharers=4
    ),
    busy_cpi=0.6,
    instructions_per_l2_access=12.0,
    mixed_page_fraction=0.06,
    tags=("scientific", "private-averse", "nearest-neighbor"),
)

MIX = WorkloadSpec(
    name="mix",
    category=MULTIPROGRAMMED,
    description="SPEC CPU2000 multi-programmed mix (gcc, twolf, mcf, art x2)",
    instructions=AccessClassProfile(
        fraction=0.04, working_set_kb=64, read_write_fraction=0.0, sharers=1
    ),
    private_data=AccessClassProfile(
        fraction=0.93,
        working_set_kb=2048,
        read_write_fraction=0.60,
        zipf_alpha=0.5,
        sharers=1,
    ),
    shared_rw=AccessClassProfile(
        fraction=0.02, working_set_kb=128, read_write_fraction=0.80, sharers=2
    ),
    shared_ro=AccessClassProfile(
        fraction=0.01, working_set_kb=64, read_write_fraction=0.0, sharers=2
    ),
    busy_cpi=0.75,
    instructions_per_l2_access=22.0,
    mixed_page_fraction=0.06,
    tags=("multiprogrammed", "shared-averse"),
)

#: The eight workloads driving Figures 7-12, in the paper's presentation order
#: (private-averse first, then shared-averse).
WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        OLTP_DB2,
        APACHE,
        DSS_QRY6,
        DSS_QRY8,
        DSS_QRY13,
        EM3D,
        OLTP_ORACLE,
        MIX,
    )
}

# --------------------------------------------------------------------------- #
# Additional workloads used only for the Figure-2 clustering study
# --------------------------------------------------------------------------- #

SPECWEB_ZEUS = _server(
    "specweb-zeus",
    "SPECweb99 on the Zeus web server",
    instr=0.52,
    private=0.18,
    shared_rw=0.25,
    shared_ro=0.05,
    instr_ws_kb=640,
    private_ws_kb=256,
    shared_ws_kb=2560,
    tags=("web",),
)

DSS_QRY16 = _server(
    "dss-qry16",
    "TPC-H query 16 on IBM DB2 v8 ESE",
    instr=0.36,
    private=0.45,
    shared_rw=0.14,
    shared_ro=0.05,
    instr_ws_kb=540,
    private_ws_kb=8192,
    shared_ws_kb=6144,
    private_rw=0.35,
    tags=("dss",),
)

OCEAN = WorkloadSpec(
    name="ocean",
    category=SCIENTIFIC,
    description="ocean current simulation (nearest-neighbour grid exchange)",
    instructions=AccessClassProfile(fraction=0.03, working_set_kb=48, sharers=16),
    private_data=AccessClassProfile(
        fraction=0.78, working_set_kb=8192, read_write_fraction=0.70, sharers=1
    ),
    shared_rw=AccessClassProfile(
        fraction=0.15, working_set_kb=3072, read_write_fraction=0.90, sharers=4
    ),
    shared_ro=AccessClassProfile(fraction=0.04, working_set_kb=512, sharers=6),
    busy_cpi=0.6,
    instructions_per_l2_access=12.0,
    mixed_page_fraction=0.06,
    tags=("scientific", "nearest-neighbor"),
)

MOLDYN = WorkloadSpec(
    name="moldyn",
    category=SCIENTIFIC,
    description="molecular dynamics (producer-consumer force exchange)",
    instructions=AccessClassProfile(fraction=0.02, working_set_kb=32, sharers=16),
    private_data=AccessClassProfile(
        fraction=0.84, working_set_kb=6144, read_write_fraction=0.60, sharers=1
    ),
    shared_rw=AccessClassProfile(
        fraction=0.11, working_set_kb=1536, read_write_fraction=0.85, sharers=2
    ),
    shared_ro=AccessClassProfile(fraction=0.03, working_set_kb=256, sharers=2),
    busy_cpi=0.6,
    instructions_per_l2_access=14.0,
    mixed_page_fraction=0.05,
    tags=("scientific", "producer-consumer"),
)

SPARSE = WorkloadSpec(
    name="sparse",
    category=SCIENTIFIC,
    description="sparse matrix solver",
    instructions=AccessClassProfile(fraction=0.03, working_set_kb=40, sharers=16),
    private_data=AccessClassProfile(
        fraction=0.80, working_set_kb=7168, read_write_fraction=0.55, sharers=1
    ),
    shared_rw=AccessClassProfile(
        fraction=0.13, working_set_kb=2048, read_write_fraction=0.80, sharers=3
    ),
    shared_ro=AccessClassProfile(fraction=0.04, working_set_kb=384, sharers=4),
    busy_cpi=0.65,
    instructions_per_l2_access=14.0,
    mixed_page_fraction=0.05,
    tags=("scientific",),
)

#: Extended catalogue used by the Figure-2 clustering bench (the paper plots
#: a wider set of workloads in Figure 2 than it simulates in Figures 7-12).
EXTENDED_WORKLOADS: dict[str, WorkloadSpec] = {
    **WORKLOADS,
    **{
        spec.name: spec
        for spec in (SPECWEB_ZEUS, DSS_QRY16, OCEAN, MOLDYN, SPARSE)
    },
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by name in the extended catalogue."""
    try:
        return EXTENDED_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(EXTENDED_WORKLOADS))
        raise ConfigurationError(
            f"unknown workload {name!r}; known workloads: {known}"
        ) from None
