"""Synthetic L2 reference trace generation.

The generator turns a :class:`~repro.workloads.spec.WorkloadSpec` into a
stream of :class:`~repro.workloads.trace.TraceRecord` whose statistics match
the paper's characterisation:

* the access-class mix follows Figure 3;
* each class draws blocks from a footprint sized per Figure 4 (scaled by the
  same factor as the system configuration);
* instructions and server shared data are touched by every core while
  private data is touched by exactly one core, reproducing the Figure-2
  clustering; scientific shared data is restricted to small neighbour groups
  (producer-consumer and nearest-neighbour sharing);
* accesses from different cores are finely interleaved, reproducing the
  Figure-5 reuse behaviour;
* a configurable fraction of references lands on *mixed pages* that contain
  both shared and private blocks, which is what makes the page-granularity
  classification slightly imperfect (Section 5.2).

Addresses are *physical*: every logical page of every region is mapped to a
unique, pseudo-randomly chosen physical page frame, the way an operating
system's page allocator scatters a working set across physical memory.  This
keeps the address bits used for set indexing and slice interleaving uniformly
distributed even for the scaled-down working sets, so no design sees
artificial conflict hot-spots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cmp.config import SystemConfig
from repro.errors import ConfigurationError, TraceError
from repro.workloads.spec import MULTIPROGRAMMED, SCIENTIFIC, WorkloadSpec
from repro.workloads.trace import (
    INSTRUCTION_CODE,
    LOAD_CODE,
    NO_THREAD,
    STORE_CODE,
    Trace,
    TraceColumns,
)

#: Size of the physical address space the page allocator draws frames from.
PHYSICAL_PAGE_FRAMES = 1 << 20

#: Default capacity scale used by the experiments (divides both the cache
#: sizes in :meth:`SystemConfig.scaled` and the working sets here).
DEFAULT_SCALE = 32

#: Fraction of accesses on a mixed page that touch its private blocks.
_MIXED_PRIVATE_ACCESS_FRACTION = 0.03

#: Store probability is this multiple of a class's read-write block fraction.
_STORE_PROBABILITY_FACTOR = 0.35


@dataclass(frozen=True)
class _ClassRegion:
    """One access class's block pool.

    ``addresses`` holds the physical byte address of every block in the
    class's working set: shape ``(num_blocks,)`` for regions shared by all
    cores and ``(num_cores, num_blocks)`` for per-core (private) regions.
    """

    name: str
    addresses: np.ndarray
    probabilities: np.ndarray | None
    store_probability: float
    per_core: bool = False

    @property
    def num_blocks(self) -> int:
        return int(self.addresses.shape[-1])


def _zipf_probabilities(num_blocks: int, alpha: float) -> np.ndarray | None:
    """Zipf-like popularity over ``num_blocks`` ranks (None means uniform)."""
    if num_blocks <= 1 or alpha <= 0.0:
        return None
    ranks = np.arange(1, num_blocks + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


class SyntheticTraceGenerator:
    """Generates deterministic synthetic traces for one workload."""

    def __init__(
        self,
        spec: WorkloadSpec,
        config: SystemConfig,
        *,
        seed: int = 0,
        scale: float = DEFAULT_SCALE,
        migration_rate: float = 0.0,
    ) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if not 0.0 <= migration_rate < 1.0:
            raise ConfigurationError("migration_rate must be within [0, 1)")
        self.spec = spec
        self.config = config
        self.scale = scale
        self.seed = seed
        self.migration_rate = migration_rate
        self.num_cores = config.num_tiles
        self.block_size = config.block_size
        self.page_size = config.page_size
        self._rng = np.random.default_rng(seed)
        self._free_frames = self._rng.permutation(PHYSICAL_PAGE_FRAMES).astype(np.int64)
        self._next_frame = 0
        self._regions = self._build_regions()
        self._class_names = ["instruction", "private", "shared_rw", "shared_ro"]
        self._class_probs = np.array(
            [
                spec.instructions.fraction,
                spec.private_data.fraction,
                spec.shared_rw.fraction,
                spec.shared_ro.fraction,
            ]
        )
        self._class_probs = self._class_probs / self._class_probs.sum()
        self._mixed_blocks = self._build_mixed_region()

    # ------------------------------------------------------------------ #
    # Region construction
    # ------------------------------------------------------------------ #
    def _blocks_for(self, working_set_kb: float) -> int:
        scaled_bytes = working_set_kb * 1024.0 / self.scale
        return max(4, int(math.ceil(scaled_bytes / self.block_size)))

    def _allocate_frames(self, count: int) -> np.ndarray:
        """Hand out ``count`` unique pseudo-random physical page frames."""
        if self._next_frame + count > len(self._free_frames):
            raise ConfigurationError(
                "workload working sets exceed the modelled physical memory"
            )
        frames = self._free_frames[self._next_frame : self._next_frame + count]
        self._next_frame += count
        return frames

    def _allocate_block_addresses(self, num_blocks: int) -> np.ndarray:
        """Physical byte addresses for a contiguous *logical* run of blocks."""
        blocks_per_page = max(1, self.page_size // self.block_size)
        num_pages = int(math.ceil(num_blocks / blocks_per_page))
        frames = self._allocate_frames(num_pages)
        index = np.arange(num_blocks, dtype=np.int64)
        return (
            frames[index // blocks_per_page] * self.page_size
            + (index % blocks_per_page) * self.block_size
        )

    def _build_region(
        self,
        name: str,
        profile,
        *,
        store_probability: float,
        per_core: bool,
    ) -> _ClassRegion:
        num_blocks = self._blocks_for(profile.working_set_kb)
        if per_core:
            addresses = np.stack(
                [self._allocate_block_addresses(num_blocks) for _ in range(self.num_cores)]
            )
        else:
            addresses = self._allocate_block_addresses(num_blocks)
        return _ClassRegion(
            name=name,
            addresses=addresses,
            probabilities=_zipf_probabilities(num_blocks, profile.zipf_alpha),
            store_probability=store_probability,
            per_core=per_core,
        )

    def _build_regions(self) -> dict[str, _ClassRegion]:
        spec = self.spec
        return {
            "instruction": self._build_region(
                "instruction",
                spec.instructions,
                store_probability=0.0,
                per_core=spec.category == MULTIPROGRAMMED,
            ),
            "private": self._build_region(
                "private",
                spec.private_data,
                store_probability=_STORE_PROBABILITY_FACTOR
                * spec.private_data.read_write_fraction,
                per_core=True,
            ),
            "shared_rw": self._build_region(
                "shared_rw",
                spec.shared_rw,
                store_probability=_STORE_PROBABILITY_FACTOR
                * spec.shared_rw.read_write_fraction,
                per_core=False,
            ),
            "shared_ro": self._build_region(
                "shared_ro",
                spec.shared_ro,
                store_probability=0.0,
                per_core=False,
            ),
        }

    def _build_mixed_region(self) -> dict[str, np.ndarray]:
        """Blocks living on pages that hold both shared and private data.

        Each mixed page is filled mostly with shared read-write blocks; the
        last block of the page is reserved as a private block belonging to
        one particular core (page ``i`` belongs to core ``i % num_cores``).
        Built with broadcast arithmetic — page bases outer-added to the
        block offsets — in the same page-major order the old per-page loop
        produced.
        """
        blocks_per_page = max(2, self.page_size // self.block_size)
        shared_region = self._regions["shared_rw"]
        num_pages = max(
            self.num_cores,
            int(
                self.spec.mixed_page_fraction
                * shared_region.num_blocks
                / blocks_per_page
            ),
        )
        page_bases = self._allocate_frames(num_pages) * np.int64(self.page_size)
        offsets = np.arange(blocks_per_page - 1, dtype=np.int64) * self.block_size
        return {
            "shared": (page_bases[:, None] + offsets[None, :]).reshape(-1),
            "private": page_bases + (blocks_per_page - 1) * self.block_size,
        }

    # ------------------------------------------------------------------ #
    # Public properties
    # ------------------------------------------------------------------ #
    @property
    def working_set_blocks(self) -> dict[str, int]:
        """Scaled footprint of each class, in blocks."""
        result = {name: region.num_blocks for name, region in self._regions.items()}
        result["private_total"] = result["private"] * self.num_cores
        return result

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #
    def _sample_block_indices(self, region: _ClassRegion, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if region.probabilities is None:
            return self._rng.integers(0, region.num_blocks, size=count, dtype=np.int64)
        return self._rng.choice(
            region.num_blocks, size=count, p=region.probabilities
        ).astype(np.int64)

    def _shared_group_for_core(self, core: int, region: _ClassRegion) -> tuple[int, int]:
        """Block-index window a core may touch in a neighbour-shared region."""
        sharers = max(1, min(self.num_cores, self.spec.shared_rw.sharers))
        if sharers >= self.num_cores:
            return 0, region.num_blocks
        group_size = max(1, region.num_blocks // self.num_cores)
        start = (core % self.num_cores) * group_size
        span = group_size * sharers
        return start, span

    def _addresses_for_class(self, class_name: str, cores: np.ndarray) -> np.ndarray:
        """Byte addresses for one class's references (one per entry of ``cores``)."""
        region = self._regions[class_name]
        count = len(cores)
        if count == 0:
            return np.empty(0, dtype=np.int64)

        indices = self._sample_block_indices(region, count)

        if class_name in ("shared_rw", "shared_ro") and self.spec.category in (
            SCIENTIFIC,
        ):
            # Restrict each core to its neighbour group (2-6 sharers).
            starts = np.empty(count, dtype=np.int64)
            spans = np.empty(count, dtype=np.int64)
            for core in np.unique(cores):
                mask = cores == core
                start, span = self._shared_group_for_core(int(core), region)
                starts[mask] = start
                spans[mask] = max(1, span)
            indices = starts + (indices % spans)
            indices %= region.num_blocks

        if region.per_core:
            addresses = region.addresses[cores.astype(np.int64), indices]
        else:
            addresses = region.addresses[indices]
        addresses = addresses.copy()

        # Redirect a slice of references to the mixed pages.
        if class_name == "shared_rw" and len(self._mixed_blocks["shared"]):
            mixed_mask = (
                self._rng.random(count) < self.spec.mixed_page_fraction
            )
            n_mixed = int(mixed_mask.sum())
            if n_mixed:
                addresses[mixed_mask] = self._rng.choice(
                    self._mixed_blocks["shared"], size=n_mixed
                )
        if class_name == "private" and len(self._mixed_blocks["private"]):
            mixed_mask = self._rng.random(count) < (
                self.spec.mixed_page_fraction * _MIXED_PRIVATE_ACCESS_FRACTION
            )
            n_mixed = int(mixed_mask.sum())
            if n_mixed:
                # A core touches only the mixed-page private block it owns.
                owned = self._mixed_blocks["private"][
                    cores[mixed_mask] % len(self._mixed_blocks["private"])
                ]
                addresses[mixed_mask] = owned
        return addresses

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, num_records: int) -> Trace:
        """Generate a trace with ``num_records`` L2 references."""
        if num_records <= 0:
            raise TraceError("num_records must be positive")
        rng = self._rng
        cores = rng.integers(0, self.num_cores, size=num_records)
        class_ids = rng.choice(len(self._class_names), size=num_records, p=self._class_probs)
        instructions = rng.geometric(
            1.0 / self.spec.instructions_per_l2_access, size=num_records
        )
        store_draw = rng.random(num_records)

        addresses = np.zeros(num_records, dtype=np.int64)
        is_store = np.zeros(num_records, dtype=bool)
        for class_index, class_name in enumerate(self._class_names):
            mask = class_ids == class_index
            if not mask.any():
                continue
            addresses[mask] = self._addresses_for_class(class_name, cores[mask])
            region = self._regions[class_name]
            if region.store_probability > 0:
                is_store[mask] = store_draw[mask] < region.store_probability

        # Assemble the columnar trace directly — no per-record Python objects.
        instruction_class = self._class_names.index("instruction")
        access_codes = np.where(
            class_ids == instruction_class,
            INSTRUCTION_CODE,
            np.where(is_store, STORE_CODE, LOAD_CODE),
        ).astype(np.int8)
        # Class ids index ``_class_names``; the code table is None-first, so
        # the ground-truth code is simply the class id shifted by one.
        class_table: tuple[str | None, ...] = (None, *self._class_names)
        label_codes = (class_ids + 1).astype(np.int16)
        columns = TraceColumns(
            core=cores.astype(np.int64),
            access_type=access_codes,
            address=addresses,
            instructions=instructions.astype(np.int64),
            thread_id=np.full(num_records, NO_THREAD, dtype=np.int64),
            true_class=label_codes,
            class_table=class_table,
        )
        return Trace.from_columns(
            columns,
            workload=self.spec.name,
            num_cores=self.num_cores,
            metadata={
                "seed": self.seed,
                "scale": self.scale,
                "category": self.spec.category,
                "working_set_blocks": self.working_set_blocks,
            },
        )


def generate_trace(
    spec: WorkloadSpec,
    config: SystemConfig,
    num_records: int,
    *,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
) -> Trace:
    """One-call convenience wrapper around :class:`SyntheticTraceGenerator`."""
    generator = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale)
    return generator.generate(num_records)
