"""Content-addressed, memory-mapped trace persistence.

The paper's evaluation replays one workload trace against every design
point, so the trace lifecycle dominates a grid's wall clock once replay is
fast: without a shared store every worker process regenerates each trace
from scratch.  :class:`TraceStore` turns the trace into a build artifact:

:class:`TraceKey`
    Identifies one generated trace: ``(workload, num_records, scale, seed,
    spec-hash)``.  The spec hash fingerprints the *resolved* workload
    specification (including the dynamic phases/schedule for scenario
    traces) and the scaled machine configuration the generator derives
    addresses from, so editing a workload's parameters — or the machine
    geometry — invalidates its cached traces without manual versioning.

:class:`TraceStore`
    A directory of ``<workload>.<hash>.npz`` files in the binary columnar
    format of :meth:`repro.workloads.trace.Trace.save`.  ``get`` memory-maps
    a stored trace (zero-copy: all processes share one physical copy of the
    column data through the page cache); ``put`` writes atomically so
    concurrent workers cannot observe a torn file; corrupt files read as
    misses and are regenerated.  Every *actual* generation appends one line
    to ``generated.log``, which is what lets the tests assert that a cold
    parallel grid generates each workload trace exactly once.  ``gc`` caps
    the store with an LRU sweep (``repro traces gc --max-bytes N``); hits
    bump file mtimes, so eviction order tracks actual use.

The cache location is controlled by ``RNUCA_TRACE_DIR`` (default
``traces/``); see :class:`repro.sim.runner.BatchRunner` for how the parent
process pre-materialises traces and workers attach read-only.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
from collections.abc import Callable
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro import knobs
from repro.check.locks import TrackedLock, make_lock, note_write
from repro.errors import TraceError
from repro.faults import FaultInjector, FaultPlan, default_fault_plan
from repro.workloads.trace import Trace

if TYPE_CHECKING:
    from repro.cmp.config import SystemConfig
    from repro.dynamics.spec import DynamicWorkloadSpec
    from repro.workloads.spec import WorkloadSpec

#: Environment variable selecting the trace-store directory.
TRACE_DIR_ENV = knobs.TRACE_DIR.name

#: Default directory for the binary trace cache.
DEFAULT_TRACE_DIR = "traces"

#: Append-only log of traces the store actually generated (one line per
#: generation, the stored file's name).  Cache hits do not log.
GENERATION_LOG = "generated.log"

#: Subdirectory corrupt trace files are moved into on read (evidence is
#: preserved and counted, then the caller regenerates).
QUARANTINE_DIR = "quarantine"


def spec_fingerprint(
    spec: WorkloadSpec,
    dyn: DynamicWorkloadSpec | None = None,
    config: SystemConfig | None = None,
) -> str:
    """Digest of everything trace generation consumes.

    All three arguments are (frozen) dataclasses; ``dataclasses.asdict``
    flattens them — nested profiles, phases, schedules, cache and memory
    geometry and all — into plain dicts whose canonical JSON form is
    hashed.  Any change to a generation parameter therefore changes the
    fingerprint and retires stale traces.  ``config`` (the scaled
    :class:`~repro.cmp.config.SystemConfig`) matters because the generator
    derives addresses from the machine's page/block geometry and core
    count: two traces for the same workload on different machines are
    different artifacts.
    """
    payload: dict[str, object] = {"spec": asdict(spec)}
    if dyn is not None:
        payload["dynamic"] = asdict(dyn)
    if config is not None:
        payload["config"] = asdict(config)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TraceKey:
    """Identity of one generated trace; the store's content address."""

    workload: str
    num_records: int
    scale: float
    seed: int
    spec_hash: str

    @classmethod
    def make(
        cls,
        workload: str,
        *,
        num_records: int,
        scale: float,
        seed: int,
        spec: WorkloadSpec,
        dyn: DynamicWorkloadSpec | None = None,
        config: SystemConfig | None = None,
    ) -> TraceKey:
        return cls(
            workload=workload,
            num_records=int(num_records),
            scale=float(scale),
            seed=int(seed),
            spec_hash=spec_fingerprint(spec, dyn, config),
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "num_records": self.num_records,
            "scale": self.scale,
            "seed": self.seed,
            "spec_hash": self.spec_hash,
        }

    @property
    def content_hash(self) -> str:
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]

    @property
    def filename(self) -> str:
        # Scenario names carry ":" (e.g. "oltp-db2:migrate"); keep the
        # filename portable across filesystems.
        slug = re.sub(r"[^A-Za-z0-9._-]", "_", self.workload)
        return f"{slug}.{self.content_hash}.npz"


class TraceStore:
    """A directory of content-addressed binary columnar trace files.

    A corrupt file — a crashed writer, a damaged cache — is **quarantined**
    on read (moved into ``quarantine/`` and counted) so the caller
    regenerates while the evidence survives for inspection.  ``faults=None``
    (the default) picks up the ``RNUCA_FAULTS`` plan for the ``store-io``
    injection site; pass an empty plan to opt out.
    """

    def __init__(
        self,
        directory: str | Path = DEFAULT_TRACE_DIR,
        *,
        faults: FaultPlan | None = None,
    ) -> None:
        self.directory = Path(directory)
        plan = faults if faults is not None else default_fault_plan()
        self._injector = FaultInjector(plan) if plan is not None else None
        self.quarantined = 0
        self._quarantine_lock: TrackedLock = make_lock("traces.quarantine")

    @classmethod
    def from_env(cls) -> TraceStore:
        """Store at ``RNUCA_TRACE_DIR``, defaulting to ``traces/``."""
        return cls(knobs.trace_dir() or DEFAULT_TRACE_DIR)

    def path_for(self, key: TraceKey) -> Path:
        return self.directory / key.filename

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt file aside (keeping the evidence) and count it."""
        target_dir = self.directory / QUARANTINE_DIR
        with contextlib.suppress(OSError):
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        with self._quarantine_lock:
            self.quarantined += 1
            note_write("TraceStore.quarantined", self._quarantine_lock)

    def quarantined_files(self) -> list[Path]:
        """Every quarantined trace file currently on disk, sorted by name."""
        target_dir = self.directory / QUARANTINE_DIR
        if not target_dir.is_dir():
            return []
        return sorted(target_dir.glob("*.npz"))

    def get(self, key: TraceKey, *, mmap: bool = True) -> Trace | None:
        """The stored trace for ``key`` (memory-mapped), or ``None``.

        A corrupt or truncated file is quarantined and reads as a miss, so
        the caller regenerates instead of crashing.  Every hit bumps the
        file's modification time, which is the recency :meth:`gc` evicts
        by (least recently *used*, not least recently written).
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        if self._injector is not None and self._injector.fires(
            "store-io", key.content_hash
        ):
            return None  # injected read failure: degrade to a miss, regenerate
        try:
            trace = Trace.load(path, mmap=mmap)
        except TraceError:
            self._quarantine(path)
            return None
        except OSError:
            return None  # transient read error: a miss, but not corruption
        with contextlib.suppress(OSError):
            # Read-only store: recency tracking degrades, reads still work.
            os.utime(path)
        return trace

    def put(self, key: TraceKey, trace: Trace) -> Path:
        """Persist ``trace`` under ``key`` atomically (write + rename)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            trace.save(tmp)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def get_or_create(self, key: TraceKey, factory: Callable[[], Trace]) -> tuple[Trace, bool]:
        """Return ``(trace, was_cache_hit)``, generating at most once.

        On a miss, ``factory()`` builds the trace, the store persists it,
        and the generation is logged; the freshly built in-memory trace is
        returned (identical, column for column, to what a later
        memory-mapped ``get`` yields).
        """
        cached = self.get(key)
        if cached is not None:
            return cached, True
        trace = factory()
        self.put(key, trace)
        self._log_generation(key)
        return trace, False

    def _log_generation(self, key: TraceKey) -> None:
        # O_APPEND writes of one short line are atomic on POSIX, so worker
        # processes can log concurrently without interleaving.
        with (self.directory / GENERATION_LOG).open("a", encoding="utf-8") as handle:
            handle.write(f"{key.filename}\n")

    def generation_log(self) -> list[str]:
        """Filenames of every trace this store actually generated, in order."""
        path = self.directory / GENERATION_LOG
        if not path.exists():
            return []
        return path.read_text(encoding="utf-8").splitlines()

    # ------------------------------------------------------------------ #
    # Eviction (``repro traces gc``)
    # ------------------------------------------------------------------ #
    def entries(self) -> list[tuple[Path, int, float]]:
        """Every stored trace as ``(path, size_bytes, mtime)``, oldest first.

        Files that vanish mid-scan (a concurrent gc, a crashed writer's
        cleanup) are skipped rather than raised.
        """
        if not self.directory.is_dir():
            return []
        rows: list[tuple[Path, int, float]] = []
        for path in self.directory.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append((path, stat.st_size, stat.st_mtime))
        rows.sort(key=lambda row: (row[2], row[0].name))
        return rows

    def size_bytes(self) -> int:
        """Total bytes of stored traces (the ``generated.log`` is not counted)."""
        return sum(size for _, size, _ in self.entries())

    def gc(self, max_bytes: int, *, dry_run: bool = False) -> list[Path]:
        """LRU sweep: evict least-recently-used traces until ``max_bytes`` fits.

        Recency is each file's modification time, which :meth:`get` bumps on
        every hit and :meth:`put` sets on write, so the sweep drops the
        traces no run has touched for longest.  Returns the evicted paths
        (with ``dry_run=True``, the paths that *would* be evicted, deleting
        nothing).  Eviction is safe by construction: the store is
        content-addressed, so a swept trace that is needed again simply
        regenerates on the next miss.
        """
        if max_bytes < 0:
            raise TraceError("max_bytes cannot be negative")
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        evicted: list[Path] = []
        for path, size, _ in entries:
            if total <= max_bytes:
                break
            if not dry_run:
                with contextlib.suppress(FileNotFoundError):
                    # A concurrent sweep may get there first; same outcome.
                    path.unlink()
            total -= size
            evicted.append(path)
        return evicted
