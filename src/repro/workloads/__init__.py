"""Synthetic workloads calibrated to the paper's characterisation (Section 3).

The paper evaluates commercial server workloads (TPC-C on DB2 and Oracle,
SPECweb99 on Apache, TPC-H queries), one scientific application (em3d) and a
multi-programmed SPEC CPU2000 mix, running on Solaris inside FLEXUS.  None of
those traces are available, so this package generates synthetic L2 reference
traces whose access-class mix, sharing behaviour, read-write ratios and
working-set footprints follow the statistics the paper itself reports in
Figures 2-5.
"""

from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import (
    EXTENDED_WORKLOADS,
    WORKLOADS,
    AccessClassProfile,
    WorkloadSpec,
    get_workload,
)
from repro.workloads.store import TraceKey, TraceStore, spec_fingerprint
from repro.workloads.trace import Trace, TraceRecord

__all__ = [
    "AccessClassProfile",
    "WorkloadSpec",
    "WORKLOADS",
    "EXTENDED_WORKLOADS",
    "get_workload",
    "Trace",
    "TraceRecord",
    "TraceKey",
    "TraceStore",
    "spec_fingerprint",
    "SyntheticTraceGenerator",
]
