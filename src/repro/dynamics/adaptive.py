"""Feedback-driven (adaptive) scheduling: load balancing during replay.

Everything in :mod:`repro.dynamics` up to this module is *open-loop*: phases
and migrations are fixed when the trace is generated, and the engine merely
replays them.  This module closes the loop.  An :class:`AdaptiveScheduler`
rides along with the replay engine, observes per-core **pressure** (access
counts the engine feeds back after every window of records), and emits
:class:`MigrationDecision` thread moves that the engine applies to the rest
of the replay — the dataflow inverts from trace→engine to
engine→scheduler→engine.

Two properties make this compose with the rest of the system:

* **Traces stay static.**  A decision never rewrites the trace; it installs
  a thread→core override inside the engine, so the same stored trace serves
  every scheduler and the exactly-once trace store is untouched.  The
  scheduler is a *replay-time* axis: it rides into the
  :class:`~repro.sim.runner.ResultStore` content hash as an ordinary
  experiment-point parameter (``scheduler=greedy``).
* **Decisions are deterministic.**  Policies draw tie-breaks and
  exploration from a seeded :class:`numpy.random.Generator` that is re-seeded
  at the start of every run, and pressure windows are delimited by record
  counts, so the same (trace, policy, seed) triple produces bit-identical
  :class:`~repro.sim.stats.SimulationStats` in any process — pinned by
  ``tests/test_adaptive.py``.

Policies
--------

``greedy`` (:class:`GreedyRebalancePolicy`)
    When the pressure imbalance of a window exceeds a threshold, move the
    hottest thread off the most-pressured core onto the least-pressured one
    — but only if that projected move actually lowers the peak.

``reinforced`` (:class:`ReinforcedCounterPolicy`)
    A hysteresis variant in the spirit of the adaptive-caching literature
    (Ioannidis & Yeh, "Adaptive Caching Networks with Optimality
    Guarantees"): candidate moves accumulate reinforcement credit while the
    imbalance persists and decay while it does not; a thread only migrates
    once its credit crosses a patience threshold, so a one-window noise
    spike cannot trigger a move.  A small seeded exploration probability
    occasionally reinforces the runner-up thread instead of the hottest.

The engine charges applied decisions through the ordinary OS machinery: the
:class:`~repro.osmodel.scheduler.ThreadScheduler` records the move, and the
classifier's next TLB miss on an affected page re-owns it (or reclassifies
it shared) through the Section-4.3 state machine, exactly as a
generation-time migration would be charged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Replay-time scheduler names accepted by the CLI and the runner
#: ("fixed" replays schedules as generated and engages none of this module).
SCHEDULERS = ("fixed", "greedy", "reinforced")

#: Default pressure-window length, in trace records.
DEFAULT_WINDOW_RECORDS = 1_000

#: Default imbalance threshold above which a policy considers moving.
DEFAULT_IMBALANCE_THRESHOLD = 0.25


@dataclass(frozen=True)
class MigrationDecision:
    """One thread move requested by a policy."""

    thread_id: int
    to_core: int


@dataclass(frozen=True)
class WindowPressure:
    """What the engine feeds back to the policy after one window.

    ``pressure`` holds per-core access counts over the window (indexed by
    core id, post-override cores — the cores that actually serviced the
    accesses).  ``thread_counts``/``thread_core`` break the same window
    down by software thread.
    """

    index: int
    pressure: tuple[int, ...]
    thread_counts: dict[int, int]
    thread_core: dict[int, int]

    @property
    def total(self) -> int:
        return sum(self.pressure)

    @property
    def imbalance(self) -> float:
        """Peak excess over the mean: ``max/mean - 1`` (0.0 when idle).

        0.0 means perfectly balanced; 1.0 means the busiest core carries
        twice the mean load.  Deterministic integer arithmetic until the
        final division.
        """
        total = self.total
        if not total:
            return 0.0
        mean = total / len(self.pressure)
        return max(self.pressure) / mean - 1.0

    def hottest_core(self) -> int:
        """Most-pressured core (lowest id wins ties)."""
        return max(range(len(self.pressure)), key=lambda c: (self.pressure[c], -c))

    def coolest_cores(self) -> list[int]:
        """All cores tied for the minimum pressure, ascending by id."""
        low = min(self.pressure)
        return [c for c, p in enumerate(self.pressure) if p == low]

    def threads_on(self, core: int) -> list[tuple[int, int]]:
        """``(count, thread)`` pairs on one core, hottest first, id ties low."""
        pairs = [
            (count, thread)
            for thread, count in self.thread_counts.items()
            if self.thread_core.get(thread) == core
        ]
        return sorted(pairs, key=lambda pair: (-pair[0], pair[1]))


class SchedulingPolicy:
    """Interface every replay-time scheduling policy implements."""

    name = "abstract"

    def reset(self) -> None:
        """Re-seed and clear all decision state (called once per run)."""
        raise NotImplementedError

    def decide(self, window: WindowPressure) -> list[MigrationDecision]:
        """Migration decisions to apply before the next window replays."""
        raise NotImplementedError


def _improves(window: WindowPressure, count: int, src: int, dst: int) -> bool:
    """Whether moving ``count`` accesses from ``src`` to ``dst`` lowers the peak.

    Guards both degenerate cases: a core running a single thread (the move
    would just relocate the peak) and a destination that would end up worse
    than the source it relieved.
    """
    return window.pressure[dst] + count < window.pressure[src]


class GreedyRebalancePolicy(SchedulingPolicy):
    """Move the hottest thread off the most-pressured core when imbalanced."""

    name = "greedy"

    def __init__(
        self,
        *,
        threshold: float = DEFAULT_IMBALANCE_THRESHOLD,
        seed: int = 0,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError("imbalance threshold cannot be negative")
        self.threshold = threshold
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def decide(self, window: WindowPressure) -> list[MigrationDecision]:
        if window.total == 0 or window.imbalance <= self.threshold:
            return []
        src = window.hottest_core()
        ranked = window.threads_on(src)
        if not ranked:
            return []
        count, thread = ranked[0]
        targets = window.coolest_cores()
        dst = int(targets[self._rng.integers(len(targets))])
        if dst == src or not _improves(window, count, src, dst):
            return []
        return [MigrationDecision(thread_id=thread, to_core=dst)]


class ReinforcedCounterPolicy(SchedulingPolicy):
    """Reinforcement counters with decay: migrate only on persistent pressure."""

    name = "reinforced"

    def __init__(
        self,
        *,
        threshold: float = DEFAULT_IMBALANCE_THRESHOLD,
        patience: int = 2,
        decay: float = 0.5,
        explore: float = 0.1,
        seed: int = 0,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError("imbalance threshold cannot be negative")
        if patience < 1:
            raise ConfigurationError("patience must be at least 1")
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError("decay must be within [0, 1)")
        if not 0.0 <= explore < 1.0:
            raise ConfigurationError("explore must be within [0, 1)")
        self.threshold = threshold
        self.patience = patience
        self.decay = decay
        self.explore = explore
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._credit: dict[int, float] = {}

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._credit = {}

    def _decay_all(self, keep: int | None = None) -> None:
        for thread in list(self._credit):
            if thread == keep:
                continue
            self._credit[thread] *= self.decay
            if self._credit[thread] < 1e-3:
                del self._credit[thread]

    def decide(self, window: WindowPressure) -> list[MigrationDecision]:
        if window.total == 0 or window.imbalance <= self.threshold:
            self._decay_all()
            return []
        src = window.hottest_core()
        ranked = window.threads_on(src)
        if not ranked:
            self._decay_all()
            return []
        pick = ranked[0]
        if len(ranked) > 1 and self._rng.random() < self.explore:
            pick = ranked[1]  # explore the runner-up occasionally
        count, thread = pick
        self._decay_all(keep=thread)
        self._credit[thread] = self._credit.get(thread, 0.0) + 1.0
        if self._credit[thread] < self.patience:
            return []
        targets = window.coolest_cores()
        dst = int(targets[self._rng.integers(len(targets))])
        if dst == src or not _improves(window, count, src, dst):
            return []
        del self._credit[thread]
        return [MigrationDecision(thread_id=thread, to_core=dst)]


class AdaptiveScheduler:
    """The replay-side controller pairing a policy with its run state.

    The engine drives it: :meth:`begin_run` resets everything (so one
    scheduler object can serve many runs deterministically), then after
    every ``window_records`` replayed records the engine calls
    :meth:`observe` with the window's per-thread access counts and applies
    the returned decisions, reporting each applied move back through
    :meth:`record_applied`.  The per-window imbalance series and the
    applied-migration log end up in
    :attr:`~repro.sim.stats.SimulationStats.window_imbalance` /
    :attr:`~repro.sim.stats.SimulationStats.adaptive_migrations`.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        *,
        window_records: int = DEFAULT_WINDOW_RECORDS,
    ) -> None:
        if window_records <= 0:
            raise ConfigurationError("window_records must be positive")
        self.policy = policy
        self.window_records = window_records
        self.num_cores = 0
        self.imbalance_series: list[float] = []
        self.applied: list[tuple[int, int, int | None, int]] = []
        self._window_index = 0

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def migrations_applied(self) -> int:
        return len(self.applied)

    def begin_run(self, num_cores: int) -> None:
        """Reset all run state; the engine calls this before replaying."""
        if num_cores <= 0:
            raise ConfigurationError("adaptive scheduling needs at least one core")
        self.num_cores = num_cores
        self.policy.reset()
        self.imbalance_series = []
        self.applied = []
        self._window_index = 0

    def observe(
        self, thread_counts: dict[int, int], thread_core: dict[int, int]
    ) -> list[MigrationDecision]:
        """Feed one window's pressure back; returns the decisions to apply.

        Decisions are validated here (in-range target, an actual move), so
        the engine can apply whatever comes back without re-checking.
        """
        pressure = [0] * self.num_cores
        for thread in sorted(thread_counts):
            pressure[thread_core[thread]] += thread_counts[thread]
        window = WindowPressure(
            index=self._window_index,
            pressure=tuple(pressure),
            thread_counts=dict(thread_counts),
            thread_core=dict(thread_core),
        )
        self._window_index += 1
        self.imbalance_series.append(window.imbalance)
        decisions = []
        for decision in self.policy.decide(window):
            if not 0 <= decision.to_core < self.num_cores:
                raise ConfigurationError(
                    f"policy {self.name!r} targeted core {decision.to_core} "
                    f"on a {self.num_cores}-core machine"
                )
            if thread_core.get(decision.thread_id) == decision.to_core:
                continue  # not a move
            decisions.append(decision)
        return decisions

    def record_applied(
        self, thread_id: int, from_core: int | None, to_core: int
    ) -> None:
        """The engine reports a decision it actually installed."""
        self.applied.append((self._window_index - 1, thread_id, from_core, to_core))


def build_scheduler(
    name: str,
    *,
    seed: int = 0,
    window_records: int = DEFAULT_WINDOW_RECORDS,
    **policy_kwargs,
) -> AdaptiveScheduler | None:
    """Build the scheduler for a CLI/runner name; ``"fixed"`` returns ``None``.

    ``seed`` feeds the policy's tie-break/exploration RNG; the runner passes
    the experiment point's base seed so a seed sweep varies scheduling too.
    """
    if name == "fixed":
        return None
    if name == "greedy":
        policy: SchedulingPolicy = GreedyRebalancePolicy(seed=seed, **policy_kwargs)
    elif name == "reinforced":
        policy = ReinforcedCounterPolicy(seed=seed, **policy_kwargs)
    else:
        known = ", ".join(SCHEDULERS)
        raise ConfigurationError(
            f"unknown scheduler {name!r}; known schedulers: {known}"
        )
    return AdaptiveScheduler(policy, window_records=window_records)
