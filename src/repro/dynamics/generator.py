"""Phased, event-driven trace generation.

:class:`DynamicTraceGenerator` drives the static
:class:`~repro.workloads.generator.SyntheticTraceGenerator` machinery one
*segment* at a time, where segments are delimited by phase boundaries and
schedule events.  Within a segment it samples **threads** (not cores) and
maps them onto cores through the current thread-to-core assignment, so a
migrated thread's private working set follows it to the new core — which is
exactly what lets R-NUCA's OS model tell migration apart from sharing.
Per-core regions (private data, multiprogrammed instructions) are indexed
by thread id for the same reason: the working set belongs to the software
thread, not to whichever core happens to run it.

The output trace carries explicit thread ids in the ``thread_id`` column
(load-bearing, unlike the static generator's ``NO_THREAD`` sentinel) and a
sorted :class:`~repro.workloads.trace.TraceEvents` stream with one entry
per phase boundary, migration and sharing onset.

For a :class:`~repro.dynamics.spec.DynamicWorkloadSpec` with a single
phase, no mix overrides and an empty schedule, the RNG draw sequence is
identical to the static generator's, so the generated columns match the
static trace element for element (only the ``thread_id`` column differs:
explicit ids instead of the sentinel, which the replay engines treat
identically — see ``tests/test_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cmp.config import SystemConfig
from repro.dynamics.spec import DynamicWorkloadSpec
from repro.errors import TraceError
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.trace import (
    INSTRUCTION_CODE,
    LOAD_CODE,
    MIGRATION_EVENT,
    PHASE_EVENT,
    SHARING_ONSET_EVENT,
    STORE_CODE,
    Trace,
    TraceColumns,
    TraceEvents,
)

_PRIVATE_INDEX = 1  # index of "private" in the generator's class order
_SHARED_RW_INDEX = 2  # index of "shared_rw" in the generator's class order


@dataclass(frozen=True)
class _ActiveOnset:
    """A sharing onset in effect: redirect shared_rw draws into the region."""

    blocks: np.ndarray
    pages: np.ndarray  # unique page numbers the region spans
    redirect_fraction: float


class DynamicTraceGenerator:
    """Generates deterministic phased/migrating traces for one scenario."""

    def __init__(
        self,
        dspec: DynamicWorkloadSpec,
        config: SystemConfig,
        *,
        seed: int = 0,
        scale: float = DEFAULT_SCALE,
    ) -> None:
        self.dspec = dspec
        self.config = config
        self.seed = seed
        self.scale = scale
        self._static = SyntheticTraceGenerator(
            dspec.base, config, seed=seed, scale=scale
        )
        self.num_cores = config.num_tiles
        #: One software thread per core at launch; migrations unbalance it.
        self.num_threads = config.num_tiles
        if dspec.initial_assignment is not None:
            if len(dspec.initial_assignment) != self.num_threads:
                raise TraceError(
                    f"initial assignment covers {len(dspec.initial_assignment)} "
                    f"threads; the machine runs {self.num_threads}"
                )
            if any(core >= self.num_cores for core in dspec.initial_assignment):
                raise TraceError(
                    f"initial assignment exceeds the {self.num_cores}-core machine"
                )
        for event in dspec.schedule.migrations:
            if event.thread_id >= self.num_threads or event.to_core >= self.num_cores:
                raise TraceError(
                    f"schedule event {event} exceeds the {self.num_cores}-core machine"
                )
        for onset in dspec.schedule.sharing_onsets:
            if onset.victim_thread >= self.num_threads:
                raise TraceError(
                    f"onset victim {onset.victim_thread} exceeds the machine's threads"
                )

    # ------------------------------------------------------------------ #
    # Segment planning
    # ------------------------------------------------------------------ #
    def _plan(self, num_records: int):
        """Resolve phases and schedule events to absolute record indices.

        Returns ``(phase_starts, actions)`` where ``actions`` maps a record
        index to the list of (kind, payload) state changes taking effect
        *before* that record.
        """
        dspec = self.dspec
        phase_starts = dspec.phase_boundaries(num_records)
        actions: dict[int, list[tuple[int, tuple]]] = {}

        def add(index: int, kind: int, payload: tuple) -> None:
            actions.setdefault(index, []).append((kind, payload))

        for phase_index, start in enumerate(phase_starts):
            if phase_index:  # phase 0 is implicit at record 0
                add(start, PHASE_EVENT, (phase_index,))
        for event in dspec.schedule.migrations:
            index = min(num_records - 1, int(event.at * num_records))
            add(index, MIGRATION_EVENT, (event.thread_id, event.to_core))
        for onset in dspec.schedule.sharing_onsets:
            index = min(num_records - 1, int(onset.at * num_records))
            add(index, SHARING_ONSET_EVENT, (onset,))
        return phase_starts, actions

    def _onset_blocks(self, onset) -> np.ndarray:
        """The victim thread's hottest private blocks, now shared."""
        region = self._static._regions["private"]
        count = max(1, int(onset.region_fraction * region.num_blocks))
        if region.per_core:
            return region.addresses[onset.victim_thread, :count]
        return region.addresses[:count]

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, num_records: int) -> Trace:
        """Generate a dynamic trace with ``num_records`` L2 references."""
        if num_records <= 0:
            raise TraceError("num_records must be positive")
        static = self._static
        rng = static._rng
        dspec = self.dspec
        phase_starts, actions = self._plan(num_records)
        boundaries = sorted({0, num_records, *actions})

        if dspec.initial_assignment is not None:
            mapping = np.asarray(dspec.initial_assignment, dtype=np.int64)
        else:
            mapping = np.arange(self.num_threads, dtype=np.int64) % self.num_cores
        initial_assignment = mapping.tolist()
        phase_index = 0
        phase_probs = dspec.phases[0].class_probabilities(dspec.base)
        active_onsets: list[_ActiveOnset] = []
        event_rows: list[tuple[int, int, int, int]] = []
        onset_pages: set[int] = set()
        page_shift = self.config.page_size.bit_length() - 1

        class_names = static._class_names
        geometric_p = 1.0 / dspec.base.instructions_per_l2_access

        thread_parts: list[np.ndarray] = []
        core_parts: list[np.ndarray] = []
        class_parts: list[np.ndarray] = []
        instr_parts: list[np.ndarray] = []
        address_parts: list[np.ndarray] = []
        store_parts: list[np.ndarray] = []

        for start, stop in zip(boundaries[:-1], boundaries[1:], strict=True):
            for kind, payload in actions.get(start, ()):
                if kind == PHASE_EVENT:
                    phase_index = payload[0]
                    phase_probs = dspec.phases[phase_index].class_probabilities(
                        dspec.base
                    )
                    event_rows.append((start, PHASE_EVENT, phase_index, 0))
                elif kind == MIGRATION_EVENT:
                    thread_id, to_core = payload
                    mapping[thread_id] = to_core
                    event_rows.append((start, MIGRATION_EVENT, thread_id, to_core))
                else:  # SHARING_ONSET_EVENT
                    (onset,) = payload
                    blocks = self._onset_blocks(onset)
                    pages = np.unique(blocks >> page_shift)
                    active_onsets.append(
                        _ActiveOnset(
                            blocks=blocks,
                            pages=pages,
                            redirect_fraction=onset.redirect_fraction,
                        )
                    )
                    onset_pages.update(pages.tolist())
                    event_rows.append(
                        (start, SHARING_ONSET_EVENT, onset.victim_thread, len(blocks))
                    )

            seg_len = stop - start
            threads = rng.integers(0, self.num_threads, size=seg_len, dtype=np.int64)
            class_ids = rng.choice(len(class_names), size=seg_len, p=phase_probs)
            instructions = rng.geometric(geometric_p, size=seg_len)
            store_draw = rng.random(seg_len)

            addresses = np.zeros(seg_len, dtype=np.int64)
            is_store = np.zeros(seg_len, dtype=bool)
            # Same structure (and therefore the same RNG stream) as the
            # static generator's per-class loop, with threads standing in
            # for cores when indexing per-core regions.
            for class_index, class_name in enumerate(class_names):
                mask = class_ids == class_index
                if not mask.any():
                    continue
                addresses[mask] = static._addresses_for_class(class_name, threads[mask])
                region = static._regions[class_name]
                if region.store_probability > 0:
                    is_store[mask] = store_draw[mask] < region.store_probability
            # Sharing onsets: redirect a slice of shared_rw references into
            # the formerly-private region, from every thread.
            for onset in active_onsets:
                redirect = (class_ids == _SHARED_RW_INDEX) & (
                    rng.random(seg_len) < onset.redirect_fraction
                )
                n_redirect = int(redirect.sum())
                if n_redirect:
                    addresses[redirect] = rng.choice(onset.blocks, size=n_redirect)
            # The victim's own draws onto an active onset region's pages are
            # now genuinely shared (classification is page-granular, so the
            # whole page reclassifies): fix the ground-truth label so the
            # classifier's correct SHARED answer is not counted as a
            # misclassification by the accuracy experiment.
            for onset in active_onsets:
                stale = (class_ids == _PRIVATE_INDEX) & np.isin(
                    addresses >> page_shift, onset.pages
                )
                if stale.any():
                    class_ids[stale] = _SHARED_RW_INDEX

            thread_parts.append(threads)
            core_parts.append(mapping[threads])
            class_parts.append(class_ids.astype(np.int16))
            instr_parts.append(instructions.astype(np.int64))
            address_parts.append(addresses)
            store_parts.append(is_store)

        class_ids = np.concatenate(class_parts)
        is_store = np.concatenate(store_parts)
        access_codes = np.where(
            class_ids == class_names.index("instruction"),
            INSTRUCTION_CODE,
            np.where(is_store, STORE_CODE, LOAD_CODE),
        ).astype(np.int8)
        columns = TraceColumns(
            core=np.concatenate(core_parts),
            access_type=access_codes,
            address=np.concatenate(address_parts),
            instructions=np.concatenate(instr_parts),
            thread_id=np.concatenate(thread_parts),
            # Class ids index class_names; the table is None-first, so the
            # ground-truth code is simply the class id shifted by one.
            true_class=(class_ids + 1).astype(np.int16),
            class_table=(None, *class_names),
        )
        return Trace.from_columns(
            columns,
            workload=dspec.name,
            num_cores=self.num_cores,
            events=TraceEvents.from_rows(event_rows),
            metadata={
                "seed": self.seed,
                "scale": self.scale,
                "category": dspec.category,
                "working_set_blocks": static.working_set_blocks,
                "dynamic": True,
                "phases": [phase.name for phase in dspec.phases],
                "phase_starts": phase_starts,
                "migrations": len(dspec.schedule.migrations),
                "sharing_onsets": len(dspec.schedule.sharing_onsets),
                # Launch-time thread->core placement: the adaptive replay
                # primes the OS ThreadScheduler with this, so a replay-time
                # move off a packed core is attributed to migration
                # (re-own) instead of read as a second sharer.
                "initial_assignment": initial_assignment,
                # Pages whose sharing begins only at an onset event; warm
                # priming must leave them private so the OS discovers the
                # transition during replay (see engine.warm_page_tables).
                "onset_pages": sorted(onset_pages),
            },
        )


def generate_dynamic_trace(
    dspec: DynamicWorkloadSpec,
    config: SystemConfig,
    num_records: int,
    *,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
) -> Trace:
    """One-call convenience wrapper around :class:`DynamicTraceGenerator`."""
    generator = DynamicTraceGenerator(dspec, config, seed=seed, scale=scale)
    return generator.generate(num_records)
