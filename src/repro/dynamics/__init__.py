"""Dynamic-behaviour subsystem: phased workloads, thread migration and
online re-classification.

``repro.dynamics`` models **time-varying execution**, the "reactive" half of
Reactive NUCA (paper Sections 2.3/4.3) that static traces never exercise: a
:class:`DynamicWorkloadSpec` describes a sequence of
:class:`PhaseSpec` phases (per-phase access-mix overrides, durations in
records) plus a deterministic, seeded :class:`MigrationSchedule` of
thread-to-core moves and sharing-onset events (a private region going shared
mid-run).  The :class:`DynamicTraceGenerator` turns one into the usual
columnar :class:`~repro.workloads.trace.TraceColumns` with **load-bearing
thread ids** plus a compact, sorted event stream
(:class:`~repro.workloads.trace.TraceEvents`).  The fast replay engine
consumes events at their record index — migrations update the
:class:`~repro.osmodel.scheduler.ThreadScheduler` so R-NUCA's classifier
re-owns a migrated thread's pages (or reclassifies genuinely shared ones),
charging shootdown/re-classification latency into the CPI model — and
per-phase CPI plus migration/re-classification counters land in
:class:`~repro.sim.stats.SimulationStats`.  Named scenarios
(``oltp-db2:migrate``, ``mix:phased``, ...) plug into the runner and CLI
next to the static workloads; see :mod:`repro.dynamics.scenarios`.

A dynamic spec with a single phase and an empty schedule replays
bit-identically to the static fast path (pinned by
``tests/test_engine_equivalence.py``), so dynamics is a strict extension,
not a fork, of the static pipeline.

:mod:`repro.dynamics.adaptive` closes the loop: instead of replaying a
schedule fixed at generation time, an :class:`AdaptiveScheduler` observes
per-core pressure that the engine feeds back window by window and emits
migration decisions (``greedy`` rebalancing or ``reinforced`` counters)
that the engine applies to the rest of the replay.  Traces stay static;
the scheduler is a replay-time experiment axis (``repro run --scheduler``)
keyed into the result-store content hash.
"""

from repro.dynamics.adaptive import (
    SCHEDULERS,
    AdaptiveScheduler,
    GreedyRebalancePolicy,
    MigrationDecision,
    ReinforcedCounterPolicy,
    SchedulingPolicy,
    WindowPressure,
    build_scheduler,
)
from repro.dynamics.generator import DynamicTraceGenerator, generate_dynamic_trace
from repro.dynamics.scenarios import (
    DYNAMIC_VARIANTS,
    dynamic_workload_names,
    is_dynamic_workload,
    resolve_dynamic,
)
from repro.dynamics.spec import (
    DynamicWorkloadSpec,
    MigrationEvent,
    MigrationSchedule,
    PhaseSpec,
    SharingOnset,
)

__all__ = [
    "SCHEDULERS",
    "AdaptiveScheduler",
    "SchedulingPolicy",
    "GreedyRebalancePolicy",
    "ReinforcedCounterPolicy",
    "MigrationDecision",
    "WindowPressure",
    "build_scheduler",
    "PhaseSpec",
    "MigrationEvent",
    "SharingOnset",
    "MigrationSchedule",
    "DynamicWorkloadSpec",
    "DynamicTraceGenerator",
    "generate_dynamic_trace",
    "DYNAMIC_VARIANTS",
    "dynamic_workload_names",
    "is_dynamic_workload",
    "resolve_dynamic",
]
