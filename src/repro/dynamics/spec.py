"""Specifications for time-varying workloads.

A :class:`DynamicWorkloadSpec` wraps a static
:class:`~repro.workloads.spec.WorkloadSpec` with two time axes:

* a sequence of :class:`PhaseSpec` phases, each with a duration (in
  records, used as proportional weights when the requested trace length
  differs from the nominal total) and optional access-mix overrides; and
* a :class:`MigrationSchedule` of thread-to-core moves and sharing-onset
  events, positioned as fractions of the trace so one spec scales to any
  trace length.

Schedules are plain data: :meth:`MigrationSchedule.seeded` derives a
deterministic schedule from a seed, so two runs of the same scenario (or
the same scenario on two machines) generate identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.spec import WorkloadSpec

#: Access-class keys a phase may override.
MIX_CLASSES = ("instruction", "private", "shared_rw", "shared_ro")

#: Fraction of shared_rw references redirected into an onset region once a
#: sharing onset is active (the "new sharers" of the formerly private data).
DEFAULT_ONSET_REDIRECT = 0.35


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a dynamic workload.

    ``duration`` is the nominal phase length in records; phases are scaled
    proportionally when a trace of a different total length is requested.
    ``mix`` optionally overrides a subset of the base workload's access-class
    fractions (the four :data:`MIX_CLASSES` keys); the resulting mix is
    renormalised to sum to one.
    """

    name: str
    duration: int
    mix: dict[str, float] | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(f"phase {self.name!r} duration must be positive")
        if self.mix is not None:
            unknown = set(self.mix) - set(MIX_CLASSES)
            if unknown:
                raise ConfigurationError(
                    f"phase {self.name!r} overrides unknown classes: {sorted(unknown)}"
                )
            for key, fraction in self.mix.items():
                if not 0.0 <= fraction <= 1.0:
                    raise ConfigurationError(
                        f"phase {self.name!r} fraction for {key} must be within [0, 1]"
                    )

    def class_probabilities(self, base: WorkloadSpec) -> np.ndarray:
        """The phase's class mix: base fractions + overrides, renormalised."""
        fractions = dict(base.class_fractions)
        if self.mix:
            fractions.update(self.mix)
        probs = np.array([fractions[name] for name in MIX_CLASSES], dtype=np.float64)
        total = probs.sum()
        if total <= 0:
            raise ConfigurationError(f"phase {self.name!r} mix sums to zero")
        return probs / total


@dataclass(frozen=True)
class MigrationEvent:
    """One scheduled thread-to-core move.

    ``at`` positions the event as a fraction of the trace length, so the
    same schedule works for a 4k smoke trace and a 60k evaluation trace.
    """

    at: float
    thread_id: int
    to_core: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.at < 1.0:
            raise ConfigurationError("migration position must be within [0, 1)")
        if self.thread_id < 0:
            raise ConfigurationError("thread id cannot be negative")
        if self.to_core < 0:
            raise ConfigurationError("destination core cannot be negative")


@dataclass(frozen=True)
class SharingOnset:
    """A private region going shared mid-run.

    From ``at`` onward, ``region_fraction`` of the victim thread's private
    working set (its hottest blocks) is also touched by the other threads:
    ``redirect_fraction`` of every thread's shared_rw references are
    redirected into that region.  The OS discovers the new sharing through
    ordinary TLB misses and reclassifies the pages private->shared.
    """

    at: float
    victim_thread: int
    region_fraction: float = 0.5
    redirect_fraction: float = DEFAULT_ONSET_REDIRECT

    def __post_init__(self) -> None:
        if not 0.0 <= self.at < 1.0:
            raise ConfigurationError("onset position must be within [0, 1)")
        if self.victim_thread < 0:
            raise ConfigurationError("victim thread cannot be negative")
        if not 0.0 < self.region_fraction <= 1.0:
            raise ConfigurationError("region fraction must be within (0, 1]")
        if not 0.0 < self.redirect_fraction <= 1.0:
            raise ConfigurationError("redirect fraction must be within (0, 1]")


@dataclass(frozen=True)
class MigrationSchedule:
    """A deterministic set of migrations and sharing onsets."""

    migrations: tuple[MigrationEvent, ...] = ()
    sharing_onsets: tuple[SharingOnset, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "migrations", tuple(self.migrations))
        object.__setattr__(self, "sharing_onsets", tuple(self.sharing_onsets))

    def __len__(self) -> int:
        return len(self.migrations) + len(self.sharing_onsets)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @classmethod
    def seeded(
        cls,
        num_threads: int,
        num_cores: int,
        *,
        migrations: int = 4,
        onsets: int = 1,
        seed: int = 0,
        start: float = 0.35,
        stop: float = 0.9,
    ) -> "MigrationSchedule":
        """Derive a deterministic schedule from a seed.

        Migration times are sorted uniform draws in ``[start, stop)``;
        each moves a random thread to a random core other than the one it
        currently occupies (the thread-to-core mapping is tracked while
        drawing, so every move is a genuine move).  ``start`` defaults past
        the engine's warm-up window so the events land in measured time.
        """
        if num_threads <= 0 or num_cores <= 1:
            raise ConfigurationError("seeded schedules need >1 core and >=1 thread")
        if not 0.0 <= start < stop <= 1.0:
            raise ConfigurationError("schedule window must satisfy 0 <= start < stop <= 1")
        rng = np.random.default_rng(seed)
        mapping = {thread: thread % num_cores for thread in range(num_threads)}
        moves = []
        for at in sorted(rng.uniform(start, stop, size=migrations).tolist()):
            thread = int(rng.integers(0, num_threads))
            current = mapping[thread]
            to_core = int(rng.integers(0, num_cores - 1))
            if to_core >= current:
                to_core += 1
            mapping[thread] = to_core
            moves.append(MigrationEvent(at=at, thread_id=thread, to_core=to_core))
        onset_events = tuple(
            SharingOnset(at=float(at), victim_thread=int(rng.integers(0, num_threads)))
            for at in sorted(rng.uniform(start, stop, size=onsets).tolist())
        )
        return cls(migrations=tuple(moves), sharing_onsets=onset_events)


@dataclass(frozen=True)
class DynamicWorkloadSpec:
    """A static workload spec extended with phases and a schedule.

    ``initial_assignment`` optionally overrides the launch-time
    thread-to-core mapping (entry ``t`` is thread ``t``'s starting core;
    the default is thread ``t`` on core ``t``).  Packing several threads
    onto a subset of cores is how the ``:adaptive`` scenarios create the
    load imbalance a feedback-driven scheduler can repair (see
    :mod:`repro.dynamics.adaptive`).
    """

    name: str
    base: WorkloadSpec
    phases: tuple[PhaseSpec, ...] = ()
    schedule: MigrationSchedule = field(default_factory=MigrationSchedule)
    initial_assignment: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        phases = tuple(self.phases) or (
            PhaseSpec(name=self.base.name, duration=60_000),
        )
        object.__setattr__(self, "phases", phases)
        names = [phase.name for phase in phases]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate phase names in {self.name!r}: {names}")
        if self.initial_assignment is not None:
            assignment = tuple(int(core) for core in self.initial_assignment)
            if any(core < 0 for core in assignment):
                raise ConfigurationError("initial assignment cores cannot be negative")
            object.__setattr__(self, "initial_assignment", assignment)

    @property
    def category(self) -> str:
        return self.base.category

    @property
    def total_duration(self) -> int:
        return sum(phase.duration for phase in self.phases)

    @property
    def is_static_equivalent(self) -> bool:
        """True when replay must match the static path bit for bit."""
        return (
            len(self.phases) == 1
            and self.phases[0].mix is None
            and self.schedule.is_empty
            and self.initial_assignment is None
        )

    def phase_boundaries(self, num_records: int) -> list[int]:
        """Start index of each phase for a trace of ``num_records`` records.

        Durations act as proportional weights; every phase is guaranteed at
        least one record when the trace is long enough to allow it.
        """
        if num_records <= 0:
            raise ConfigurationError("num_records must be positive")
        total = self.total_duration
        starts = [0]
        for phase in self.phases[:-1]:
            step = max(1, round(num_records * phase.duration / total))
            starts.append(min(num_records - 1, starts[-1] + step))
        return starts
