"""Named dynamic scenarios: ``<workload>:<variant>``.

Every static workload in the catalogue composes with every variant, so
``oltp-db2:migrate``, ``mix:phased`` and ``apache:onset`` are all valid
scenario names for ``repro run``/``repro list`` and
:func:`repro.sim.engine.simulate_workload`.

Variants
--------

``migrate``
    The full reactive scenario: four seeded thread migrations plus one
    sharing onset in measured time.  Exercises both OS reactions —
    migration re-owning (a private page follows its thread) and
    private->shared re-classification (a formerly private region gains
    sharers).

``phased``
    Three phases sweeping the access mix from the base workload toward
    private-heavy and then shared-heavy behaviour; no schedule events.
    Exercises per-phase CPI accounting under time-varying demand.

``onset``
    A single sharing onset and nothing else: the cleanest probe of
    re-classification cost in isolation.

``adaptive``
    An *imbalanced* phased scenario: the launch-time thread placement packs
    two threads per core onto half the machine (the other half idles) and
    the access mix drifts private-heavy, so per-core pressure stays skewed
    for the whole run.  Replayed with ``scheduler=fixed`` nothing reacts;
    replayed with a feedback-driven scheduler
    (:mod:`repro.dynamics.adaptive`) the imbalance is observable and
    repairable at replay time — this is the scenario the adaptive-scheduler
    benchmark measures.
"""

from __future__ import annotations

from repro.cmp.config import SystemConfig
from repro.dynamics.spec import (
    DynamicWorkloadSpec,
    MigrationSchedule,
    PhaseSpec,
    SharingOnset,
)
from repro.errors import ConfigurationError
from repro.workloads.spec import WorkloadSpec, get_workload

#: Separator between the base workload and the variant in scenario names.
SCENARIO_SEPARATOR = ":"


def _machine_cores(base: WorkloadSpec) -> int:
    return SystemConfig.for_workload_category(base.category).num_tiles


def _migrate(name: str, base: WorkloadSpec) -> DynamicWorkloadSpec:
    cores = _machine_cores(base)
    return DynamicWorkloadSpec(
        name=name,
        base=base,
        phases=(PhaseSpec(name="steady", duration=60_000),),
        schedule=MigrationSchedule.seeded(cores, cores, migrations=4, onsets=1, seed=11),
    )


def _phased(name: str, base: WorkloadSpec) -> DynamicWorkloadSpec:
    fractions = base.class_fractions
    # Shift a third of the shared traffic into private data and vice versa;
    # the overrides are renormalised per phase, so any base mix works.
    shift = min(fractions["shared_rw"], fractions["private"]) / 3 + 0.02
    return DynamicWorkloadSpec(
        name=name,
        base=base,
        phases=(
            PhaseSpec(name="base", duration=20_000),
            PhaseSpec(
                name="private-heavy",
                duration=20_000,
                mix={
                    "private": fractions["private"] + shift,
                    "shared_rw": max(0.0, fractions["shared_rw"] - shift),
                },
            ),
            PhaseSpec(
                name="shared-heavy",
                duration=20_000,
                mix={
                    "private": max(0.0, fractions["private"] - shift),
                    "shared_rw": fractions["shared_rw"] + shift,
                },
            ),
        ),
    )


def _onset(name: str, base: WorkloadSpec) -> DynamicWorkloadSpec:
    return DynamicWorkloadSpec(
        name=name,
        base=base,
        phases=(PhaseSpec(name="steady", duration=60_000),),
        schedule=MigrationSchedule(
            sharing_onsets=(SharingOnset(at=0.45, victim_thread=0),)
        ),
    )


def _adaptive(name: str, base: WorkloadSpec) -> DynamicWorkloadSpec:
    cores = _machine_cores(base)
    fractions = base.class_fractions
    shift = min(fractions["shared_rw"], fractions["private"]) / 3 + 0.02
    return DynamicWorkloadSpec(
        name=name,
        base=base,
        phases=(
            PhaseSpec(name="ramp", duration=20_000),
            PhaseSpec(
                name="private-heavy",
                duration=40_000,
                mix={
                    "private": fractions["private"] + shift,
                    "shared_rw": max(0.0, fractions["shared_rw"] - shift),
                },
            ),
        ),
        # Two threads per core on the first half of the machine; the second
        # half idles.  Load stays skewed unless a replay-time scheduler
        # spreads it.
        initial_assignment=tuple(thread // 2 for thread in range(cores)),
    )


#: Variant name -> builder(scenario_name, base_spec).
DYNAMIC_VARIANTS = {
    "migrate": _migrate,
    "phased": _phased,
    "onset": _onset,
    "adaptive": _adaptive,
}


def is_dynamic_workload(name: str) -> bool:
    """Whether ``name`` looks like a ``<workload>:<variant>`` scenario."""
    return SCENARIO_SEPARATOR in name


def resolve_dynamic(name: str) -> DynamicWorkloadSpec:
    """Resolve a ``<workload>:<variant>`` scenario name to its spec."""
    base_name, _, variant = name.partition(SCENARIO_SEPARATOR)
    builder = DYNAMIC_VARIANTS.get(variant)
    if builder is None:
        known = ", ".join(sorted(DYNAMIC_VARIANTS))
        raise ConfigurationError(
            f"unknown dynamic variant {variant!r} in {name!r}; known variants: {known}"
        )
    return builder(name, get_workload(base_name))


def dynamic_workload_names(bases: tuple[str, ...] = ()) -> list[str]:
    """Scenario names for the given base workloads (all eight by default)."""
    from repro.workloads.spec import WORKLOADS

    names = bases or tuple(WORKLOADS)
    return [
        f"{base}{SCENARIO_SEPARATOR}{variant}"
        for base in names
        for variant in sorted(DYNAMIC_VARIANTS)
    ]
