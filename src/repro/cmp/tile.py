"""A single tile: core slot, private L1 I/D caches, one L2 slice, directory.

Tiles never act on their own in the trace-driven model; they are containers
for the per-tile structures that the cache designs and the simulation engine
manipulate.  The L2 slice is a plain :class:`~repro.cache.cache_array.CacheArray`
whose interpretation (private cache vs. shared-slice vs. R-NUCA cluster
member) is entirely up to the design.
"""

from __future__ import annotations

from repro.cache.cache_array import CacheArray
from repro.cache.mshr import MshrFile
from repro.cache.victim import VictimCache
from repro.cmp.config import SystemConfig
from repro.coherence.directory import FullMapDirectory


class Tile:
    """One tile of the tiled CMP."""

    def __init__(self, tile_id: int, config: SystemConfig) -> None:
        self.tile_id = tile_id
        self.config = config
        self.l1i = CacheArray(config.l1i, name=f"tile{tile_id}.l1i")
        self.l1d = CacheArray(config.l1d, name=f"tile{tile_id}.l1d")
        self.l2 = CacheArray(config.l2_slice, name=f"tile{tile_id}.l2")
        self.l1d_victim = VictimCache(config.l1d.victim_entries)
        self.l2_victim = VictimCache(config.l2_slice.victim_entries)
        self.l2_mshrs = MshrFile(config.l2_slice.mshr_entries)
        #: Directory slice homed at this tile (used by directory-based designs).
        self.directory = FullMapDirectory(home=tile_id, num_tiles=config.num_tiles)
        #: Rotational ID assigned by the OS (set by R-NUCA; None otherwise).
        self.rid: int | None = None

    def l1_for(self, *, instruction: bool) -> CacheArray:
        """The L1 array servicing an access of the given kind."""
        return self.l1i if instruction else self.l1d

    def reset_stats(self) -> None:
        for array in (self.l1i, self.l1d, self.l2):
            array.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tile(id={self.tile_id}, rid={self.rid})"
