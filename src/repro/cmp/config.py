"""System configurations for the tiled CMP (paper Table 1).

The paper evaluates two machines:

* a 16-core tiled CMP (server and scientific workloads): 1 MB of L2 per core,
  16-way, 14-cycle L2 hit latency, 4x4 folded torus;
* an 8-core tiled CMP (multi-programmed workloads): 3 MB of L2 per core,
  12-way, 25-cycle L2 hit latency, 4x2 folded torus.

Both use split 64 KB 2-way L1 I/D caches with a 2-cycle load-to-use latency,
64-byte blocks, 3 GB of main memory at 45 ns (90 cycles at 2 GHz), one memory
controller per four cores, 1-cycle links and 2-cycle routers.

A full-size configuration produces cache arrays that are far too large to
exercise with the trace lengths a pure-Python simulator can afford, so each
configuration can be *scaled*: :meth:`SystemConfig.scaled` divides every
capacity (cache sizes, page size, working sets are scaled separately by the
workload generators) by a constant factor while keeping latencies, topology
and associativities unchanged.  Relative behaviour — which design wins and by
how much — is preserved because every design sees the same scaled capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Cache block size used throughout the paper (bytes).
BLOCK_SIZE = 64

#: Default OS page size (bytes) in the paper's configuration.
PAGE_SIZE = 8192


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters (UltraSPARC-III-like OoO core).

    The trace-driven model does not simulate the pipeline; these parameters
    document the machine being modelled and feed the CPI accounting (frequency
    converts the 45 ns memory latency into cycles, and ``dispatch_width``
    bounds the best-case busy CPI).
    """

    frequency_ghz: float = 2.0
    dispatch_width: int = 4
    pipeline_stages: int = 8
    rob_entries: int = 96
    lsq_entries: int = 96
    store_buffer_entries: int = 32

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigurationError("core frequency must be positive")
        if self.dispatch_width <= 0:
            raise ConfigurationError("dispatch width must be positive")


@dataclass(frozen=True)
class CacheConfig:
    """A single cache array (an L1 or one L2 slice)."""

    size_bytes: int
    associativity: int
    block_size: int = BLOCK_SIZE
    hit_latency: int = 2
    mshr_entries: int = 32
    victim_entries: int = 16
    ports: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("cache size must be positive")
        if not _is_power_of_two(self.block_size):
            raise ConfigurationError("block size must be a power of two")
        if self.associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        if self.size_bytes % (self.block_size * self.associativity) != 0:
            raise ConfigurationError(
                "cache size must be a multiple of block_size * associativity"
            )
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError("number of sets must be a power of two")

    @property
    def num_blocks(self) -> int:
        """Total number of block frames in the array."""
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        """Number of sets in the array."""
        return self.num_blocks // self.associativity

    def scaled(self, factor: int) -> "CacheConfig":
        """Return a copy with capacity divided by ``factor``.

        Associativity is reduced if needed so that at least one set remains.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        new_size = max(self.block_size * 2, self.size_bytes // factor)
        assoc = self.associativity
        while new_size % (self.block_size * assoc) != 0 or new_size // (
            self.block_size * assoc
        ) < 1:
            assoc //= 2
            if assoc == 0:
                raise ConfigurationError("cannot scale cache below one block")
        scaled = replace(self, size_bytes=new_size, associativity=assoc)
        if not _is_power_of_two(scaled.num_sets):
            # Round the set count down to a power of two by shrinking the size.
            sets = 1
            while sets * 2 <= scaled.num_sets:
                sets *= 2
            scaled = replace(
                self,
                size_bytes=sets * assoc * self.block_size,
                associativity=assoc,
            )
        return scaled


@dataclass(frozen=True)
class InterconnectConfig:
    """On-chip network parameters (2-D folded torus in the paper)."""

    topology: str = "folded_torus"
    rows: int = 4
    cols: int = 4
    link_latency: int = 1
    router_latency: int = 2
    link_width_bytes: int = 32

    def __post_init__(self) -> None:
        if self.topology not in ("folded_torus", "mesh"):
            raise ConfigurationError(f"unknown topology: {self.topology!r}")
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("topology dimensions must be positive")
        if self.link_latency < 0 or self.router_latency < 0:
            raise ConfigurationError("latencies must be non-negative")

    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory and memory-controller parameters."""

    size_bytes: int = 3 * 1024**3
    page_size: int = PAGE_SIZE
    latency_ns: float = 45.0
    cores_per_controller: int = 4

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.page_size):
            raise ConfigurationError("page size must be a power of two")
        if self.latency_ns <= 0:
            raise ConfigurationError("memory latency must be positive")
        if self.cores_per_controller <= 0:
            raise ConfigurationError("cores_per_controller must be positive")

    def latency_cycles(self, frequency_ghz: float) -> int:
        """Memory access latency in core cycles at the given frequency."""
        return round(self.latency_ns * frequency_ghz)


@dataclass(frozen=True)
class SystemConfig:
    """A complete tiled-CMP configuration (one column of paper Table 1)."""

    name: str
    num_tiles: int
    core: CoreConfig
    l1i: CacheConfig
    l1d: CacheConfig
    l2_slice: CacheConfig
    interconnect: InterconnectConfig
    memory: MemoryConfig
    #: Default R-NUCA instruction-cluster size (Section 4.2: size-4).
    instruction_cluster_size: int = 4

    def __post_init__(self) -> None:
        if self.num_tiles != self.interconnect.num_nodes:
            raise ConfigurationError(
                f"{self.num_tiles} tiles do not match a "
                f"{self.interconnect.rows}x{self.interconnect.cols} network"
            )
        if not _is_power_of_two(self.num_tiles):
            raise ConfigurationError("number of tiles must be a power of two")
        if not _is_power_of_two(self.instruction_cluster_size):
            raise ConfigurationError("instruction cluster size must be a power of two")
        if self.instruction_cluster_size > self.num_tiles:
            raise ConfigurationError(
                "instruction cluster size cannot exceed the number of tiles"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def block_size(self) -> int:
        return self.l2_slice.block_size

    @property
    def page_size(self) -> int:
        return self.memory.page_size

    @property
    def aggregate_l2_bytes(self) -> int:
        """Total L2 capacity across all slices."""
        return self.l2_slice.size_bytes * self.num_tiles

    @property
    def memory_latency_cycles(self) -> int:
        return self.memory.latency_cycles(self.core.frequency_ghz)

    @property
    def num_memory_controllers(self) -> int:
        return max(1, self.num_tiles // self.memory.cores_per_controller)

    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    # ------------------------------------------------------------------ #
    # Canonical configurations
    # ------------------------------------------------------------------ #
    @classmethod
    def server_16core(cls) -> "SystemConfig":
        """The 16-core configuration for server and scientific workloads."""
        return cls(
            name="server-16core",
            num_tiles=16,
            core=CoreConfig(),
            l1i=CacheConfig(size_bytes=64 * 1024, associativity=2, hit_latency=2),
            l1d=CacheConfig(size_bytes=64 * 1024, associativity=2, hit_latency=2),
            l2_slice=CacheConfig(
                size_bytes=1024 * 1024, associativity=16, hit_latency=14
            ),
            interconnect=InterconnectConfig(rows=4, cols=4),
            memory=MemoryConfig(),
        )

    @classmethod
    def multiprogrammed_8core(cls) -> "SystemConfig":
        """The 8-core configuration for multi-programmed workloads."""
        return cls(
            name="multiprogrammed-8core",
            num_tiles=8,
            core=CoreConfig(),
            l1i=CacheConfig(size_bytes=64 * 1024, associativity=2, hit_latency=2),
            l1d=CacheConfig(size_bytes=64 * 1024, associativity=2, hit_latency=2),
            l2_slice=CacheConfig(
                size_bytes=3 * 1024 * 1024, associativity=12, hit_latency=25
            ),
            interconnect=InterconnectConfig(rows=4, cols=2),
            memory=MemoryConfig(),
        )

    @classmethod
    def for_workload_category(cls, category: str) -> "SystemConfig":
        """Pick the paper's configuration for a workload category."""
        if category in ("server", "scientific"):
            return cls.server_16core()
        if category == "multiprogrammed":
            return cls.multiprogrammed_8core()
        raise ConfigurationError(f"unknown workload category: {category!r}")

    def scaled(self, factor: int = 64) -> "SystemConfig":
        """Return a capacity-scaled copy of this configuration.

        Cache capacities and the OS page size are divided by ``factor`` while
        every latency, the topology, and the block size stay the same.  The
        scaled configuration is what the test-suite and the benchmark harness
        run, paired with equally scaled synthetic working sets.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        if factor == 1:
            return self
        page = max(self.block_size * 4, self.memory.page_size // factor)
        # Keep the page a power of two.
        p = self.block_size * 4
        while p * 2 <= page:
            p *= 2
        return replace(
            self,
            name=f"{self.name}-scaled{factor}",
            l1i=self.l1i.scaled(factor),
            l1d=self.l1d.scaled(factor),
            l2_slice=self.l2_slice.scaled(factor),
            memory=replace(self.memory, page_size=p),
        )

    def summary(self) -> str:
        """Human-readable one-configuration summary (used by Table-1 bench)."""
        lines = [
            f"Configuration: {self.name}",
            f"  Tiles: {self.num_tiles} "
            f"({self.interconnect.rows}x{self.interconnect.cols} "
            f"{self.interconnect.topology})",
            f"  Core: {self.core.frequency_ghz:.1f} GHz, "
            f"{self.core.dispatch_width}-wide, {self.core.rob_entries}-entry ROB",
            f"  L1 I/D: {self.l1i.size_bytes // 1024} KB {self.l1i.associativity}-way, "
            f"{self.l1i.hit_latency}-cycle",
            f"  L2 slice: {self.l2_slice.size_bytes // 1024} KB "
            f"{self.l2_slice.associativity}-way, {self.l2_slice.hit_latency}-cycle "
            f"({self.aggregate_l2_bytes // (1024 * 1024)} MB aggregate)",
            f"  Memory: {self.memory.latency_ns:.0f} ns "
            f"({self.memory_latency_cycles} cycles), "
            f"{self.num_memory_controllers} controllers",
            f"  Page size: {self.page_size} B, block size: {self.block_size} B",
        ]
        return "\n".join(lines)
