"""Main-memory system: controllers, page interleaving and access latency.

Table 1: 3 GB of main memory with a 45 ns access latency and one memory
controller per four cores, with round-robin page interleaving across the
controllers.  Controllers are co-located with tiles (flip-chip connection),
so an off-chip access pays the network traversal from the requesting tile to
the controller tile, the fixed memory latency, and the traversal back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp.config import SystemConfig
from repro.interconnect.network import NetworkModel


@dataclass
class MemoryController:
    """One on-die memory controller attached to a tile."""

    controller_id: int
    tile_id: int
    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class MemorySystem:
    """All memory controllers plus the off-chip latency model."""

    def __init__(self, config: SystemConfig, network: NetworkModel) -> None:
        self.config = config
        self.network = network
        self.latency_cycles = config.memory_latency_cycles
        count = config.num_memory_controllers
        # Spread controllers evenly across the tiles (one per 4 cores).
        stride = max(1, config.num_tiles // count)
        self.controllers = [
            MemoryController(controller_id=i, tile_id=(i * stride) % config.num_tiles)
            for i in range(count)
        ]
        self._page_shift = config.page_size.bit_length() - 1
        self._block_shift = config.block_size.bit_length() - 1

    def controller_for(self, block_address: int) -> MemoryController:
        """Round-robin page interleaving: controller chosen by page number."""
        byte_address = block_address << self._block_shift
        page_number = byte_address >> self._page_shift
        return self.controllers[page_number % len(self.controllers)]

    def access(
        self, requestor_tile: int, block_address: int, *, write: bool = False
    ) -> int:
        """Perform an off-chip access and return its total latency in cycles."""
        controller = self.controller_for(block_address)
        if write:
            controller.writes += 1
        else:
            controller.reads += 1
        to_controller = self.network.one_way_latency(requestor_tile, controller.tile_id)
        from_controller = self.network.one_way_latency(
            controller.tile_id, requestor_tile
        )
        return to_controller + self.latency_cycles + from_controller

    @property
    def total_reads(self) -> int:
        return sum(c.reads for c in self.controllers)

    @property
    def total_writes(self) -> int:
        return sum(c.writes for c in self.controllers)

    @property
    def total_accesses(self) -> int:
        return self.total_reads + self.total_writes

    def reset_stats(self) -> None:
        for controller in self.controllers:
            controller.reads = 0
            controller.writes = 0
