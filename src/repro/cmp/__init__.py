"""Tiled chip-multiprocessor model: tiles, chip assembly, memory, configurations."""

from repro.cmp.chip import TiledChip
from repro.cmp.config import (
    CacheConfig,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    SystemConfig,
)
from repro.cmp.memory import MemoryController, MemorySystem
from repro.cmp.tile import Tile

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "InterconnectConfig",
    "MemoryConfig",
    "SystemConfig",
    "Tile",
    "TiledChip",
    "MemoryController",
    "MemorySystem",
]
