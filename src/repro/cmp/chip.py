"""The tiled chip: tiles, interconnect, memory system and address mapping.

The chip provides the *standard address interleaving* used by the shared
design (and by R-NUCA for shared data): the home slice of a block is selected
by the ``log2(num_tiles)`` address bits immediately above the L2 set-index
bits, exactly as described in Sections 2.2 and 4.1 of the paper.
"""

from __future__ import annotations

from repro.cmp.config import SystemConfig
from repro.cmp.memory import MemorySystem
from repro.cmp.tile import Tile
from repro.errors import ConfigurationError
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import Topology, build_topology


class TiledChip:
    """A complete tiled CMP instance."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.topology: Topology = build_topology(config.interconnect)
        if self.topology.num_nodes != config.num_tiles:
            raise ConfigurationError("topology size does not match tile count")
        self.network = NetworkModel(config.interconnect, self.topology)
        self.tiles = [Tile(tile_id, config) for tile_id in range(config.num_tiles)]
        self.memory = MemorySystem(config, self.network)
        self._interleave_shift = config.l2_slice.num_sets.bit_length() - 1
        self._interleave_mask = config.num_tiles - 1
        self._block_shift = config.block_size.bit_length() - 1
        self._page_shift = config.page_size.bit_length() - 1
        # Hop distance is a pure function of the (static) topology; the
        # coherence hot paths index this table instead of recomputing the
        # folded-torus arithmetic per probe.
        nodes = range(config.num_tiles)
        self._distance_table: list[list[int]] = [
            [self.topology.hop_distance(src, dst) for dst in nodes] for src in nodes
        ]

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def block_address(self, byte_address: int) -> int:
        """Block address (byte address with the block offset removed)."""
        return byte_address >> self._block_shift

    def page_number(self, byte_address: int) -> int:
        return byte_address >> self._page_shift

    def page_of_block(self, block_address: int) -> int:
        return (block_address << self._block_shift) >> self._page_shift

    def interleave_bits(self, block_address: int, width: int | None = None) -> int:
        """Address bits immediately above the L2 set-index bits.

        These are the bits both standard address interleaving (Section 2.2)
        and rotational interleaving (Section 4.1) consume to select a slice
        within a cluster; ``width`` defaults to log2(num_tiles).
        """
        mask = self._interleave_mask if width is None else (1 << width) - 1
        return (block_address >> self._interleave_shift) & mask

    def home_slice(self, block_address: int) -> int:
        """Home tile under standard address interleaving over all tiles."""
        return self.interleave_bits(block_address)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_tiles(self) -> int:
        return self.config.num_tiles

    def tile(self, tile_id: int) -> Tile:
        return self.tiles[tile_id]

    def distance(self, src_tile: int, dst_tile: int) -> int:
        if 0 <= src_tile < self.num_tiles and 0 <= dst_tile < self.num_tiles:
            return self._distance_table[src_tile][dst_tile]
        return self.topology.hop_distance(src_tile, dst_tile)  # raises range error

    def reset_stats(self) -> None:
        for tile in self.tiles:
            tile.reset_stats()
        self.network.reset_stats()
        self.memory.reset_stats()

    def aggregate_l2_occupancy(self) -> float:
        """Mean occupancy across all L2 slices."""
        if not self.tiles:
            return 0.0
        return sum(t.l2.occupancy for t in self.tiles) / len(self.tiles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TiledChip(config={self.config.name!r}, tiles={self.num_tiles})"
