"""Exception hierarchy for the R-NUCA reproduction library."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A system or workload configuration is inconsistent or unsupported."""


class ClusterError(ReproError):
    """A cluster definition is invalid (size, shape, or membership)."""


class ProtocolError(ReproError):
    """A coherence protocol invariant was violated."""


class ClassificationError(ReproError):
    """The OS page classification state machine was driven illegally."""


class TraceError(ReproError):
    """A trace record or trace file is malformed."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly."""
