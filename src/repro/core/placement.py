"""Class-reactive placement (paper Section 4.2).

The placement policy maps each classified access to the cluster that will
cache the block and to the single slice within that cluster that must be
probed:

* **private data** -> the size-1 cluster at the requesting tile (minimum
  latency; no coherence needed because there is a single requestor);
* **shared data** -> the size-``num_tiles`` cluster spanning the chip,
  indexed by standard address interleaving (a unique location per block, so
  no L2 coherence is needed and lookup is trivial);
* **instructions** -> the size-``n`` fixed-center cluster centered at the
  requesting tile, indexed by rotational interleaving (replicas one cluster
  apart, shared by neighbors, without extra capacity pressure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clusters import (
    Cluster,
    FixedCenterCluster,
    single_tile_cluster,
    whole_chip_cluster,
)
from repro.core.rotational import RotationalInterleaver
from repro.errors import ClusterError
from repro.interconnect.topology import Topology
from repro.osmodel.page_table import PageClass


@dataclass(frozen=True)
class PlacementDecision:
    """Where one access must look: the cluster and the slice inside it."""

    page_class: PageClass
    cluster: Cluster
    target_slice: int
    #: True when the target slice is the requesting core's own tile.
    is_local: bool


class PlacementPolicy:
    """Builds and caches the per-core clusters for each access class."""

    def __init__(
        self,
        topology: Topology,
        *,
        set_index_bits: int,
        instruction_cluster_size: int = 4,
        private_cluster_size: int = 1,
        shared_cluster_size: int | None = None,
        base_rid: int = 0,
    ) -> None:
        self.topology = topology
        self.num_tiles = topology.num_nodes
        self.set_index_bits = set_index_bits
        self.instruction_cluster_size = instruction_cluster_size
        self.private_cluster_size = private_cluster_size
        self.shared_cluster_size = (
            self.num_tiles if shared_cluster_size is None else shared_cluster_size
        )
        if self.shared_cluster_size != self.num_tiles:
            raise ClusterError(
                "the paper's configuration shares data across all tiles; "
                "other shared-cluster sizes are not supported"
            )
        if private_cluster_size != 1:
            raise ClusterError(
                "private data uses size-1 clusters in the paper's configuration"
            )

        if instruction_cluster_size == 1:
            self._instruction_interleaver = None
            self._instruction_clusters = {
                tile: single_tile_cluster(tile) for tile in range(self.num_tiles)
            }
        else:
            self._instruction_interleaver = RotationalInterleaver(
                topology, instruction_cluster_size, base_rid=base_rid
            )
            self._instruction_clusters = {
                tile: FixedCenterCluster.around(self._instruction_interleaver, tile)
                for tile in range(self.num_tiles)
            }
        self._private_clusters = {
            tile: single_tile_cluster(tile) for tile in range(self.num_tiles)
        }
        self._shared_cluster = whole_chip_cluster(self.num_tiles)

    # ------------------------------------------------------------------ #
    # Cluster accessors
    # ------------------------------------------------------------------ #
    @property
    def rids(self) -> list[int] | None:
        """Rotational IDs assigned to the tiles (None for size-1 clusters)."""
        if self._instruction_interleaver is None:
            return None
        return list(self._instruction_interleaver.rids)

    def instruction_cluster(self, core: int) -> Cluster:
        return self._instruction_clusters[core]

    def private_cluster(self, core: int) -> Cluster:
        return self._private_clusters[core]

    def shared_cluster(self) -> Cluster:
        return self._shared_cluster

    def cluster_for(self, core: int, page_class: PageClass) -> Cluster:
        if page_class is PageClass.INSTRUCTION:
            return self.instruction_cluster(core)
        if page_class is PageClass.PRIVATE:
            return self.private_cluster(core)
        return self.shared_cluster()

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def interleave_bits(self, block_address: int, cluster_size: int) -> int:
        """Address bits immediately above the set index, ``log2(size)`` wide."""
        return (block_address >> self.set_index_bits) & (cluster_size - 1)

    def place(
        self, core: int, block_address: int, page_class: PageClass
    ) -> PlacementDecision:
        """Pick the unique slice to probe for this access."""
        cluster = self.cluster_for(core, page_class)
        bits = self.interleave_bits(block_address, cluster.size)
        target = cluster.slice_for(bits)
        return PlacementDecision(
            page_class=page_class,
            cluster=cluster,
            target_slice=target,
            is_local=(target == core),
        )

    def target_for(self, core: int, block_address: int, page_class: PageClass) -> int:
        """Allocation-free :meth:`place`: just the slice to probe."""
        if page_class is PageClass.PRIVATE:
            # Size-1 cluster at the requesting tile.
            return core
        if page_class is PageClass.INSTRUCTION:
            members = self._instruction_clusters[core].members
        else:
            members = self._shared_cluster.members
        return members[(block_address >> self.set_index_bits) & (len(members) - 1)]
