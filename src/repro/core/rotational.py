"""Rotational interleaving (paper Section 4.1).

Rotational interleaving lets overlapping fixed-center clusters replicate
read-only data *without* increasing capacity pressure: each L2 slice stores
exactly the same ``1/n``-th of the data on behalf of every size-``n`` cluster
it participates in, and each lookup needs exactly one probe.

Mechanism
---------

* The OS assigns every tile a *rotational ID* (RID) in ``[0, n)``.
  Consecutive tiles along a row receive consecutive RIDs and consecutive
  tiles along a column receive RIDs that differ by ``log2(n)``, wrapping
  modulo ``n``.
* A center core with RID ``c`` locates the slice holding a block by
  evaluating the boolean indexing function of Section 4.1::

      R = (Addr[k + log2(n) - 1 : k] + RID + 1) mod n

  where ``Addr[...]`` are the ``log2(n)`` address bits immediately above the
  set-index bits.  ``R`` is a *relative index*: ``R == 0`` means the center's
  own slice, and each non-zero value names one particular nearby tile.

The invariant that makes replication free is that the tile responsible for
relative index ``R`` as seen from a center with RID ``c`` always has RID
``(c - R) mod n``, and a tile with RID ``r`` stores exactly the blocks whose
interleaving bits equal ``(n - 1 - r) mod n``.  Both facts are enforced (and
property-tested) here.
"""

from __future__ import annotations

from repro.errors import ClusterError
from repro.interconnect.topology import Topology


def _log2(value: int) -> int:
    if value <= 0 or value & (value - 1):
        raise ClusterError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def rid_assignment(
    rows: int, cols: int, cluster_size: int, *, base_rid: int = 0
) -> list[int]:
    """Assign a rotational ID to every tile of a ``rows x cols`` grid.

    Tiles are numbered row-major.  Moving one tile to the right decreases the
    RID by one and moving one tile down decreases it by ``log2(n)``, both
    modulo ``n`` — which is exactly "consecutive tiles in a row receive
    consecutive RIDs; consecutive tiles in a column differ by log2(n)"
    oriented so that the nearest-neighbor lookup invariant holds.

    ``base_rid`` is the RID given to tile 0 (the OS picks a random tile in
    the paper; any choice preserves the invariant).
    """
    n = cluster_size
    step = _log2(n)
    if not 0 <= base_rid < n:
        raise ClusterError(f"base RID {base_rid} out of range for size-{n} clusters")
    if rows * cols < n:
        raise ClusterError(
            f"a {rows}x{cols} grid cannot host size-{n} clusters"
        )
    rids = []
    for tile in range(rows * cols):
        row, col = divmod(tile, cols)
        rids.append((base_rid - col - row * step) % n)
    if len(set(rids)) < n:
        # Narrow grids (e.g. size-8 clusters on a 4x2 torus) cannot satisfy
        # the row/column rule for every RID value; fall back to a simple
        # assignment that still covers every RID.  Lookup correctness (one
        # probe, each slice storing a fixed 1/n of the data) is preserved;
        # only the nearest-neighbour property degrades.
        rids = [(base_rid + tile) % n for tile in range(rows * cols)]
    return rids


def owner_interleave_bits(rid: int, cluster_size: int) -> int:
    """Interleaving-bit value stored by a tile with the given RID.

    A tile with RID ``r`` stores the blocks whose ``log2(n)`` interleaving
    bits equal ``(n - 1 - r) mod n`` — for every size-``n`` cluster the tile
    belongs to.
    """
    n = cluster_size
    _log2(n)
    if not 0 <= rid < n:
        raise ClusterError(f"RID {rid} out of range for size-{n} clusters")
    return (n - 1 - rid) % n


def rotational_index(interleave_bits: int, center_rid: int, cluster_size: int) -> int:
    """The paper's indexing function: relative index of the target slice.

    ``R = (Addr_bits + RID + 1) mod n``.  ``R == 0`` selects the center's own
    slice; other values select specific nearby tiles (for size-4 clusters:
    1 = the tile whose RID is one less, 2 = RID minus two, 3 = RID minus
    three, which on the paper's torus are the right, upper and left
    neighbors).
    """
    n = cluster_size
    _log2(n)
    if not 0 <= center_rid < n:
        raise ClusterError(f"RID {center_rid} out of range for size-{n} clusters")
    if not 0 <= interleave_bits < n:
        raise ClusterError(
            f"interleave bits {interleave_bits} out of range for size-{n} clusters"
        )
    return (interleave_bits + center_rid + 1) % n


class RotationalInterleaver:
    """Cluster membership and slice lookup under rotational interleaving.

    For every possible center tile, the interleaver selects the size-``n``
    fixed-center cluster: for each relative index ``R`` it picks the closest
    tile (by hop distance, ties broken by tile id) whose RID equals
    ``(center_rid - R) mod n``.  On the paper's 4x4 torus with ``n == 4``
    this yields exactly {center, right, above, left}.
    """

    def __init__(
        self,
        topology: Topology,
        cluster_size: int,
        *,
        rids: list[int] | None = None,
        base_rid: int = 0,
    ) -> None:
        self.topology = topology
        self.cluster_size = cluster_size
        self._bits = _log2(cluster_size)
        if cluster_size > topology.num_nodes:
            raise ClusterError(
                f"cluster size {cluster_size} exceeds {topology.num_nodes} tiles"
            )
        if rids is None:
            rids = rid_assignment(
                topology.rows, topology.cols, cluster_size, base_rid=base_rid
            )
        if len(rids) != topology.num_nodes:
            raise ClusterError("one RID is required per tile")
        self.rids = list(rids)
        self._members_cache: dict[int, list[int]] = {}
        self._max_distance_cache: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Cluster membership
    # ------------------------------------------------------------------ #
    def cluster_members(self, center: int) -> list[int]:
        """Tiles of the fixed-center cluster centered at ``center``.

        The list is ordered by relative index: element ``R`` is the tile that
        services interleaving bits mapping to relative index ``R``.
        """
        cached = self._members_cache.get(center)
        if cached is not None:
            return cached
        center_rid = self.rids[center]
        center_row, center_col = self.topology.coordinates(center)

        def proximity(tile: int) -> tuple[int, int, int]:
            """Translation-invariant closeness key (distance, up-bias, right-bias).

            Using the relative offset from the center (rather than absolute
            tile ids) keeps member selection identical for every center, so
            overlapping clusters cover each tile exactly ``n`` times.
            """
            row, col = self.topology.coordinates(tile)
            return (
                self.topology.hop_distance(center, tile),
                (center_row - row) % self.topology.rows,
                (col - center_col) % self.topology.cols,
            )

        members: list[int] = []
        for relative in range(self.cluster_size):
            wanted_rid = (center_rid - relative) % self.cluster_size
            candidates = [
                tile
                for tile in range(self.topology.num_nodes)
                if self.rids[tile] == wanted_rid
            ]
            if not candidates:
                raise ClusterError(
                    f"no tile has RID {wanted_rid}; invalid RID assignment"
                )
            members.append(min(candidates, key=proximity))
        if members[0] != center:
            raise ClusterError(
                f"relative index 0 of cluster at {center} is not the center itself"
            )
        self._members_cache[center] = members
        return members

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def target_slice(self, center: int, interleave_bits: int) -> int:
        """Slice holding the block with the given interleaving bits."""
        relative = rotational_index(
            interleave_bits & (self.cluster_size - 1),
            self.rids[center],
            self.cluster_size,
        )
        return self.cluster_members(center)[relative]

    def stored_bits(self, tile: int) -> int:
        """Interleaving-bit value this tile stores (identical for all clusters)."""
        return owner_interleave_bits(self.rids[tile], self.cluster_size)

    def max_lookup_distance(self, center: int) -> int:
        """Largest hop distance from a center to any of its cluster members.

        Cached per instance (like ``_members_cache``): an ``lru_cache`` on an
        instance method would hold a strong reference to every interleaver
        ever created, leaking them across batch runs.
        """
        cached = self._max_distance_cache.get(center)
        if cached is None:
            cached = max(
                self.topology.hop_distance(center, member)
                for member in self.cluster_members(center)
            )
            self._max_distance_cache[center] = cached
        return cached

    def average_lookup_distance(self, center: int) -> float:
        """Mean hop distance from a center to its cluster members."""
        members = self.cluster_members(center)
        return sum(self.topology.hop_distance(center, m) for m in members) / len(
            members
        )
