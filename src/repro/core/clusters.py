"""Cluster abstractions (paper Sections 4 and 4.4).

R-NUCA operates on overlapping clusters of one or more tiles:

* **Fixed-center clusters** consist of a center tile and the tiles logically
  surrounding it; each core defines its own cluster, so clusters overlap.
  They are indexed with rotational interleaving and are used for
  instructions in the paper's configuration.
* **Fixed-boundary clusters** have a fixed rectangular boundary; every core
  inside the rectangle shares the same cluster.  They partition the chip into
  non-overlapping regions and are indexed with standard address interleaving
  (Section 4.4 extension).
* A size-1 cluster is a single tile (private data); a size-``num_tiles``
  cluster is the whole chip (shared data).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.rotational import RotationalInterleaver
from repro.errors import ClusterError
from repro.interconnect.topology import Topology


class ClusterType(enum.Enum):
    """The cluster shapes supported by R-NUCA."""

    FIXED_CENTER = "fixed-center"
    FIXED_BOUNDARY = "fixed-boundary"


@dataclass(frozen=True)
class Cluster:
    """A set of L2 slices acting as one logical cache for some access class.

    ``members`` is ordered: element ``i`` services interleaving value ``i``.
    """

    cluster_type: ClusterType
    members: tuple[int, ...]
    center: int | None = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ClusterError("a cluster needs at least one member tile")
        size = len(self.members)
        if size & (size - 1):
            raise ClusterError(f"cluster size {size} is not a power of two")
        if len(set(self.members)) != size:
            raise ClusterError("cluster members must be distinct tiles")

    @property
    def size(self) -> int:
        return len(self.members)

    def slice_for(self, interleave_bits: int) -> int:
        """Member servicing a block with the given interleaving bits."""
        return self.members[interleave_bits & (self.size - 1)]

    def __contains__(self, tile: int) -> bool:
        return tile in self.members


@dataclass(frozen=True)
class FixedCenterCluster(Cluster):
    """A fixed-center cluster built from a rotational interleaver."""

    @classmethod
    def around(
        cls, interleaver: RotationalInterleaver, center: int
    ) -> "FixedCenterCluster":
        """The size-``n`` cluster centered at ``center``.

        Member order follows *interleaving bits*, not relative index, so that
        :meth:`Cluster.slice_for` works uniformly: member ``i`` is the tile
        that stores blocks whose interleaving bits equal ``i``.
        """
        by_relative = interleaver.cluster_members(center)
        members = [0] * interleaver.cluster_size
        for tile in by_relative:
            members[interleaver.stored_bits(tile)] = tile
        return cls(
            cluster_type=ClusterType.FIXED_CENTER,
            members=tuple(members),
            center=center,
        )


@dataclass(frozen=True)
class FixedBoundaryCluster(Cluster):
    """A rectangular, non-overlapping cluster using standard interleaving."""

    @classmethod
    def rectangle(
        cls,
        topology: Topology,
        *,
        origin_row: int,
        origin_col: int,
        rows: int,
        cols: int,
    ) -> "FixedBoundaryCluster":
        """The cluster covering the given rectangle of tiles."""
        if rows <= 0 or cols <= 0:
            raise ClusterError("rectangle dimensions must be positive")
        if origin_row + rows > topology.rows or origin_col + cols > topology.cols:
            raise ClusterError("rectangle exceeds the chip boundary")
        members = tuple(
            topology.node_at(origin_row + r, origin_col + c)
            for r in range(rows)
            for c in range(cols)
        )
        return cls(cluster_type=ClusterType.FIXED_BOUNDARY, members=members)


def single_tile_cluster(tile: int) -> Cluster:
    """The size-1 cluster holding a core's private data at its own slice."""
    return Cluster(
        cluster_type=ClusterType.FIXED_CENTER, members=(tile,), center=tile
    )


def whole_chip_cluster(num_tiles: int) -> Cluster:
    """The size-``num_tiles`` cluster used for shared data.

    Member ``i`` is tile ``i``: standard address interleaving over all tiles.
    """
    return Cluster(
        cluster_type=ClusterType.FIXED_BOUNDARY,
        members=tuple(range(num_tiles)),
    )


def partition_into_fixed_boundary(
    topology: Topology, cluster_rows: int, cluster_cols: int
) -> list[FixedBoundaryCluster]:
    """Partition the chip into equal non-overlapping rectangular clusters."""
    if topology.rows % cluster_rows or topology.cols % cluster_cols:
        raise ClusterError(
            f"a {topology.rows}x{topology.cols} chip cannot be partitioned into "
            f"{cluster_rows}x{cluster_cols} rectangles"
        )
    clusters = []
    for row in range(0, topology.rows, cluster_rows):
        for col in range(0, topology.cols, cluster_cols):
            clusters.append(
                FixedBoundaryCluster.rectangle(
                    topology,
                    origin_row=row,
                    origin_col=col,
                    rows=cluster_rows,
                    cols=cluster_cols,
                )
            )
    return clusters


def validate_overlapping_capacity(
    clusters: Sequence[Cluster], num_tiles: int
) -> dict[int, int]:
    """Count how many clusters each tile participates in.

    With rotational interleaving every tile stores the same 1/n-th of the
    data regardless of how many clusters it belongs to, so overlapping does
    not multiply capacity pressure; this helper exposes the overlap degree so
    tests can assert exactly that.
    """
    counts = {tile: 0 for tile in range(num_tiles)}
    for cluster in clusters:
        for tile in cluster.members:
            if tile not in counts:
                raise ClusterError(f"cluster member {tile} is not a valid tile")
            counts[tile] += 1
    return counts
