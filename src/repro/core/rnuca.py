"""The R-NUCA policy: OS classification + class-reactive placement + lookup.

:class:`RNucaPolicy` glues together the three mechanisms the paper proposes:

1. the OS page classifier (Section 4.3) that labels each access as
   instruction, private data, or shared data;
2. the placement policy (Section 4.2) that maps each class to a cluster;
3. rotational / standard interleaving (Section 4.1) that picks the single L2
   slice to probe.

It is deliberately independent of the cache-design machinery so it can be
used standalone (e.g. the quickstart example drives it directly) and by
:class:`repro.designs.rnuca_design.RNucaDesign` for full simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp.config import SystemConfig
from repro.core.placement import PlacementDecision, PlacementPolicy
from repro.errors import ConfigurationError
from repro.interconnect.topology import Topology, build_topology
from repro.osmodel.classifier import ClassificationEvent, PageClassifier, ShootdownCallback
from repro.osmodel.page_table import PageClass


@dataclass(frozen=True)
class RNucaConfig:
    """Tunable knobs of the R-NUCA policy."""

    #: Size of the fixed-center instruction clusters (the paper uses 4).
    instruction_cluster_size: int = 4
    #: RID assigned to tile 0 (the OS may pick any tile as RID 0).
    base_rid: int = 0
    #: TLB entries per core in the OS model.
    tlb_entries: int = 512
    #: How long (in scheduler migration ticks) a thread migration keeps
    #: counting as "recent" for the classifier's re-own decision; ``None``
    #: means forever (the seed behaviour).  See
    #: :attr:`repro.osmodel.scheduler.ThreadScheduler.migration_window`.
    migration_window: int | None = None

    def __post_init__(self) -> None:
        size = self.instruction_cluster_size
        if size <= 0 or size & (size - 1):
            raise ConfigurationError(
                "instruction cluster size must be a positive power of two"
            )
        if self.migration_window is not None and self.migration_window < 0:
            raise ConfigurationError("migration window cannot be negative")


@dataclass
class RNucaLookup:
    """The outcome of one R-NUCA lookup: placement plus OS activity."""

    decision: PlacementDecision
    classification: ClassificationEvent
    page_class: PageClass

    @property
    def target_slice(self) -> int:
        return self.decision.target_slice

    @property
    def is_local(self) -> bool:
        return self.decision.is_local


class RNucaPolicy:
    """End-to-end R-NUCA lookup for a given system configuration."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        rnuca_config: RNucaConfig | None = None,
        topology: Topology | None = None,
    ) -> None:
        self.system_config = config
        self.config = rnuca_config or RNucaConfig(
            instruction_cluster_size=config.instruction_cluster_size
        )
        self.topology = topology if topology is not None else build_topology(
            config.interconnect
        )
        set_index_bits = config.l2_slice.num_sets.bit_length() - 1
        self.placement = PlacementPolicy(
            self.topology,
            set_index_bits=set_index_bits,
            instruction_cluster_size=self.config.instruction_cluster_size,
            base_rid=self.config.base_rid,
        )
        self.classifier = PageClassifier(
            config.num_tiles,
            tlb_entries=self.config.tlb_entries,
            migration_window=self.config.migration_window,
        )
        self._block_shift = config.block_size.bit_length() - 1
        self._page_shift = config.page_size.bit_length() - 1
        # Hot-path tables: cluster member tuples and the interleave geometry,
        # resolved once so :meth:`lookup_fast` runs without method dispatch.
        self._set_index_bits = self.placement.set_index_bits
        self._shared_members = self.placement.shared_cluster().members
        self._shared_mask = len(self._shared_members) - 1
        self._instruction_members = [
            self.placement.instruction_cluster(core).members
            for core in range(config.num_tiles)
        ]
        self._instruction_mask = self.config.instruction_cluster_size - 1
        self._tlbs = self.classifier.tlbs
        #: The classifier's page-table dict, bound once; PageTable mutates
        #: this dict in place (including clear()), never rebinds it.
        self._page_entries = self.classifier.page_table._entries
        # Statistics (per-class counts kept as scalars; enum-keyed dict
        # updates would hash the PageClass member twice per lookup, and the
        # total is derived instead of being a fourth per-lookup increment).
        self.local_lookups = 0
        self.instruction_lookups = 0
        self.private_lookups = 0
        self.shared_lookups = 0

    @property
    def lookups(self) -> int:
        return self.instruction_lookups + self.private_lookups + self.shared_lookups

    @property
    def lookups_by_class(self) -> dict[PageClass, int]:
        return {
            PageClass.INSTRUCTION: self.instruction_lookups,
            PageClass.PRIVATE: self.private_lookups,
            PageClass.SHARED: self.shared_lookups,
        }

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def block_address(self, byte_address: int) -> int:
        return byte_address >> self._block_shift

    def page_number(self, byte_address: int) -> int:
        return byte_address >> self._page_shift

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        core: int,
        byte_address: int,
        *,
        instruction: bool,
        thread_id: int | None = None,
        shootdown: ShootdownCallback | None = None,
    ) -> RNucaLookup:
        """Classify an access and return the slice R-NUCA will probe.

        Exactly one slice is returned for every access — the "one cache probe"
        property of rotational interleaving.
        """
        page = self.page_number(byte_address)
        block = self.block_address(byte_address)
        page_class, event = self.classifier.classify_access(
            core,
            page,
            instruction=instruction,
            thread_id=thread_id,
            shootdown=shootdown,
        )
        decision = self.placement.place(core, block, page_class)
        self._count_class(page_class)
        if decision.is_local:
            self.local_lookups += 1
        return RNucaLookup(
            decision=decision, classification=event, page_class=page_class
        )

    def lookup_fast(
        self,
        core: int,
        block_address: int,
        page_number: int,
        instruction: bool,
        thread_id: int | None = None,
        shootdown: ShootdownCallback | None = None,
    ) -> tuple[int, PageClass, str, int]:
        """Allocation-free :meth:`lookup`.

        Takes the block and page numbers precomputed by the caller (once per
        trace, instead of per access) and returns ``(target slice, page
        class, OS event kind, OS event latency)`` without building the
        :class:`RNucaLookup`/:class:`PlacementDecision` wrappers.  This is
        the reference statement of the fast-lookup contract;
        :meth:`repro.designs.rnuca_design.RNucaDesign._service` fuses the
        same steps (with the classification branches inlined) into the
        simulation hot loop, and tests pin the two to :meth:`lookup`.
        """
        classifier = self.classifier
        page_class, kind, latency, _ = classifier.classify_fast(
            core,
            page_number,
            instruction=instruction,
            thread_id=thread_id,
            shootdown=shootdown,
        )
        target = self.placement.target_for(core, block_address, page_class)
        self._count_class(page_class)
        if target == core:
            self.local_lookups += 1
        return target, page_class, kind, latency

    def _count_class(self, page_class: PageClass) -> None:
        if page_class is PageClass.INSTRUCTION:
            self.instruction_lookups += 1
        elif page_class is PageClass.PRIVATE:
            self.private_lookups += 1
        else:
            self.shared_lookups += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def rids(self) -> list[int] | None:
        """The OS-assigned rotational IDs (None when clusters are size-1)."""
        return self.placement.rids

    @property
    def local_lookup_fraction(self) -> float:
        return self.local_lookups / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        """Human-readable summary of the policy configuration."""
        lines = [
            "R-NUCA policy",
            f"  instruction clusters: size-{self.config.instruction_cluster_size} "
            "fixed-center, rotational interleaving",
            "  private data: size-1 cluster at the requesting tile",
            f"  shared data: size-{self.system_config.num_tiles} cluster, "
            "standard address interleaving",
        ]
        rids = self.rids
        if rids is not None:
            lines.append(f"  RIDs: {rids}")
        return "\n".join(lines)
