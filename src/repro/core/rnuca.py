"""The R-NUCA policy: OS classification + class-reactive placement + lookup.

:class:`RNucaPolicy` glues together the three mechanisms the paper proposes:

1. the OS page classifier (Section 4.3) that labels each access as
   instruction, private data, or shared data;
2. the placement policy (Section 4.2) that maps each class to a cluster;
3. rotational / standard interleaving (Section 4.1) that picks the single L2
   slice to probe.

It is deliberately independent of the cache-design machinery so it can be
used standalone (e.g. the quickstart example drives it directly) and by
:class:`repro.designs.rnuca_design.RNucaDesign` for full simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cmp.config import SystemConfig
from repro.core.placement import PlacementDecision, PlacementPolicy
from repro.errors import ConfigurationError
from repro.interconnect.topology import Topology, build_topology
from repro.osmodel.classifier import ClassificationEvent, PageClassifier, ShootdownCallback
from repro.osmodel.page_table import PageClass


@dataclass(frozen=True)
class RNucaConfig:
    """Tunable knobs of the R-NUCA policy."""

    #: Size of the fixed-center instruction clusters (the paper uses 4).
    instruction_cluster_size: int = 4
    #: RID assigned to tile 0 (the OS may pick any tile as RID 0).
    base_rid: int = 0
    #: TLB entries per core in the OS model.
    tlb_entries: int = 512

    def __post_init__(self) -> None:
        size = self.instruction_cluster_size
        if size <= 0 or size & (size - 1):
            raise ConfigurationError(
                "instruction cluster size must be a positive power of two"
            )


@dataclass
class RNucaLookup:
    """The outcome of one R-NUCA lookup: placement plus OS activity."""

    decision: PlacementDecision
    classification: ClassificationEvent
    page_class: PageClass

    @property
    def target_slice(self) -> int:
        return self.decision.target_slice

    @property
    def is_local(self) -> bool:
        return self.decision.is_local


class RNucaPolicy:
    """End-to-end R-NUCA lookup for a given system configuration."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        rnuca_config: Optional[RNucaConfig] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.system_config = config
        self.config = rnuca_config or RNucaConfig(
            instruction_cluster_size=config.instruction_cluster_size
        )
        self.topology = topology if topology is not None else build_topology(
            config.interconnect
        )
        set_index_bits = config.l2_slice.num_sets.bit_length() - 1
        self.placement = PlacementPolicy(
            self.topology,
            set_index_bits=set_index_bits,
            instruction_cluster_size=self.config.instruction_cluster_size,
            base_rid=self.config.base_rid,
        )
        self.classifier = PageClassifier(
            config.num_tiles, tlb_entries=self.config.tlb_entries
        )
        self._block_shift = config.block_size.bit_length() - 1
        self._page_shift = config.page_size.bit_length() - 1
        # Statistics
        self.lookups = 0
        self.local_lookups = 0
        self.lookups_by_class: dict[PageClass, int] = {c: 0 for c in PageClass}

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def block_address(self, byte_address: int) -> int:
        return byte_address >> self._block_shift

    def page_number(self, byte_address: int) -> int:
        return byte_address >> self._page_shift

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        core: int,
        byte_address: int,
        *,
        instruction: bool,
        thread_id: Optional[int] = None,
        shootdown: Optional[ShootdownCallback] = None,
    ) -> RNucaLookup:
        """Classify an access and return the slice R-NUCA will probe.

        Exactly one slice is returned for every access — the "one cache probe"
        property of rotational interleaving.
        """
        page = self.page_number(byte_address)
        block = self.block_address(byte_address)
        page_class, event = self.classifier.classify_access(
            core,
            page,
            instruction=instruction,
            thread_id=thread_id,
            shootdown=shootdown,
        )
        decision = self.placement.place(core, block, page_class)
        self.lookups += 1
        self.lookups_by_class[page_class] += 1
        if decision.is_local:
            self.local_lookups += 1
        return RNucaLookup(
            decision=decision, classification=event, page_class=page_class
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def rids(self) -> list[int] | None:
        """The OS-assigned rotational IDs (None when clusters are size-1)."""
        return self.placement.rids

    @property
    def local_lookup_fraction(self) -> float:
        return self.local_lookups / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        """Human-readable summary of the policy configuration."""
        lines = [
            "R-NUCA policy",
            f"  instruction clusters: size-{self.config.instruction_cluster_size} "
            "fixed-center, rotational interleaving",
            "  private data: size-1 cluster at the requesting tile",
            f"  shared data: size-{self.system_config.num_tiles} cluster, "
            "standard address interleaving",
        ]
        rids = self.rids
        if rids is not None:
            lines.append(f"  RIDs: {rids}")
        return "\n".join(lines)
