"""The paper's contribution: R-NUCA placement, clusters, rotational interleaving."""

from repro.core.clusters import Cluster, ClusterType, FixedBoundaryCluster, FixedCenterCluster
from repro.core.indexing import StandardInterleaver
from repro.core.placement import PlacementDecision, PlacementPolicy
from repro.core.rnuca import RNucaConfig, RNucaPolicy
from repro.core.rotational import (
    RotationalInterleaver,
    owner_interleave_bits,
    rid_assignment,
    rotational_index,
)

__all__ = [
    "Cluster",
    "ClusterType",
    "FixedCenterCluster",
    "FixedBoundaryCluster",
    "StandardInterleaver",
    "RotationalInterleaver",
    "rid_assignment",
    "rotational_index",
    "owner_interleave_bits",
    "PlacementPolicy",
    "PlacementDecision",
    "RNucaConfig",
    "RNucaPolicy",
]
