"""Standard address interleaving within a cluster.

Standard interleaving pins each block to a single member of a cluster using
the address bits immediately above the set-index bits — the scheme used by
the conventional shared design over the whole chip (Section 2.2) and by
R-NUCA for shared data over the size-16 cluster and for disjoint
fixed-boundary clusters (Section 4.4).
"""

from __future__ import annotations

from repro.core.clusters import Cluster
from repro.errors import ClusterError


class StandardInterleaver:
    """Maps block addresses to cluster members by address interleaving."""

    def __init__(self, cluster: Cluster, set_index_bits: int) -> None:
        if set_index_bits < 0:
            raise ClusterError("set_index_bits cannot be negative")
        self.cluster = cluster
        self.set_index_bits = set_index_bits
        self._mask = cluster.size - 1

    def interleave_bits(self, block_address: int) -> int:
        """The log2(cluster size) bits immediately above the set index."""
        return (block_address >> self.set_index_bits) & self._mask

    def target_slice(self, block_address: int) -> int:
        """The unique cluster member that caches this block."""
        return self.cluster.slice_for(self.interleave_bits(block_address))

    def blocks_map_uniquely(self, block_addresses: list[int]) -> bool:
        """Whether each block maps to exactly one slice (always true here).

        Present as an explicit, testable statement of the property that lets
        the shared design and R-NUCA skip L2 coherence entirely.
        """
        return all(
            self.target_slice(addr) == self.target_slice(addr)
            for addr in block_addresses
        )
