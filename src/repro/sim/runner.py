"""Parallel experiment runner: grids, batch fan-out and a JSON result cache.

The paper's evaluation is an embarrassingly parallel grid — every figure
sweeps (workload x design x configuration) points through independent
trace-driven simulations.  This module turns that grid into first-class
objects:

:class:`ExperimentPoint`
    One fully specified simulation: workload, design, trace length, scale,
    seed and any extra parameters (instruction-cluster size, ASR allocation
    probability, ...).  A point is content-addressed: its
    :attr:`~ExperimentPoint.content_hash` is a SHA-256 digest of its
    canonical JSON form, so the same point always maps to the same cache
    key no matter which process (or run) produced it.

:class:`ExperimentGrid`
    Enumerates the cross product of workloads, designs and parameter
    overrides into a list of points.  Seeds are fixed at enumeration time,
    so results never depend on worker scheduling order.

:class:`ResultStore`
    A directory of ``<content-hash>.json`` files, each holding a point and
    its serialized :class:`~repro.sim.engine.SimulationResult`.  Re-runs of
    an already-computed point are cache hits and skip simulation entirely,
    which makes large batch jobs resumable.

:class:`BatchRunner`
    Fans missing points out across worker processes with
    :class:`concurrent.futures.ProcessPoolExecutor` (or runs them inline
    for ``jobs=1``), consulting and filling the store.  With a
    :class:`~repro.workloads.store.TraceStore` attached (``trace_store=``
    or the ``RNUCA_TRACE_DIR`` environment variable), every workload trace
    in the batch is generated **exactly once**: the parent pre-materialises
    missing traces into the binary columnar store before fanning out, and
    the workers memory-map them read-only — no regeneration per process,
    no trace pickling over the pool.

Typical use::

    grid = ExperimentGrid(workloads=("oltp-db2", "mix"), designs=("P", "R"))
    runner = BatchRunner(store=ResultStore("results"), jobs=4)
    batch = runner.run(grid)
    for point, result in batch.items():
        print(point.label, result.cpi)

The command-line front end lives in :mod:`repro.cli`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
import time
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro import knobs
from repro.cache.policies import DEFAULT_POLICY, normalize_policy
from repro.check.locks import TrackedLock, make_lock, note_write
from repro.cmp.config import SystemConfig
from repro.designs import normalize_design
from repro.dynamics.adaptive import SCHEDULERS
from repro.errors import SimulationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    backoff_with_jitter,
    default_fault_plan,
)
from repro.sim.engine import (
    DEFAULT_TRACE_LENGTH,
    SimulationResult,
    generate_workload_trace,
    resolve_workload,
    simulate_best_asr,
    simulate_workload,
)
from repro.workloads.generator import DEFAULT_SCALE
from repro.workloads.store import TraceStore
from repro.workloads.trace import Trace

#: Environment variable read for the default worker count.
JOBS_ENV = knobs.JOBS.name

#: Default directory for the JSON result store.
DEFAULT_RESULTS_DIR = "results"

#: Subdirectory (of a store) that corrupt entries are moved into: the
#: evidence is preserved for inspection instead of silently regenerated
#: over.
QUARANTINE_DIR = "quarantine"

#: Retry backoff between attempts on one point: exponential from the base,
#: capped, with seeded jitter (see :func:`repro.faults.backoff_with_jitter`).
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 1.0

#: Point parameters with dedicated execution semantics (everything else is
#: forwarded verbatim to :func:`repro.designs.build_design`).
_CLUSTER_PARAM = "instruction_cluster_size"
_BEST_ASR_PARAM = "best_asr"
_SCHEDULER_PARAM = "scheduler"
_POLICY_PARAM = "l2_policy"


def default_jobs() -> int:
    """Worker count from ``RNUCA_JOBS``, defaulting to serial execution."""
    return knobs.jobs()


def default_trace_store() -> TraceStore | None:
    """Trace store from ``RNUCA_TRACE_DIR``, or ``None`` when unset.

    Library callers opt in through the environment (or an explicit
    ``trace_store=``); the CLI always attaches a store (see
    :func:`repro.cli.cmd_run`), defaulting to ``traces/``.
    """
    directory = knobs.trace_dir()
    return TraceStore(directory) if directory else None


@dataclass(frozen=True)
class ExperimentPoint:
    """One fully specified (workload, design, configuration) simulation.

    ``params`` is a tuple of sorted ``(key, value)`` pairs so the point is
    hashable and its canonical form is order-independent.  Use
    :meth:`make` to build one from a plain dict.
    """

    workload: str
    design: str
    num_records: int = DEFAULT_TRACE_LENGTH
    scale: int = DEFAULT_SCALE
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        workload: str,
        design: str,
        *,
        num_records: int = DEFAULT_TRACE_LENGTH,
        scale: int = DEFAULT_SCALE,
        seed: int = 0,
        params: dict[str, Any] | None = None,
    ) -> ExperimentPoint:
        return cls(
            workload=workload,
            design=normalize_design(design),
            num_records=num_records,
            scale=scale,
            seed=seed,
            params=tuple(sorted((params or {}).items())),
        )

    @property
    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def label(self) -> str:
        """Human-readable point name, e.g. ``oltp-db2/R[instruction_cluster_size=4]``."""
        suffix = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.workload}/{self.design}" + (f"[{suffix}]" if suffix else "")

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "design": self.design,
            "num_records": self.num_records,
            "scale": self.scale,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ExperimentPoint:
        return cls.make(
            data["workload"],
            data["design"],
            num_records=data["num_records"],
            scale=data["scale"],
            seed=data["seed"],
            params=data.get("params"),
        )

    @property
    def content_hash(self) -> str:
        """SHA-256 of the canonical JSON form; the result-store cache key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]


@dataclass
class ExperimentGrid:
    """The cross product of workloads, designs and parameter overrides.

    ``overrides`` is an extra grid axis: each dict is merged into the
    parameters of every (workload, design) pair.  ``cluster_sizes`` adds
    the Figure-11 instruction-cluster sweep (R-NUCA points with an explicit
    ``instruction_cluster_size``) for every workload.  ``schedulers`` adds
    the replay-time scheduling axis (:mod:`repro.dynamics.adaptive`):
    ``"fixed"`` enumerates the plain point (no parameter, so its content
    hash — and its cached result — is identical to a sweep-free run), while
    ``"greedy"``/``"reinforced"`` enumerate points carrying a ``scheduler``
    parameter.  ``policies`` is the L2 replacement axis
    (:mod:`repro.cache.policies`) with the same convention: ``"lru"`` (the
    native default) contributes no parameter — and therefore the exact
    pre-axis content hash — while any other policy enumerates points
    carrying ``l2_policy``.
    """

    workloads: tuple[str, ...] = ()
    designs: tuple[str, ...] = ()
    num_records: int = DEFAULT_TRACE_LENGTH
    scale: int = DEFAULT_SCALE
    seed: int = 0
    overrides: tuple[dict[str, Any], ...] = ({},)
    cluster_sizes: tuple[int, ...] = ()
    schedulers: tuple[str, ...] = ()
    policies: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.workloads = tuple(self.workloads)
        self.designs = tuple(normalize_design(d) for d in self.designs)
        self.overrides = tuple(dict(o) for o in self.overrides) or ({},)
        self.cluster_sizes = tuple(self.cluster_sizes)
        self.schedulers = tuple(self.schedulers)
        for name in self.schedulers:
            if name not in SCHEDULERS:
                known = ", ".join(SCHEDULERS)
                raise SimulationError(
                    f"unknown scheduler {name!r}; known schedulers: {known}"
                )
        self.policies = tuple(normalize_policy(p) for p in self.policies)

    def _scheduler_params(self) -> list[dict[str, Any]]:
        """One params fragment per scheduler ("fixed" contributes none)."""
        if not self.schedulers:
            return [{}]
        return [
            {} if name == "fixed" else {"scheduler": name}
            for name in self.schedulers
        ]

    def _policy_params(self) -> list[dict[str, Any]]:
        """One params fragment per policy ("lru" contributes none)."""
        if not self.policies:
            return [{}]
        return [
            {} if name == DEFAULT_POLICY else {_POLICY_PARAM: name}
            for name in self.policies
        ]

    def points(self) -> list[ExperimentPoint]:
        """Enumerate the grid, seeds fixed at enumeration time."""
        points: list[ExperimentPoint] = []
        scheduler_params = self._scheduler_params()
        policy_params = self._policy_params()
        for workload in self.workloads:
            for design in self.designs:
                for override in self.overrides:
                    for fragment in scheduler_params:
                        for policy_fragment in policy_params:
                            points.append(
                                ExperimentPoint.make(
                                    workload,
                                    design,
                                    num_records=self.num_records,
                                    scale=self.scale,
                                    seed=self.seed,
                                    params={
                                        **override,
                                        **fragment,
                                        **policy_fragment,
                                    },
                                )
                            )
            for size in self.cluster_sizes:
                points.append(
                    ExperimentPoint.make(
                        workload,
                        "R",
                        num_records=self.num_records,
                        scale=self.scale,
                        seed=self.seed,
                        params={_CLUSTER_PARAM: size},
                    )
                )
        return points

    def __iter__(self) -> Iterator[ExperimentPoint]:
        return iter(self.points())

    def __len__(self) -> int:
        scheduler_count = max(1, len(self.schedulers))
        policy_count = max(1, len(self.policies))
        return (
            len(self.workloads) * len(self.designs) * len(self.overrides)
            * scheduler_count * policy_count
            + len(self.workloads) * len(self.cluster_sizes)
        )


#: The trace store this process consults inside :func:`execute_point`.
#: Installed by :func:`set_process_trace_store` — the pool initializer in
#: worker processes, and :meth:`BatchRunner.run` in the parent.
_PROCESS_TRACE_STORE: TraceStore | None = None


def set_process_trace_store(directory: str | None) -> None:
    """Install (or clear) this process's trace store.

    Doubles as the :class:`~concurrent.futures.ProcessPoolExecutor`
    initializer: workers receive the store directory as a plain string, so
    no trace ever crosses the pool boundary — each worker memory-maps the
    files the parent pre-materialised.  Changing the store invalidates the
    per-process trace cache (a different directory may hold different
    artifacts for the same key).
    """
    global _PROCESS_TRACE_STORE
    _PROCESS_TRACE_STORE = TraceStore(directory) if directory else None
    _trace_for.cache_clear()


def _ensure_process_trace_store(directory: str) -> None:
    """Install the store only when it differs (keeps the trace cache warm)."""
    current = str(_PROCESS_TRACE_STORE.directory) if _PROCESS_TRACE_STORE else None
    if current != directory:
        set_process_trace_store(directory)


#: This process's fault injector (worker processes only; the parent keeps
#: its injector on the runner).  Installed by :func:`_pool_worker_init`.
_PROCESS_FAULTS: FaultInjector | None = None

#: True only in executor worker processes: the one place an injected
#: worker-crash may genuinely kill the process.
_IN_POOL_WORKER = False


def set_process_faults(plan: FaultPlan | None) -> None:
    """Install (or clear) this process's fault injector."""
    global _PROCESS_FAULTS
    _PROCESS_FAULTS = FaultInjector(plan) if plan is not None else None


def _pool_worker_init(trace_dir: str | None, plan: FaultPlan | None) -> None:
    """The executor initializer: trace store, fault plan, worker marker."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    set_process_trace_store(trace_dir)
    set_process_faults(plan)


def _execute_with_faults(
    point: ExperimentPoint,
    attempt: int,
    injector: FaultInjector | None,
    *,
    in_worker: bool,
) -> SimulationResult:
    """Run :func:`execute_point` behind the injection points.

    Draws are keyed on the attempt index the parent passes in, so a retry
    of a crashed point draws independently instead of crashing forever.
    An injected worker-crash is a real ``os._exit`` only inside a pool
    worker (producing a genuine ``BrokenProcessPool`` upstairs); inline it
    raises :class:`~repro.faults.InjectedFault`, because killing the only
    process would take the daemon down with it.
    """
    if injector is not None:
        key = point.content_hash
        if injector.fires("slow-sim", key, sequence=attempt):
            time.sleep(injector.delay_s("slow-sim"))
        if injector.fires("worker-crash", key, sequence=attempt):
            if in_worker:
                os._exit(1)
            raise InjectedFault(
                f"injected worker-crash for {point.label} (attempt {attempt})"
            )
    return execute_point(point)


def _run_point_task(point: ExperimentPoint, attempt: int = 0) -> SimulationResult:
    """The pool task submitted per point: fault sites around the worker.

    ``execute_point`` is resolved through the module global at call time,
    so tests that monkeypatch it keep working through this wrapper.
    """
    return _execute_with_faults(
        point, attempt, _PROCESS_FAULTS, in_worker=_IN_POOL_WORKER
    )


@lru_cache(maxsize=4)
def _trace_for(workload: str, num_records: int, scale: int, seed: int) -> Trace:
    """Per-process trace cache so one workload's grid points share a trace.

    Generation is seeded and deterministic, so sharing is purely a speed-up:
    a (workload, P/A/S/R/I + cluster sweep) slice of the grid replays one
    trace object instead of regenerating it per point.  Traces are read-only
    during simulation, which is what made the old serial path's sharing safe.
    Dynamic scenario names ("oltp-db2:migrate") route through the
    :class:`~repro.dynamics.generator.DynamicTraceGenerator`.  When a trace
    store is installed (:func:`set_process_trace_store`), the trace is
    memory-mapped from the binary columnar cache instead of regenerated.
    """
    spec, dyn = resolve_workload(workload)
    config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    return generate_workload_trace(
        spec, dyn, config, num_records, seed=seed, scale=scale,
        store=_PROCESS_TRACE_STORE,
    )


def execute_point(point: ExperimentPoint) -> SimulationResult:
    """Run one grid point in the current process.

    This is the process-pool worker: it must stay importable at module
    level (picklable by reference) and depend only on the point itself.

    Design "A" runs the paper's best-of-six ASR selection when the point
    carries no explicit ASR parameters (or sets ``best_asr=True``); any
    explicit parameter such as ``allocation_probability`` runs exactly that
    single variant instead.
    """
    params = point.param_dict
    spec, _ = resolve_workload(point.workload)
    config = SystemConfig.for_workload_category(spec.category).scaled(point.scale)
    trace = _trace_for(point.workload, point.num_records, point.scale, point.seed)
    # The scheduler and replacement policy are *replay-time* axes,
    # orthogonal to design parameters: pop them before the best-ASR
    # decision (a greedy-scheduler or non-LRU ASR point must still run the
    # best-of-six selection its fixed/LRU counterpart runs, or the axis
    # comparison would conflate the axis effect with ASR-variant selection)
    # and forward them to every execution path explicitly.
    scheduler = params.pop(_SCHEDULER_PARAM, None)
    l2_policy = params.pop(_POLICY_PARAM, None)
    best_asr = params.pop(_BEST_ASR_PARAM, None)
    if best_asr is None:
        best_asr = not params
    if point.design == "A" and best_asr:
        if params:
            raise SimulationError(
                f"best_asr=True is incompatible with explicit ASR parameters {params!r}"
            )
        result = simulate_best_asr(
            spec,
            num_records=point.num_records,
            scale=point.scale,
            seed=point.seed,
            config=config,
            trace=trace,
            scheduler=scheduler,
            l2_policy=l2_policy,
        )
    elif point.design == "R" and _CLUSTER_PARAM in params:
        from repro.analysis.evaluation import simulate_rnuca_cluster

        result = simulate_rnuca_cluster(
            point.workload,
            params.pop(_CLUSTER_PARAM),
            num_records=point.num_records,
            scale=point.scale,
            seed=point.seed,
            config=config,
            trace=trace,
            scheduler=scheduler,
            l2_policy=l2_policy,
            **params,
        )
    else:
        if l2_policy is not None:
            params[_POLICY_PARAM] = l2_policy
        result = simulate_workload(
            spec,
            point.design,
            num_records=point.num_records,
            scale=point.scale,
            seed=point.seed,
            config=config,
            trace=trace,
            scheduler=scheduler,
            **params,
        )
    result.metadata["point"] = point.to_dict()
    return result


class ResultStore:
    """A directory of content-addressed ``<hash>.json`` simulation results.

    A corrupt entry (truncated write, damaged disk) is **quarantined** on
    read: moved into ``quarantine/`` and counted, so the caller re-executes
    while the evidence survives for inspection — a silent miss would
    regenerate over the one artifact that could explain the corruption.
    ``faults=None`` (the default) picks up the ``RNUCA_FAULTS`` plan for
    the ``store-io`` injection site; pass an empty plan to opt out.
    """

    def __init__(
        self,
        directory: str | Path = DEFAULT_RESULTS_DIR,
        *,
        faults: FaultPlan | None = None,
    ) -> None:
        self.directory = Path(directory)
        plan = faults if faults is not None else default_fault_plan()
        self._injector = FaultInjector(plan) if plan is not None else None
        self.quarantined = 0
        self._quarantine_lock: TrackedLock = make_lock("results.quarantine")

    def path_for(self, point: ExperimentPoint) -> Path:
        return self.directory / f"{point.content_hash}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (keeping the evidence) and count it."""
        target_dir = self.directory / QUARANTINE_DIR
        with contextlib.suppress(OSError):
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        with self._quarantine_lock:
            self.quarantined += 1
            note_write("ResultStore.quarantined", self._quarantine_lock)

    def quarantined_files(self) -> list[Path]:
        """Every quarantined entry currently on disk, sorted by name."""
        target_dir = self.directory / QUARANTINE_DIR
        if not target_dir.is_dir():
            return []
        return sorted(target_dir.glob("*.json"))

    def get(self, point: ExperimentPoint) -> SimulationResult | None:
        """Return the cached result for ``point``, or ``None`` on a miss."""
        path = self.path_for(point)
        if not path.exists():
            return None
        if self._injector is not None and self._injector.fires(
            "store-io", point.content_hash
        ):
            return None  # injected read failure: degrade to a miss, re-execute
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        except OSError:
            return None  # transient read error: a miss, but not corruption
        if payload.get("point") != point.to_dict():
            return None  # hash collision or stale schema: treat as a miss
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            return None

    def put(self, point: ExperimentPoint, result: SimulationResult) -> Path:
        """Persist ``result`` under the point's content hash (atomically).

        The temp file is unique per writer (``tempfile.mkstemp``), so
        concurrent writers of the *same* point — two daemon threads, two
        pool workers racing on a shared store — each rename their own
        file into place: last writer wins, nobody renames a path another
        writer already consumed.  (A shared ``<hash>.json.tmp`` name
        would let writer B's rename hit ``FileNotFoundError`` after
        writer A renamed the file out from under it.)
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(point)
        payload = {"point": point.to_dict(), "result": result.to_dict()}
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{point.content_hash}.", suffix=".tmp"
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def load_all(self) -> list[tuple[ExperimentPoint, SimulationResult]]:
        """Every (point, result) pair in the store, label-sorted.

        Corrupt or stale files are skipped; use :meth:`load_all_with_errors`
        when the caller should surface them instead of dropping them.
        """
        return self.load_all_with_errors()[0]

    def load_all_with_errors(
        self,
    ) -> tuple[list[tuple[ExperimentPoint, SimulationResult]], list[Path]]:
        """Like :meth:`load_all`, plus the corrupt/unreadable files skipped."""
        pairs: list[tuple[ExperimentPoint, SimulationResult]] = []
        skipped: list[Path] = []
        if not self.directory.is_dir():
            return pairs, skipped
        for path in sorted(self.directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                point = ExperimentPoint.from_dict(payload["point"])
                result = SimulationResult.from_dict(payload["result"])
            except (OSError, KeyError, TypeError, ValueError):
                skipped.append(path)
                continue  # a bad file must not crash the whole report
            pairs.append((point, result))
        pairs.sort(key=lambda pair: pair[0].label)
        return pairs, skipped


@dataclass
class BatchResult:
    """What one :meth:`BatchRunner.run` call produced."""

    points: list[ExperimentPoint] = field(default_factory=list)
    results: dict[str, SimulationResult] = field(default_factory=dict)
    cache_hits: int = 0
    executed: int = 0

    def result_for(self, point: ExperimentPoint) -> SimulationResult:
        return self.results[point.content_hash]

    def items(self) -> Iterator[tuple[ExperimentPoint, SimulationResult]]:
        for point in self.points:
            yield point, self.results[point.content_hash]

    def __len__(self) -> int:
        return len(self.points)


class _InFlight:
    """One in-progress simulation that concurrent requesters can join."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: SimulationResult | None = None
        self.error: BaseException | None = None


class BatchRunner:
    """Fan a batch of experiment points out across worker processes.

    Cached points are served from the :class:`ResultStore`; the rest run in
    a :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or
    inline (``jobs=1``).  Every point carries its own seed, so the outcome
    is identical whichever path executes it.

    A runner is **reentrant**: :meth:`run_point` may be called from many
    threads at once (the serve daemon does exactly this, one thread per
    client connection).  Concurrent requests for the same point are
    deduplicated on the point's content hash — one thread owns the
    simulation, the others block on it and share the result — and the
    worker pool, once spun up, stays warm across calls until
    :meth:`close`.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        *,
        jobs: int | None = None,
        progress: Callable[[str], None] | None = None,
        trace_store: TraceStore | None = None,
        faults: FaultPlan | None = None,
        point_timeout_s: float | None = None,
        point_retries: int | None = None,
    ) -> None:
        self.store = store
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise SimulationError("jobs must be >= 1")
        self.progress = progress or (lambda message: None)
        self.trace_store = trace_store if trace_store is not None else default_trace_store()
        # Fault plan (None = the RNUCA_FAULTS environment plan, itself None
        # by default) plus the per-point deadline and retry budget.
        self.faults = faults if faults is not None else default_fault_plan()
        self._injector = (
            FaultInjector(self.faults) if self.faults is not None else None
        )
        self.point_timeout_s = (
            point_timeout_s if point_timeout_s is not None else knobs.point_timeout_s()
        )
        self.point_retries = (
            point_retries if point_retries is not None else knobs.point_retries()
        )
        self.retries = 0
        self.pool_rebuilds = 0
        self.pool_generation = 0
        self._inflight: dict[str, _InFlight] = {}
        # Tracked locks (repro.check.locks): under RNUCA_CHECK_LOCKS=1 the
        # test suite records their acquisition order and fails on
        # inversions or writes to _inflight made outside _inflight_lock.
        self._inflight_lock: TrackedLock = make_lock("runner.inflight")
        self._trace_lock: TrackedLock = make_lock("runner.traces")
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock: TrackedLock = make_lock("runner.pool")
        self._stats_lock: TrackedLock = make_lock("runner.stats")

    # ------------------------------------------------------------------ #
    # Long-lived (serve) execution: warm pool + in-flight dedupe
    # ------------------------------------------------------------------ #
    def _new_pool(self) -> ProcessPoolExecutor:
        trace_dir = str(self.trace_store.directory) if self.trace_store else None
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_pool_worker_init,
            initargs=(trace_dir, self.faults),
        )

    def _shared_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first use and kept warm."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._new_pool()
                self.pool_generation += 1
                note_write("BatchRunner._pool", self._pool_lock)
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Throw a broken pool away — once, even when many threads see it.

        Identity-guarded: every thread whose future died with
        ``BrokenProcessPool`` calls this with the pool it submitted to, but
        only the first discards it; the rest find ``self._pool`` already
        replaced (or ``None``) and their retry picks up the rebuilt pool.
        """
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
                note_write("BatchRunner._pool", self._pool_lock)
                with self._stats_lock:
                    self.pool_rebuilds += 1
                    note_write("BatchRunner.stats", self._stats_lock)
        # Outside the pool lock: reaping a broken pool's processes must not
        # serialise other threads' recovery.
        pool.shutdown(wait=False, cancel_futures=True)

    def _note_retry(self) -> None:
        with self._stats_lock:
            self.retries += 1
            note_write("BatchRunner.stats", self._stats_lock)

    def stats_snapshot(self) -> dict[str, int]:
        """Recovery counters for health reporting (thread-safe)."""
        with self._pool_lock:
            generation = self.pool_generation
        with self._stats_lock:
            return {
                "pool_generation": generation,
                "pool_rebuilds": self.pool_rebuilds,
                "retries": self.retries,
            }

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
                note_write("BatchRunner._pool", self._pool_lock)

    def __enter__(self) -> BatchRunner:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _backoff_s(self, point: ExperimentPoint, attempt: int) -> float:
        seed = self.faults.seed if self.faults is not None else 0
        return backoff_with_jitter(
            seed,
            point.content_hash,
            attempt,
            base_s=_BACKOFF_BASE_S,
            cap_s=_BACKOFF_CAP_S,
        )

    def _retries_exhausted(
        self, point: ExperimentPoint, last_error: BaseException | None
    ) -> SimulationError:
        return SimulationError(
            f"point {point.label} failed after {self.point_retries + 1} "
            f"attempts: {last_error}"
        )

    def _execute_one(self, point: ExperimentPoint) -> SimulationResult:
        """Run one point to completion, surviving transient failures.

        Transient failures — a crashed worker (``BrokenProcessPool``), an
        expired per-point deadline, an injected inline crash — each consume
        one attempt from the retry budget, with bounded seeded-jitter
        exponential backoff between attempts.  Resubmission is safe because
        points are deterministic and content-addressed.  Real simulation
        errors propagate immediately, un-retried.
        """
        if self.jobs > 1:
            return self._execute_pooled(point)
        if self.trace_store is not None:
            _ensure_process_trace_store(str(self.trace_store.directory))
        return self._execute_inline(point)

    def _execute_pooled(self, point: ExperimentPoint) -> SimulationResult:
        last_error: BaseException | None = None
        for attempt in range(self.point_retries + 1):
            if attempt:
                self._note_retry()
                time.sleep(self._backoff_s(point, attempt))
            pool = self._shared_pool()
            try:
                future = pool.submit(_run_point_task, point, attempt)
            except (BrokenProcessPool, RuntimeError) as error:
                # The pool broke (or was discarded by another thread's
                # recovery) between lookup and submit; rebuild and retry.
                self._discard_pool(pool)
                last_error = error
                continue
            try:
                return future.result(timeout=self.point_timeout_s)
            except BrokenProcessPool as error:
                self._discard_pool(pool)
                last_error = error
            except CancelledError as error:
                # Another thread's recovery cancelled our queued future.
                last_error = error
            except TimeoutError as error:
                # Deadline expired: cancel if still queued; a task already
                # running is abandoned (its late result goes nowhere).
                future.cancel()
                last_error = error
        raise self._retries_exhausted(point, last_error) from last_error

    def _execute_inline(self, point: ExperimentPoint) -> SimulationResult:
        last_error: BaseException | None = None
        for attempt in range(self.point_retries + 1):
            if attempt:
                self._note_retry()
                time.sleep(self._backoff_s(point, attempt))
            try:
                return _execute_with_faults(
                    point, attempt, self._injector, in_worker=False
                )
            except InjectedFault as error:
                last_error = error
        raise self._retries_exhausted(point, last_error) from last_error

    def run_point(
        self,
        point: ExperimentPoint,
        *,
        on_status: Callable[[str], None] | None = None,
    ) -> tuple[SimulationResult, str]:
        """Execute (or fetch, or join) one point; thread-safe.

        Returns ``(result, status)`` where status is

        ``"cached"``
            served from the :class:`ResultStore` without simulating;
        ``"executed"``
            this call ran the simulation (and stored the result);
        ``"deduped"``
            an identical point was already in flight — this call blocked
            on it and shares its result, so exactly one simulation ran.

        ``on_status`` is invoked once with the status the call is about to
        take (``"cached"``/``"executing"``/``"joined"``) before any
        blocking work, which is what lets the daemon stream an *accepted*
        event to the client while the simulation runs.
        """
        notify = on_status or (lambda status: None)
        cached = self.store.get(point) if self.store else None
        if cached is not None:
            notify("cached")
            return cached, "cached"
        key = point.content_hash
        with self._inflight_lock:
            joined = self._inflight.get(key)
            if joined is None:
                entry = _InFlight()
                self._inflight[key] = entry
                note_write("BatchRunner._inflight", self._inflight_lock)
        if joined is not None:
            notify("joined")
            # The owner bounds every attempt with the per-point deadline,
            # so a joiner that outwaits the owner's whole retry budget (plus
            # slack) is witnessing a bug, not a slow simulation.
            budget = (self.point_timeout_s + _BACKOFF_CAP_S) * (
                self.point_retries + 1
            ) + 30.0
            if not joined.event.wait(timeout=budget):
                raise SimulationError(
                    f"gave up joining the in-flight simulation of "
                    f"{point.label} after {budget:.0f}s"
                )
            if joined.error is not None:
                raise joined.error
            if joined.result is None:  # owner invariant: result precedes wake
                raise SimulationError(
                    f"in-flight simulation of {point.label} finished without a result"
                )
            return joined.result, "deduped"
        notify("executing")
        try:
            # Double-check the store: the point may have landed between the
            # miss above and this thread winning the in-flight slot.
            cached = self.store.get(point) if self.store else None
            if cached is not None:
                entry.result = cached
                return cached, "cached"
            if self.trace_store is not None:
                # One generation per distinct trace even when concurrent
                # points share a workload: the store's get_or_create is
                # check-then-act, so serialise materialisation.
                with self._trace_lock:
                    self._materialise_traces([point])
            result = self._execute_one(point)
            if self.store is not None:
                self.store.put(point, result)
            entry.result = result
            return result, "executed"
        # repro: allow-broad-except(recorded for joiners, then re-raised)
        except BaseException as error:
            entry.error = error
            raise
        finally:
            # Pop before waking the joiners: a request arriving after the
            # wake must start fresh (and will hit the store).
            with self._inflight_lock:
                self._inflight.pop(key, None)
                note_write("BatchRunner._inflight", self._inflight_lock)
            entry.event.set()

    def run(self, points: Iterable[ExperimentPoint]) -> BatchResult:
        """Execute (or fetch from cache) every point and return the batch."""
        batch = BatchResult()
        missing: list[ExperimentPoint] = []
        seen: set[str] = set()
        for point in points:
            if point.content_hash in seen:
                continue  # identical point requested twice in one batch
            seen.add(point.content_hash)
            batch.points.append(point)
            cached = self.store.get(point) if self.store else None
            if cached is not None:
                batch.results[point.content_hash] = cached
                batch.cache_hits += 1
                self.progress(f"cached    {point.label}")
            else:
                missing.append(point)
        if missing and self.trace_store is not None:
            self._materialise_traces(missing)
        for point, result in self._execute(missing):
            batch.results[point.content_hash] = result
            batch.executed += 1
            if self.store is not None:
                self.store.put(point, result)
            self.progress(f"simulated {point.label}  cpi={result.cpi:.3f}")
        return batch

    def _materialise_traces(self, missing: list[ExperimentPoint]) -> None:
        """Generate every distinct trace the batch needs, once, in the parent.

        After this, every worker's :func:`_trace_for` is a pure read: it
        memory-maps the stored file, so the columns live once in the page
        cache no matter how many processes replay them.
        """
        done: set[tuple[str, int, int, int]] = set()
        for point in missing:
            signature = (point.workload, point.num_records, point.scale, point.seed)
            if signature in done:
                continue
            done.add(signature)
            spec, dyn = resolve_workload(point.workload)
            config = SystemConfig.for_workload_category(spec.category).scaled(point.scale)
            generate_workload_trace(
                spec, dyn, config, point.num_records,
                seed=point.seed, scale=point.scale, store=self.trace_store,
            )
            self.progress(
                f"trace     {point.workload} ({point.num_records} records) ready"
            )

    def _execute(
        self, missing: list[ExperimentPoint]
    ) -> Iterator[tuple[ExperimentPoint, SimulationResult]]:
        if not missing:
            return
        trace_dir = str(self.trace_store.directory) if self.trace_store else None
        if self.jobs == 1:
            previous = (
                str(_PROCESS_TRACE_STORE.directory) if _PROCESS_TRACE_STORE else None
            )
            if trace_dir is not None:
                set_process_trace_store(trace_dir)
            try:
                for point in missing:
                    yield point, self._execute_inline(point)
            finally:
                if trace_dir is not None:
                    set_process_trace_store(previous)
            return
        # Batch execution rides the shared pool so it gets the same
        # crash recovery as run_point; a pool this batch opened is closed
        # again afterwards (a pre-warmed serve pool stays up).
        pool_was_warm = self._pool is not None
        try:
            yield from self._execute_batch_pooled(missing)
        finally:
            if not pool_was_warm:
                self.close()

    def _charge_attempt(
        self,
        point: ExperimentPoint,
        attempts: dict[str, int],
        error: BaseException,
    ) -> None:
        """Burn one of ``point``'s attempts; raise when the budget is gone."""
        attempts[point.content_hash] += 1
        if attempts[point.content_hash] > self.point_retries:
            raise self._retries_exhausted(point, error) from error
        self._note_retry()

    def _execute_batch_pooled(
        self, missing: list[ExperimentPoint]
    ) -> Iterator[tuple[ExperimentPoint, SimulationResult]]:
        """Fan the batch out over the shared pool, recovering per round.

        Every pending point is submitted together; the ones that fail
        transiently (worker crash, expired deadline) are resubmitted as the
        next round, each carrying its own attempt counter toward the same
        per-point retry budget ``run_point`` enforces.
        """
        attempts: dict[str, int] = {point.content_hash: 0 for point in missing}
        results: dict[str, SimulationResult] = {}
        pending = list(missing)
        while pending:
            pool = self._shared_pool()
            try:
                submitted = [
                    (point, pool.submit(_run_point_task, point, attempts[point.content_hash]))
                    for point in pending
                ]
            except (BrokenProcessPool, RuntimeError) as error:
                self._discard_pool(pool)
                for point in pending:
                    self._charge_attempt(point, attempts, error)
                continue
            retry: list[ExperimentPoint] = []
            pool_broken = False
            for point, future in submitted:
                try:
                    results[point.content_hash] = future.result(
                        timeout=self.point_timeout_s
                    )
                except BrokenProcessPool as error:
                    pool_broken = True
                    self._charge_attempt(point, attempts, error)
                    retry.append(point)
                except (TimeoutError, CancelledError, InjectedFault) as error:
                    future.cancel()
                    self._charge_attempt(point, attempts, error)
                    retry.append(point)
            if pool_broken:
                self._discard_pool(pool)
            if retry:
                time.sleep(
                    self._backoff_s(retry[0], attempts[retry[0].content_hash])
                )
            pending = retry
        for point in missing:
            yield point, results[point.content_hash]


def run_grid(
    grid: ExperimentGrid,
    *,
    store: ResultStore | None = None,
    jobs: int | None = None,
    progress: Callable[[str], None] | None = None,
    trace_store: TraceStore | None = None,
) -> BatchResult:
    """Convenience wrapper: run every point of ``grid`` through a runner."""
    return BatchRunner(
        store=store, jobs=jobs, progress=progress, trace_store=trace_store
    ).run(grid.points())
