"""Measurement sampling in the spirit of SimFlex (Section 5.1).

The paper measures throughput with the SimFlex statistical sampling
methodology and reports 95% confidence intervals.  Here the trace is split
into equal-sized samples, per-sample metrics are computed, and the mean plus
a normal-approximation 95% confidence interval is reported.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import SimulationError

#: z-value for a two-sided 95% confidence interval.
Z_95 = 1.96


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its 95% confidence half-width."""

    mean: float
    half_width: float
    num_samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width as a (non-negative) fraction of the mean.

        Uses the magnitude of the mean so negative-mean intervals do not
        report a negative error, and a zero mean with a nonzero half-width
        reports infinite relative error instead of silently claiming zero.
        """
        if self.mean == 0:
            return math.inf if self.half_width else 0.0
        return abs(self.half_width / self.mean)

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return not (self.high < other.low or other.high < self.low)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.num_samples})"

    def to_dict(self) -> dict:
        return {
            "mean": self.mean,
            "half_width": self.half_width,
            "num_samples": self.num_samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConfidenceInterval":
        return cls(
            mean=data["mean"],
            half_width=data["half_width"],
            num_samples=data["num_samples"],
        )


def sample_mean(values: Sequence[float]) -> ConfidenceInterval:
    """Mean and 95% CI of per-sample measurements."""
    if not values:
        raise SimulationError("cannot compute a confidence interval of no samples")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, num_samples=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = Z_95 * math.sqrt(variance / n)
    return ConfidenceInterval(mean=mean, half_width=half_width, num_samples=n)


def split_into_samples(count: int, num_samples: int) -> list[slice]:
    """Split ``count`` items into ``num_samples`` contiguous slices."""
    if num_samples <= 0:
        raise SimulationError("num_samples must be positive")
    num_samples = min(num_samples, count) or 1
    base = count // num_samples
    slices = []
    start = 0
    for i in range(num_samples):
        extra = 1 if i < count % num_samples else 0
        end = start + base + extra
        slices.append(slice(start, end))
        start = end
    return slices


def speedup_interval(
    baseline: ConfidenceInterval, improved: ConfidenceInterval
) -> ConfidenceInterval:
    """CI for the speedup ratio ``baseline.mean / improved.mean``.

    For CPI measurements this is the throughput improvement of ``improved``
    over ``baseline`` (first-order error propagation for a ratio of means).
    The parameter order matches the semantics: the *baseline* measurement
    comes first, the improved/compared one second.
    """
    if improved.mean == 0:
        raise SimulationError("improved mean is zero; speedup undefined")
    ratio = baseline.mean / improved.mean
    rel = math.sqrt(
        baseline.relative_error**2 + improved.relative_error**2
    )
    if math.isinf(rel):
        # A zero-mean measurement with nonzero width has unbounded relative
        # error; propagate an unbounded half-width rather than 0*inf = NaN.
        half_width = math.inf
    else:
        half_width = abs(ratio) * rel
    return ConfidenceInterval(
        mean=ratio,
        half_width=half_width,
        num_samples=min(baseline.num_samples, improved.num_samples),
    )
