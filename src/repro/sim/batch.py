"""Batched vectorised replay: a whole static run resolved with numpy.

The fast engine replays one record at a time through the design's
``_service`` method.  This module replays the *entire* static trace as
columnar array math and reproduces the fast engine's ``SimulationStats``
bit for bit — same floats, same dict insertion orders, same per-window
sample CPIs — at an order of magnitude higher records/sec.  The trick is
that for the three designs with a closed-form service path (R-NUCA,
shared, ideal) every per-record outcome is a pure function of the trace
prefix, so classification, placement, L1 dirty-owner resolution, the L2
probe and the victim buffer can each be resolved for all records at once:

* **Classification** (R-NUCA) — with warmed page tables and no page that
  mixes instruction and data accesses, no access can re-classify a page,
  so every record's class is the warmed class of its page.
* **Placement** — pure index math per design (rotational-interleaved
  instruction clusters / shared cluster members for R, address
  interleaving for S/I), evaluated as one gather per record.
* **L1 dirty-owner** — ``dirty_owner`` can only find the immediately
  previous accessor of the block (any later access downgrades,
  invalidates or overwrites a MODIFIED copy), so candidates are exactly
  the data records whose previous same-block data access was a write by
  another core.  Whether the writer's copy survived in its
  direct-mapped / 2-way L1 set reduces to a closed form over the per-set
  fill stream: the copy dies at the first adjacent fill pair with
  distinct values and no interposed remote write to the earlier value
  (a remote write frees the companion way, extending residency).
* **L2 probe** — every service path drives the set's LRU list through
  the same "touch or insert-evicting-LRU" step regardless of how the
  record resolves, so hits, evictions and victim identities follow the
  classic LRU stack-distance characterisation, computed here with
  length-bucketed boolean tensors per (tile, set) stream and a scalar
  ``OrderedDict`` walk for the rare long streams.
* **Victim buffer** — a sparse scalar pass over the probe-missing
  records only (a few percent of the trace), replaying each tile's
  FIFO exactly.

Anything outside the closed form (ASR / private designs, installed
replacement policies, wide L1 associativity, pages that would
re-classify mid-run, reused non-pristine chips ...) raises
:class:`BatchFallback` *before any state is mutated* and the caller
falls back to the fast engine, so ``engine="batch"`` is always safe.

Deliberate non-goals: the batch kernel folds back every counter the
result surface reads (``design.accesses`` / ``offchip_accesses``,
R-NUCA misclassification, classifier access totals and policy lookup
counters) but leaves the microarchitectural inventory unmaintained —
cache array contents and hit/miss counters, TLB state, victim-buffer
and memory-controller counters, and the L1 holders map.  Tools that
inspect those after a run must use the fast or reference engine.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.designs.base import (
    DIRECTORY_LATENCY,
    L1_PROBE_LATENCY,
    L1_TO_L1,
    L2,
    OFF_CHIP,
)
from repro.designs.ideal import IdealDesign
from repro.designs.rnuca_design import RNucaDesign
from repro.designs.shared import SharedDesign
from repro.osmodel.page_table import PageClass
from repro.sim.sampling import split_into_samples
from repro.sim.stats import SampleAccumulator, SimulationStats
from repro.workloads.trace import INSTRUCTION_CODE, STORE_CODE, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle (engine imports batch)
    from repro.sim.engine import TraceSimulator

#: Streams at most this long (after run-length dedup) go through the
#: lockstep matrix walk; longer streams fall back to a scalar LRU walk
#: (a handful of hot sets on the shipped workloads).  The walk costs one
#: python-level iteration per matrix column, so its width must stay
#: bounded.
_STREAM_BUCKETS = (128,)

#: Coarse access-class codes (match ``TraceColumns`` coarse labels).
_CLASS_NAMES = ("instruction", "private", "shared")


class BatchFallback(Exception):
    """The batch kernel cannot replay this (design, trace) combination.

    Raised before any simulator/design state is mutated, so the caller
    can transparently re-run the trace through the fast engine.
    """


def _require(condition: bool, reason: str) -> None:
    if not condition:
        raise BatchFallback(reason)


# --------------------------------------------------------------------- #
# LRU stack-distance resolution per (tile, set) stream
# --------------------------------------------------------------------- #
def _stack_distance_tensor(values: np.ndarray, assoc: int):
    """Resolve presence/eviction/victim for padded LRU streams.

    ``values`` is ``[groups, length]`` of block addresses padded with -1
    at row ends.  Blocks are never invalidated, so each set holds exactly
    the ``assoc`` most-recently-used distinct values; the kernel walks
    all rows in lockstep, one column per step, carrying an explicit
    ``[groups, assoc]`` MRU stack:

    * present  iff the value is in the stack (i.e. it occurred before and
      fewer than ``assoc`` distinct values were seen since);
    * an eviction happens iff the value is absent and the stack is full;
    * the victim is the stack bottom (``assoc``-th most recent distinct).

    Each column costs O(groups * assoc) element work, so the whole walk
    is linear in records -- unlike a pairwise [L, L] occurrence tensor,
    which goes quadratic in stream length.
    """
    rows, length = values.shape
    stack = np.full((rows, assoc), -1, dtype=np.int64)
    present = np.zeros((rows, length), dtype=bool)
    evict = np.zeros((rows, length), dtype=bool)
    victim = np.full((rows, length), -1, dtype=np.int64)
    slot = np.arange(assoc)[None, :]
    shifted = np.empty_like(stack)
    matches = np.empty((rows, assoc), dtype=bool)
    # Padding cells (-1) are walked like values: they may corrupt their
    # own row's stack and emit garbage outputs, but padding only trails a
    # row -- the corrupted state is never consulted by a real access, and
    # the caller scatters back only the real positions.
    for column in range(length):
        value = values[:, column]
        np.equal(stack, value[:, None], out=matches)
        hit = matches.any(axis=1)
        depth = np.where(hit, matches.argmax(axis=1), assoc - 1)
        bottom = stack[:, assoc - 1]
        evicted = ~hit & (bottom >= 0)
        present[:, column] = hit
        evict[:, column] = evicted
        victim[:, column] = np.where(evicted, bottom, -1)
        # Rotate [0..depth] right by one and put the value on top.
        shifted[:, 0] = value
        shifted[:, 1:] = stack[:, :-1]
        stack = np.where(slot <= depth[:, None], shifted, stack)
    return present, evict, victim


def _stack_distance_scalar(values, assoc, present_out, evict_out, victim_out):
    """Exact LRU walk for streams too long for the tensor buckets."""
    lru: OrderedDict[int, None] = OrderedDict()
    for position, value in enumerate(values.tolist()):
        if value in lru:
            present_out[position] = True
            lru.move_to_end(value)
        else:
            if len(lru) >= assoc:
                victim, _ = lru.popitem(last=False)
                evict_out[position] = True
                victim_out[position] = victim
            lru[value] = None


def _resolve_l2_streams(sorted_blocks, group_key, assoc):
    """Presence/eviction/victim per record over concatenated LRU streams.

    ``sorted_blocks``/``group_key`` are the trace's block addresses
    lexsorted by (tile*num_sets + set, record index); results come back
    in the same sorted order.
    """
    total = group_key.shape[0]
    out_present = np.zeros(total, dtype=bool)
    out_evict = np.zeros(total, dtype=bool)
    out_victim = np.full(total, -1, dtype=np.int64)
    # An access to the block its stream just touched is a guaranteed hit
    # that leaves the LRU stack untouched (move-to-end of the MRU entry is
    # a no-op), so immediate repeats are resolved here and dropped before
    # the stack walk -- typically a ~30% shrink on local traces.
    fresh = np.empty(total, dtype=bool)
    fresh[0] = True
    fresh[1:] = (sorted_blocks[1:] != sorted_blocks[:-1]) | (
        group_key[1:] != group_key[:-1]
    )
    out_present[~fresh] = True
    sorted_blocks = sorted_blocks[fresh]
    group_key = group_key[fresh]

    count = group_key.shape[0]
    boundary = np.empty(count, dtype=bool)
    boundary[0] = True
    boundary[1:] = group_key[1:] != group_key[:-1]
    starts = np.flatnonzero(boundary)
    lens = np.diff(np.append(starts, count))
    group_of = np.repeat(np.arange(starts.shape[0]), lens)
    pos_in_group = np.arange(count) - starts[group_of]

    present = np.zeros(count, dtype=bool)
    evict = np.zeros(count, dtype=bool)
    victim = np.full(count, -1, dtype=np.int64)

    cap = _STREAM_BUCKETS[-1]
    selected = lens <= cap
    if selected.any():
        width = int(lens[selected].max())
        row_of_group = np.cumsum(selected) - 1
        in_matrix = selected[group_of]
        rows = row_of_group[group_of[in_matrix]]
        cols = pos_in_group[in_matrix]
        matrix = np.full((int(np.count_nonzero(selected)), width), -1, np.int64)
        matrix[rows, cols] = sorted_blocks[in_matrix]
        p, e, v = _stack_distance_tensor(matrix, assoc)
        present[in_matrix] = p[rows, cols]
        evict[in_matrix] = e[rows, cols]
        victim[in_matrix] = v[rows, cols]
    for group in np.flatnonzero(lens > cap).tolist():
        lo = int(starts[group])
        hi = lo + int(lens[group])
        _stack_distance_scalar(
            sorted_blocks[lo:hi], assoc,
            present[lo:hi], evict[lo:hi], victim[lo:hi],
        )
    fresh_idx = np.flatnonzero(fresh)
    out_present[fresh_idx] = present
    out_evict[fresh_idx] = evict
    out_victim[fresh_idx] = victim
    return out_present, out_evict, out_victim


# --------------------------------------------------------------------- #
# The kernel
# --------------------------------------------------------------------- #
def replay_static_batch(
    simulator: "TraceSimulator", trace: Trace, warmup_count: int
) -> tuple[SimulationStats, list[float]]:
    """Replay a static trace in one vectorised pass.

    Returns the same ``(total_stats, sample_cpis)`` pair as the fast
    engine's static path, bit-identical, or raises :class:`BatchFallback`
    (before mutating anything) when the closed form does not apply.
    """
    design = simulator.design
    config = design.config
    kind = type(design)
    _require(
        kind in (RNucaDesign, SharedDesign, IdealDesign),
        f"no closed-form service model for design {design.name!r}",
    )
    _require(not trace.is_dynamic, "batch kernel is static-only")

    # ----- geometry + pristine-state guards (read-only) ----- #
    tiles = design._tiles
    num_tiles = len(tiles)
    l2_sets = tiles[0].l2.num_sets
    l2_assoc = tiles[0].l2.associativity
    victim_capacity = tiles[0].l2_victim.capacity
    _require(l2_sets & (l2_sets - 1) == 0, "L2 set count not a power of two")
    for tile in tiles:
        _require(tile.l2._policy is None, "L2 replacement policy installed")
        _require(tile.l2_victim._policy is None, "victim-buffer policy installed")
        _require(len(tile.l2) == 0, "L2 array not pristine")
        _require(
            tile.l2_victim.hits == 0 and tile.l2_victim.misses == 0,
            "victim buffer not pristine",
        )
    l1_arrays = design.l1._arrays
    l1_sets = l1_arrays[0].num_sets
    l1_assoc = l1_arrays[0].associativity
    _require(l1_assoc in (1, 2), "no closed form for L1 associativity > 2")
    _require(l1_sets & (l1_sets - 1) == 0, "L1 set count not a power of two")
    _require(not design.l1._holders, "L1 tracker not pristine")

    # ----- columnar trace views ----- #
    columns = trace.columns
    core = np.asarray(columns.core)
    code = np.asarray(columns.access_type)
    instrs = np.asarray(columns.instructions)
    true_class = np.asarray(columns.true_class)
    class_table = columns.class_table
    block_shift = config.block_size.bit_length() - 1
    block = np.asarray(columns.address) >> block_shift
    n = int(block.shape[0])
    is_instr = code == INSTRUCTION_CODE
    is_write = code == STORE_CODE
    is_data = ~is_instr
    _require(int(core.max()) < num_tiles and int(core.min()) >= 0,
             "core id outside the tile range")
    # Composite (value, index) int64 sort keys must not overflow.
    span = np.int64(n + 2)
    _require(int(block.max()) < 2**62 // int(span), "address range too wide")

    # ----- classification + placement ----- #
    coarse_map = np.empty(len(class_table), dtype=np.int8)
    for label_code, label in enumerate(class_table):
        if label == "instruction":
            coarse_map[label_code] = 0
        elif label == "private":
            coarse_map[label_code] = 1
        else:  # None and every shared flavour
            coarse_map[label_code] = 2
    coarse = np.where(is_instr, np.int8(0), coarse_map[true_class])

    if kind is RNucaDesign:
        page_class, target, misclassified = _classify_rnuca(
            simulator, design, trace, core, block, is_instr, is_data,
            true_class, class_table, num_tiles,
        )
        l1_eligible = is_data & (page_class == 2)
    else:
        chip = design.chip
        target = (block >> chip._interleave_shift) & chip._interleave_mask
        misclassified = 0
        l1_eligible = is_data

    # ----- L1 dirty-owner resolution ----- #
    l1_remote = np.zeros(n, dtype=bool)
    owner = np.zeros(n, dtype=np.int64)
    data_idx = np.flatnonzero(is_data)
    if data_idx.size:
        _resolve_dirty_owners(
            data_idx, block, core, is_write, l1_eligible,
            l1_sets, l1_assoc, span, l1_remote, owner,
        )

    # ----- L2 probe resolution (uniform LRU stream per tile set) ----- #
    stream_key = target * np.int64(l2_sets) + (block & (l2_sets - 1))
    order = np.argsort(stream_key, kind="stable")
    present_s, evict_s, victim_s = _resolve_l2_streams(
        block[order], stream_key[order], l2_assoc
    )
    present = np.empty(n, dtype=bool)
    evict = np.empty(n, dtype=bool)
    victim_block = np.empty(n, dtype=np.int64)
    present[order] = present_s
    evict[order] = evict_s
    victim_block[order] = victim_s

    probe = ~l1_remote
    probe_miss = probe & ~present
    victim_hit = np.zeros(n, dtype=bool)
    if victim_capacity > 0 and probe_miss.any():
        _resolve_victim_buffers(
            probe_miss, target, block, evict, victim_block,
            num_tiles, victim_capacity, victim_hit,
        )
    offchip = probe_miss & ~victim_hit

    # ----- latency components (integer cycles, then scaled floats) ----- #
    one_way = np.asarray(design._one_way, dtype=np.int64)
    l2_hit_latency = design._l2_hit_latency
    memory = design.memory
    local = target == core
    if kind is IdealDesign:
        comp_l2 = np.full(n, l2_hit_latency, dtype=np.int64)
        comp_off = np.full(n, memory.latency_cycles, dtype=np.int64)
        comp_l1 = np.full(n, l2_hit_latency, dtype=np.int64)
    else:
        comp_l2 = l2_hit_latency + np.where(local, 0, 2 * one_way[core, target])
        controller_tiles = np.asarray(
            [c.tile_id for c in memory.controllers], dtype=np.int64
        )
        page = (block << memory._block_shift) >> memory._page_shift
        ctl = controller_tiles[page % len(memory.controllers)]
        comp_off = (
            one_way[target, ctl] + memory.latency_cycles + one_way[ctl, target]
            + np.where(local, 0, one_way[core, target])
        )
        comp_l1 = (
            one_way[core, target] + DIRECTORY_LATENCY
            + one_way[target, owner] + L1_PROBE_LATENCY + one_way[owner, core]
        )

    factors = simulator.cpi_model.stall_factors
    scaled_l2 = np.where(
        probe, comp_l2.astype(np.float64) * factors.get(L2, 1.0), 0.0
    )
    scaled_off = np.where(
        offchip, comp_off.astype(np.float64) * factors.get(OFF_CHIP, 1.0), 0.0
    )
    scaled_l1 = np.where(
        l1_remote, comp_l1.astype(np.float64) * factors.get(L1_TO_L1, 1.0), 0.0
    )
    # Per-record latency with the fast engine's in-record addition order
    # (L2 is inserted before OFF_CHIP; adding 0.0 is IEEE-exact).
    latency = (scaled_l2 + scaled_off) + scaled_l1
    busy = simulator.cpi_model.busy_cpi * instrs.astype(np.float64)

    # ----- per-window statistics ----- #
    class_masks = [coarse == k for k in range(3)]
    hit_l2 = probe & ~offchip
    l2_local = hit_l2 & local
    l2_remote = hit_l2 & ~local
    component_plan = (
        (L2, scaled_l2, probe, 0),
        (OFF_CHIP, scaled_off, offchip, 1),
        (L1_TO_L1, scaled_l1, l1_remote, 0),
    )

    total = SimulationStats()
    sample_cpis: list[float] = []
    for window in split_into_samples(n - warmup_count, simulator.num_samples):
        accumulator = SampleAccumulator(factors)
        lo = warmup_count + window.start
        hi = warmup_count + window.stop
        if hi > lo:
            _fill_window(
                accumulator, slice(lo, hi), instrs, busy, latency,
                class_masks, l2_local, l2_remote, l1_remote, offchip,
                component_plan,
            )
        sample_stats = accumulator.to_stats()
        if sample_stats.instructions:
            sample_cpis.append(sample_stats.cpi)
        total.merge(sample_stats)

    # ----- fold back the counters the result surface reads ----- #
    design.accesses += n
    design.offchip_accesses += int(np.count_nonzero(offchip))
    if kind is RNucaDesign:
        instruction_count = int(np.count_nonzero(is_instr))
        design.misclassified_accesses += misclassified
        classifier = design.policy.classifier
        classifier.instruction_accesses += instruction_count
        classifier.data_accesses += n - instruction_count
        policy = design.policy
        policy.instruction_lookups += instruction_count
        policy.private_lookups += int(np.count_nonzero(is_data & (page_class == 1)))
        policy.shared_lookups += int(np.count_nonzero(is_data & (page_class == 2)))
        policy.local_lookups += int(np.count_nonzero(local))
    return total, sample_cpis


def _classify_rnuca(
    simulator, design, trace, core, block, is_instr, is_data,
    true_class, class_table, num_tiles,
):
    """Static R-NUCA classification: warmed page class per record.

    Guards that no access could re-classify, migrate or first-touch a
    page mid-run — the conditions under which the classifier is a pure
    page -> class table for the whole trace.
    """
    _require(
        simulator.warm_os_state,
        "cold OS state would first-touch-classify pages mid-run",
    )
    policy = design.policy
    # The unique-page index and per-page access profile are pure trace
    # derivations, cached on the trace across runs (bench replays one
    # trace many times; tests replay the same trace per engine).
    unique_pages, page_index = trace.page_index(design.config.page_size)
    num_unique = unique_pages.shape[0]
    has_instr, accessor_count, sole_accessor = trace.page_profile(
        design.config.page_size
    )
    _require(
        not bool(np.any(has_instr & (accessor_count > 0))),
        "a page mixes instruction and data accesses",
    )

    entries = policy._page_entries
    accessor_list = accessor_count.tolist()
    sole_list = sole_accessor.tolist()
    instr_list = has_instr.tolist()
    unique_class = np.empty(num_unique, dtype=np.int8)
    for slot, page in enumerate(unique_pages.tolist()):
        entry = entries.get(page)
        _require(entry is not None, "page missing from the warmed page table")
        _require(not entry.poisoned, "page entry is poisoned")
        page_class = entry.page_class
        if instr_list[slot]:
            _require(
                page_class is PageClass.INSTRUCTION,
                "instruction page not INSTRUCTION-classified",
            )
            unique_class[slot] = 0
        elif page_class is PageClass.PRIVATE:
            _require(
                accessor_list[slot] == 1
                and entry.owner_cid == sole_list[slot],
                "PRIVATE page would re-classify (non-owner access)",
            )
            unique_class[slot] = 1
        elif page_class is PageClass.SHARED:
            unique_class[slot] = 2
        else:
            raise BatchFallback("data page carries an instruction class")
    page_class = unique_class[page_index]

    # Placement: rotational-interleaved cluster tables, one gather each.
    set_bits = policy._set_index_bits
    cluster_index = block >> set_bits
    instruction_members = np.asarray(policy._instruction_members, dtype=np.int64)
    shared_members = np.asarray(policy._shared_members, dtype=np.int64)
    target = np.empty(block.shape[0], dtype=np.int64)
    mask = is_instr
    target[mask] = instruction_members[
        core[mask], cluster_index[mask] & policy._instruction_mask
    ]
    mask = is_data & (page_class == 1)
    target[mask] = core[mask]
    mask = is_data & (page_class == 2)
    target[mask] = shared_members[cluster_index[mask] & policy._shared_mask]

    # Misclassification against ground truth (same mapping as
    # RNucaDesign._expect_class_for, None resolved per access kind).
    expected_data = np.empty(len(class_table), dtype=np.int8)
    expected_instr = np.empty(len(class_table), dtype=np.int8)
    for label_code, label in enumerate(class_table):
        if label is None:
            expected_data[label_code] = 2
            expected_instr[label_code] = 0
        elif label == "instruction":
            expected_data[label_code] = expected_instr[label_code] = 0
        elif label == "private":
            expected_data[label_code] = expected_instr[label_code] = 1
        else:
            expected_data[label_code] = expected_instr[label_code] = 2
    expected = np.where(
        is_instr, expected_instr[true_class], expected_data[true_class]
    )
    misclassified = int(np.count_nonzero(page_class != expected))
    return page_class, target, misclassified


def _resolve_dirty_owners(
    data_idx, block, core, is_write, eligible,
    l1_sets, l1_assoc, span, l1_remote_out, owner_out,
):
    """Mark the records serviced by an L1-to-L1 transfer.

    A record is a *candidate* when its previous same-block data access
    was a write by another core (the only way ``dirty_owner`` can find a
    MODIFIED copy) and the design consults the directory for it.  The
    candidate resolves to a transfer iff the writer's copy is still
    resident, per the fill-stream closed form described in the module
    docstring.
    """
    data_block = block[data_idx]
    data_core = core[data_idx]
    data_write = is_write[data_idx]

    # data_idx ascends, so a stable single-key sort orders ties by time
    # (equivalent to lexsort((data_idx, data_block)) at half the cost).
    by_block = np.argsort(data_block, kind="stable")
    sb = data_block[by_block]
    si = data_idx[by_block]
    sc = data_core[by_block]
    sw = data_write[by_block]
    candidate = np.zeros(si.shape[0], dtype=bool)
    candidate[1:] = (sb[1:] == sb[:-1]) & sw[:-1] & (sc[1:] != sc[:-1])
    candidate &= eligible[si]
    positions = np.flatnonzero(candidate)
    if not positions.size:
        return
    query_idx = si[positions]
    write_idx = si[positions - 1]
    writer = sc[positions - 1]
    query_block = sb[positions]

    # Per-(core, L1 set) fill streams over the data records.
    l1_mask = l1_sets - 1
    fill_key = data_core * np.int64(l1_sets) + (data_block & l1_mask)
    by_stream = np.argsort(fill_key, kind="stable")
    fk = fill_key[by_stream]
    fp = data_idx[by_stream]
    fv = data_block[by_stream]
    group_key = fk * span + fp

    query_key = (writer * np.int64(l1_sets) + (query_block & l1_mask)) * span
    # side="right" at k == side="left" at k+1 for integer keys, so both
    # window edges resolve in a single searchsorted call.
    edges = np.searchsorted(
        group_key,
        np.concatenate((query_key + write_idx + 1, query_key + query_idx)),
    )
    lo = edges[: query_key.shape[0]]
    hi = edges[query_key.shape[0]:]
    fills_between = hi - lo
    if l1_assoc == 1:
        # Direct-mapped: any in-window fill replaces the writer's copy.
        evicted = fills_between > 0
    else:
        # 2-way: evicted iff some adjacent in-window fill pair has
        # distinct values with no interposed remote write to the earlier
        # one (which would free the companion way instead).
        write_pos = np.flatnonzero(data_write)
        write_key = np.sort(
            data_block[write_pos] * span + data_idx[write_pos]
        )
        if fk.shape[0] >= 2:
            pair_base = fv[:-1] * span
            count = pair_base.shape[0]
            inval = np.searchsorted(
                write_key,
                np.concatenate((pair_base + fp[:-1] + 1, pair_base + fp[1:])),
            )
            unsafe = (
                (fk[1:] == fk[:-1])
                & (fv[1:] != fv[:-1])
                & (inval[:count] == inval[count:])
            )
        else:
            unsafe = np.zeros(0, dtype=bool)
        unsafe_prefix = np.concatenate(([0], np.cumsum(unsafe)))
        evicted = np.zeros(positions.shape[0], dtype=bool)
        pairs = fills_between >= 2
        evicted[pairs] = (
            unsafe_prefix[hi[pairs] - 1] - unsafe_prefix[lo[pairs]]
        ) > 0
    resident = ~evicted
    l1_remote_out[query_idx[resident]] = True
    owner_out[query_idx] = writer


def _resolve_victim_buffers(
    probe_miss, target, block, evict, victim_block,
    num_tiles, capacity, victim_hit_out,
):
    """Replay each tile's victim FIFO over the probe-missing records.

    Only probe misses touch the buffer (extract, then park the L2
    victim when the refill evicts on the off-chip path); L1-to-L1
    transfers and L2 hits never do.  Victim-hit refills discard their
    L2 eviction, so nothing is parked on that branch — exactly the
    design's service code.
    """
    miss_idx = np.flatnonzero(probe_miss)
    fifos: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(num_tiles)]
    for tile_id, address, evicts, parked, record in zip(
        target[miss_idx].tolist(),
        block[miss_idx].tolist(),
        evict[miss_idx].tolist(),
        victim_block[miss_idx].tolist(),
        miss_idx.tolist(),
        strict=True,
    ):
        fifo = fifos[tile_id]
        if address in fifo:
            del fifo[address]
            victim_hit_out[record] = True
        elif evicts:
            if parked in fifo:
                fifo.move_to_end(parked)
            else:
                if len(fifo) >= capacity:
                    fifo.popitem(last=False)
                fifo[parked] = None


def _fill_window(
    accumulator, window, instrs, busy, latency,
    class_masks, l2_local, l2_remote, l1_remote, offchip,
    component_plan,
):
    """Populate one ``SampleAccumulator`` from the precomputed arrays.

    Every float is produced by the same left-to-right addition sequence
    as the fast engine's fused loop: ``np.cumsum(...)[-1]`` is that
    fold, and the interspersed zeros for records lacking a component
    are IEEE-exact no-ops.  Dict insertion orders (components by first
    appearance with L2 before OFF_CHIP inside a record; classes by
    first appearance) are replicated so ``to_stats`` packs identically.
    """
    accumulator.instructions = int(instrs[window].sum())
    accumulator.accesses = window.stop - window.start
    accumulator.busy_cycles = float(np.cumsum(busy[window])[-1])
    shared_mask = class_masks[2][window]
    accumulator.instruction_accesses = int(
        np.count_nonzero(class_masks[0][window])
    )
    accumulator.private_accesses = int(np.count_nonzero(class_masks[1][window]))
    accumulator.shared_accesses = int(np.count_nonzero(shared_mask))
    accumulator.l2_local_hits = int(np.count_nonzero(l2_local[window]))
    accumulator.l2_remote_hits = int(np.count_nonzero(l2_remote[window]))
    l1_remote_mask = l1_remote[window]
    accumulator.l1_remote_hits = int(np.count_nonzero(l1_remote_mask))
    offchip_count = int(np.count_nonzero(offchip[window]))
    accumulator.offchip_services = offchip_count
    accumulator.offchip_accesses = offchip_count

    ordered = []
    for component, scaled, mask, in_record_rank in component_plan:
        sliced = mask[window]
        if sliced.any():
            ordered.append((int(sliced.argmax()), in_record_rank, component, scaled))
    ordered.sort(key=lambda item: item[:2])
    for _, _, component, scaled in ordered:
        accumulator.stall_by_component[component] = float(
            np.cumsum(scaled[window])[-1]
        )

    classes = []
    for class_code, name in enumerate(_CLASS_NAMES):
        sliced = class_masks[class_code][window]
        if sliced.any():
            classes.append((int(sliced.argmax()), class_code, name))
    classes.sort(key=lambda item: item[0])
    for _, class_code, name in classes:
        class_mask = class_masks[class_code][window]
        ordered = []
        for component, scaled, mask, in_record_rank in component_plan:
            joint = class_mask & mask[window]
            if joint.any():
                ordered.append(
                    (int(joint.argmax()), in_record_rank, component, scaled)
                )
        ordered.sort(key=lambda item: item[:2])
        per_class: dict[str, float] = {}
        for _, _, component, scaled in ordered:
            per_class[component] = float(
                np.cumsum(np.where(class_mask, scaled[window], 0.0))[-1]
            )
        accumulator.class_components[name] = per_class

    # Shared-service split: L1-to-L1 vs interleaved (the designs the
    # kernel covers never set outcome.coherence).
    shared_l1 = shared_mask & l1_remote_mask
    shared_interleaved = shared_mask & ~l1_remote_mask
    accumulator.l1_to_l1_count = int(np.count_nonzero(shared_l1))
    accumulator.interleaved_count = int(np.count_nonzero(shared_interleaved))
    accumulator.l1_to_l1_cycles = float(
        np.cumsum(np.where(shared_l1, latency[window], 0.0))[-1]
    )
    accumulator.interleaved_cycles = float(
        np.cumsum(np.where(shared_interleaved, latency[window], 0.0))[-1]
    )
