"""The seed (pre-fast-path) replay engine, preserved verbatim.

This module snapshots how the simulation hot path worked before the columnar
fast engine: one frozen-dataclass access object per trace record, a fresh
outcome object per access, and the allocation-heavy helper APIs
(:meth:`RNucaPolicy.lookup` building ``RNucaLookup``/``PlacementDecision``/
``ClassificationEvent`` wrappers, :meth:`CacheArray.lookup`/:meth:`insert`
returning ``LookupResult``/``EvictionResult``).  Two things depend on it:

* the **equivalence guard tests**, which prove the fast columnar engine
  reproduces this path's ``SimulationStats``/CPI bit for bit — i.e. the
  optimisation changed no numbers; and
* ``repro bench``, which reports the fast engine's records/sec against this
  path as the pre-fast-path baseline.

The service bodies below are copied from the seed implementations of the
five designs and must not be "optimised": their cost profile *is* the
baseline.  They run against the same live design/chip instances as the fast
path (designs are driven through public attributes only), so both engines
exercise identical cache, directory, TLB and page-table state machines.
If a design's behaviour is deliberately changed in the future, its seed
body here must be updated to match (the equivalence suite will flag the
divergence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.block import AccessType, CoherenceState
from repro.designs.asr import AsrDesign
from repro.designs.base import (
    DIRECTORY_LATENCY,
    L1_PROBE_LATENCY,
    L1_TO_L1,
    L2,
    OTHER,
    RECLASSIFICATION,
    CacheDesign,
)
from repro.designs.ideal import IdealDesign
from repro.designs.private import PrivateDesign
from repro.designs.rnuca_design import RNucaDesign
from repro.designs.shared import SharedDesign
from repro.osmodel.classifier import ClassificationEvent
from repro.osmodel.page_table import PageClass


@dataclass(frozen=True)
class SeedL2Access:
    """The seed engine's access record: a frozen dataclass with properties.

    Field-for-field the original ``L2Access``; the fast path replaced it
    with a reusable mutable object carrying precomputed flags.
    """

    core: int
    block_address: int
    byte_address: int
    access_type: AccessType
    thread_id: int = 0
    true_class: str | None = None

    @property
    def is_instruction(self) -> bool:
        return self.access_type is AccessType.INSTRUCTION

    @property
    def is_write(self) -> bool:
        return self.access_type is AccessType.STORE

    @property
    def data_class(self) -> str:
        if self.true_class is None:
            return "instruction" if self.is_instruction else "shared"
        if self.true_class.startswith("shared"):
            return "shared"
        return self.true_class


@dataclass
class SeedAccessOutcome:
    """The seed engine's outcome object (one fresh instance per access)."""

    components: dict[str, float] = field(default_factory=dict)
    hit_where: str = "l2_local"
    target_slice: int = 0
    offchip: bool = False
    coherence: bool = False
    page_class: PageClass | None = None

    @property
    def latency(self) -> float:
        return sum(self.components.values())

    def add(self, component: str, cycles: float) -> None:
        if cycles:
            self.components[component] = self.components.get(component, 0.0) + cycles


def to_seed_access(record, block_shift: int) -> SeedL2Access:
    """The seed ``TraceSimulator._to_access``."""
    return SeedL2Access(
        core=record.core,
        block_address=record.address >> block_shift,
        byte_address=record.address,
        access_type=record.access_type,
        thread_id=record.thread,
        true_class=record.true_class,
    )


def seed_access(design: CacheDesign, access: SeedL2Access) -> SeedAccessOutcome:
    """The seed ``CacheDesign.access`` wrapper (counters, service, L1 fill)."""
    design.accesses += 1
    outcome = _service_for(design)(design, access)
    if outcome.offchip:
        design.offchip_accesses += 1
    if not access.is_instruction:
        victim = _seed_l1_fill(design, access.core, access.block_address, access.is_write)
        if victim is not None:
            design.on_l1_eviction(access.core, victim)
    return outcome


def _seed_l1_fill(design: CacheDesign, core: int, block_address: int, write: bool):
    """The seed ``L1Tracker.fill`` (via ``CacheArray.insert``/EvictionResult)."""
    l1 = design.l1
    state = CoherenceState.MODIFIED if write else CoherenceState.SHARED
    result = l1._arrays[core].insert(block_address, state=state, dirty=write)
    l1._holders.setdefault(block_address, {})[core] = state
    victim = result.victim
    if victim is not None:
        l1._forget(core, victim.address)
    return victim


# --------------------------------------------------------------------- #
# Seed service bodies (one per design)
# --------------------------------------------------------------------- #
def _service_shared(design: SharedDesign, access: SeedL2Access) -> SeedAccessOutcome:
    outcome = SeedAccessOutcome()
    home = design.chip.home_slice(access.block_address)
    outcome.target_slice = home
    tile = design.chip.tile(home)

    if not access.is_instruction:
        owner = design.l1.dirty_owner(access.block_address, access.core)
        if owner is not None:
            design.remote_l1_transfer(access, home, owner, outcome)
            tile.l2.insert(
                access.block_address, state=CoherenceState.OWNED, dirty=True
            )
            return outcome

    network = design.network_round_trip(access.core, home)
    lookup = tile.l2.lookup(access.block_address, write=access.is_write)
    if lookup.hit:
        outcome.add(L2, network + design.l2_hit_latency())
        outcome.hit_where = "l2_local" if home == access.core else "l2_remote"
    else:
        victim_hit = tile.l2_victim.extract(access.block_address)
        if victim_hit is not None:
            tile.l2.insert(
                access.block_address, state=victim_hit.state, dirty=victim_hit.dirty
            )
            outcome.add(L2, network + design.l2_hit_latency())
            outcome.hit_where = "l2_local" if home == access.core else "l2_remote"
        else:
            outcome.add(L2, network + design.l2_hit_latency())
            design.offchip_fetch(access, home, outcome)
            state = (
                CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED
            )
            result = tile.l2.insert(
                access.block_address, state=state, dirty=access.is_write
            )
            if result.victim is not None:
                displaced = tile.l2_victim.insert(result.victim)
                if displaced is not None and displaced.dirty:
                    design.memory.access(tile.tile_id, displaced.address, write=True)

    if access.is_write:
        design.l1.invalidate_all_remote(access.block_address, exclude=access.core)
    return outcome


def _service_rnuca(design: RNucaDesign, access: SeedL2Access) -> SeedAccessOutcome:
    outcome = SeedAccessOutcome()
    lookup = design.policy.lookup(
        access.core,
        access.byte_address,
        instruction=access.is_instruction,
        thread_id=access.thread_id,
        shootdown=design._shootdown,
    )
    target = lookup.target_slice
    outcome.target_slice = target
    outcome.page_class = lookup.page_class

    # Seed _account_os_event (event-object based).
    event = lookup.classification
    if event.latency_cycles:
        if event.kind in (
            ClassificationEvent.RECLASSIFY_TO_SHARED,
            ClassificationEvent.MIGRATION_REOWN,
        ):
            outcome.add(RECLASSIFICATION, event.latency_cycles)
        elif event.kind == ClassificationEvent.FIRST_TOUCH:
            outcome.add(OTHER, event.latency_cycles)

    # Seed _track_misclassification (data_class property based).
    truth = access.data_class
    if truth == "instruction":
        expected = PageClass.INSTRUCTION
    elif truth == "private":
        expected = PageClass.PRIVATE
    else:
        expected = PageClass.SHARED
    if lookup.page_class is not expected:
        design.misclassified_accesses += 1

    if lookup.page_class is PageClass.SHARED and not access.is_instruction:
        owner = design.l1.dirty_owner(access.block_address, access.core)
        if owner is not None:
            design.remote_l1_transfer(access, target, owner, outcome)
            design.chip.tile(target).l2.insert(
                access.block_address, state=CoherenceState.OWNED, dirty=True
            )
            return outcome

    tile = design.chip.tile(target)
    network = design.network_round_trip(access.core, target)
    result = tile.l2.lookup(access.block_address, write=access.is_write)
    if result.hit:
        outcome.add(L2, network + design.l2_hit_latency())
        outcome.hit_where = "l2_local" if target == access.core else "l2_remote"
    else:
        victim_hit = tile.l2_victim.extract(access.block_address)
        if victim_hit is not None:
            tile.l2.insert(
                access.block_address, state=victim_hit.state, dirty=victim_hit.dirty
            )
            outcome.add(L2, network + design.l2_hit_latency())
            outcome.hit_where = "l2_local" if target == access.core else "l2_remote"
        else:
            outcome.add(L2, network + design.l2_hit_latency())
            design.offchip_fetch(access, target, outcome)
            state = (
                CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED
            )
            result = tile.l2.insert(
                access.block_address,
                state=state,
                dirty=access.is_write,
                metadata={"class": lookup.page_class.value},
            )
            if result.victim is not None:
                displaced = tile.l2_victim.insert(result.victim)
                if displaced is not None and displaced.dirty:
                    design.memory.access(tile.tile_id, displaced.address, write=True)

    if access.is_write:
        design.l1.invalidate_all_remote(access.block_address, exclude=access.core)
    return outcome


def _service_private(design: PrivateDesign, access: SeedL2Access) -> SeedAccessOutcome:
    outcome = SeedAccessOutcome()
    core = access.core
    local_tile = design.chip.tile(core)
    outcome.target_slice = core

    lookup = local_tile.l2.lookup(access.block_address, write=access.is_write)
    if lookup.hit:
        outcome.add(L2, design.l2_hit_latency())
        outcome.hit_where = "l2_local"
        if access.is_write:
            design._invalidate_remote_copies(access)
        return outcome

    victim_hit = local_tile.l2_victim.extract(access.block_address)
    if victim_hit is not None:
        _seed_fill_local(design, core, access, victim_hit.state, victim_hit.dirty)
        outcome.add(L2, design.l2_hit_latency())
        outcome.hit_where = "l2_local"
        if access.is_write:
            design._invalidate_remote_copies(access)
        return outcome

    outcome.add(L2, design.l2_hit_latency())  # the local probe that missed
    dir_home = design.chip.home_slice(access.block_address)
    directory = design.chip.tile(dir_home).directory
    to_directory = design.network.one_way_latency(core, dir_home) + DIRECTORY_LATENCY
    directory.peek(access.block_address)  # seed probed the entry here

    remote_l2_holder = design._find_remote_l2_holder(access.block_address, core)
    remote_l1_owner = design.l1.dirty_owner(access.block_address, core)

    if remote_l1_owner is not None:
        latency = (
            to_directory
            + design.network.one_way_latency(dir_home, remote_l1_owner)
            + design.l2_hit_latency()
            + L1_PROBE_LATENCY
            + design.network.one_way_latency(remote_l1_owner, core)
        )
        outcome.add(L1_TO_L1, latency)
        outcome.hit_where = "l1_remote"
        outcome.coherence = True
        if access.is_write:
            design.l1.invalidate_all_remote(access.block_address, exclude=core)
            design._invalidate_remote_l2_copies(access.block_address, exclude=core)
        else:
            design.l1.downgrade(remote_l1_owner, access.block_address)
        _seed_fill_local(
            design,
            core,
            access,
            CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED,
            access.is_write,
        )
        directory.record_write(
            access.block_address, core
        ) if access.is_write else directory.record_read(access.block_address, core)
        return outcome

    if remote_l2_holder is not None:
        latency = (
            to_directory
            + design.network.one_way_latency(dir_home, remote_l2_holder)
            + design.l2_hit_latency()
            + design.network.one_way_latency(remote_l2_holder, core)
        )
        outcome.add(L2, latency)
        outcome.hit_where = "l2_remote"
        outcome.coherence = True
        if access.is_write:
            design._invalidate_remote_l2_copies(access.block_address, exclude=core)
            design.l1.invalidate_all_remote(access.block_address, exclude=core)
            directory.record_write(access.block_address, core)
        else:
            directory.record_read(access.block_address, core)
        _seed_fill_local(
            design,
            core,
            access,
            CoherenceState.MODIFIED if access.is_write else CoherenceState.SHARED,
            access.is_write,
        )
        return outcome

    outcome.add(L2, to_directory)
    design.offchip_fetch(access, dir_home, outcome)
    outcome.coherence = False
    if access.is_write:
        directory.record_write(access.block_address, core)
    else:
        directory.record_read(access.block_address, core)
    _seed_fill_local(
        design,
        core,
        access,
        CoherenceState.MODIFIED if access.is_write else CoherenceState.EXCLUSIVE,
        access.is_write,
    )
    return outcome


def _seed_fill_local(
    design: PrivateDesign,
    core: int,
    access: SeedL2Access,
    state: CoherenceState,
    dirty: bool,
) -> None:
    """The seed ``PrivateDesign._fill_local`` (insert + EvictionResult)."""
    tile = design.chip.tile(core)
    result = tile.l2.insert(access.block_address, state=state, dirty=dirty)
    directory = design.chip.tile(design.chip.home_slice(access.block_address)).directory
    if access.is_write:
        directory.record_write(access.block_address, core)
    else:
        directory.record_read(access.block_address, core)
    if result.victim is not None:
        design._handle_eviction(tile.tile_id, tile.l2, result.victim)


def _service_asr(design: AsrDesign, access: SeedL2Access) -> SeedAccessOutcome:
    outcome = _service_private(design, access)
    if outcome.hit_where == "l2_local":
        block = design.chip.tile(access.core).l2.peek(access.block_address)
        if block is not None and block.metadata.get("asr_replica"):
            design._replica_hits += 1
    return outcome


def _service_for(design: CacheDesign):
    """Resolve the seed service body for a design (subclass order matters)."""
    if isinstance(design, RNucaDesign):
        return _service_rnuca
    if isinstance(design, AsrDesign):
        return _service_asr
    if isinstance(design, PrivateDesign):
        return _service_private
    if isinstance(design, (IdealDesign, SharedDesign)):
        return _service_shared
    raise TypeError(
        f"no seed replay path for {type(design).__name__}; "
        "run it through the fast engine instead"
    )
