"""The trace-driven simulation engine.

The engine replays an L2 reference trace through one cache design on one
tiled chip, converts each access's latency into CPI contributions with the
:class:`~repro.sim.latency.CpiModel`, and collects
:class:`~repro.sim.stats.SimulationStats`.  A warm-up prefix of the trace is
replayed without measurement (caches, directories, TLBs and OS page tables
warm up), mirroring the paper's checkpoint-with-warmed-state methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design
from repro.designs.base import CacheDesign, L2Access
from repro.errors import SimulationError
from repro.sim.latency import CpiModel
from repro.sim.sampling import ConfidenceInterval, sample_mean, split_into_samples
from repro.sim.stats import SimulationStats
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import WorkloadSpec, get_workload
from repro.workloads.trace import Trace

#: Default number of L2 references simulated per (workload, design) run.
DEFAULT_TRACE_LENGTH = 60_000

#: Default fraction of the trace used to warm caches before measurement.
DEFAULT_WARMUP_FRACTION = 0.25

#: Number of measurement samples for confidence intervals.
DEFAULT_NUM_SAMPLES = 8


def warm_page_tables(design: CacheDesign, trace: Trace) -> int:
    """Prime the OS page table with each page's steady-state classification.

    The paper launches measurements from checkpoints with warmed OS page
    tables (Section 5.1), so pages that are genuinely shared are already
    classified shared when measurement begins.  Without this, a short trace
    charges R-NUCA one private->shared re-classification per shared page
    right inside the measurement window, which is a cold-start artefact
    rather than steady-state behaviour.

    Only designs exposing an R-NUCA ``policy`` attribute are affected.
    Returns the number of pages primed.
    """
    policy = getattr(design, "policy", None)
    if policy is None:
        return 0
    data_cores: dict[int, set[int]] = {}
    instruction_pages: set[int] = set()
    for record in trace.records:
        page = policy.page_number(record.address)
        if record.is_instruction:
            instruction_pages.add(page)
        else:
            data_cores.setdefault(page, set()).add(record.core)
    page_table = policy.classifier.page_table
    for page, cores in data_cores.items():
        entry = page_table.get_or_create(page)
        if len(cores) > 1:
            entry.mark_shared()
        else:
            entry.mark_private(next(iter(cores)))
    for page in instruction_pages - set(data_cores):
        page_table.get_or_create(page).mark_instruction()
    return len(data_cores) + len(instruction_pages - set(data_cores))


@dataclass
class SimulationResult:
    """Everything measured for one (workload, design) pair."""

    workload: str
    design: str
    design_letter: str
    stats: SimulationStats
    cpi_confidence: Optional[ConfidenceInterval] = None
    metadata: dict = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.stats.cpi

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def cpi_breakdown(self) -> dict[str, float]:
        return self.stats.cpi_breakdown()

    def normalized_breakdown(self, baseline_cpi: float) -> dict[str, float]:
        """CPI breakdown normalised to another design's total CPI (Fig. 7)."""
        if baseline_cpi <= 0:
            raise SimulationError("baseline CPI must be positive")
        return {
            component: value / baseline_cpi
            for component, value in self.cpi_breakdown().items()
        }

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Throughput improvement relative to a baseline design."""
        if self.cpi == 0:
            raise SimulationError("cannot compute speedup with zero CPI")
        return baseline.cpi / self.cpi - 1.0

    def to_dict(self) -> dict:
        """JSON-serializable representation, inverse of :meth:`from_dict`."""
        return {
            "workload": self.workload,
            "design": self.design,
            "design_letter": self.design_letter,
            "stats": self.stats.to_dict(),
            "cpi_confidence": (
                self.cpi_confidence.to_dict() if self.cpi_confidence else None
            ),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        confidence = data.get("cpi_confidence")
        return cls(
            workload=data["workload"],
            design=data["design"],
            design_letter=data["design_letter"],
            stats=SimulationStats.from_dict(data["stats"]),
            cpi_confidence=(
                ConfidenceInterval.from_dict(confidence) if confidence else None
            ),
            metadata=dict(data.get("metadata", {})),
        )


class TraceSimulator:
    """Replays one trace through one design."""

    def __init__(
        self,
        design: CacheDesign,
        cpi_model: CpiModel,
        *,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
        num_samples: int = DEFAULT_NUM_SAMPLES,
        warm_os_state: bool = True,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError("warmup_fraction must be within [0, 1)")
        self.design = design
        self.cpi_model = cpi_model
        self.warmup_fraction = warmup_fraction
        self.num_samples = num_samples
        self.warm_os_state = warm_os_state

    def run(self, trace: Trace) -> SimulationResult:
        """Replay the trace and return the measured result."""
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        warmup_count = int(len(trace) * self.warmup_fraction)
        measured_records = trace.records[warmup_count:]
        if not measured_records:
            raise SimulationError("warm-up consumed the entire trace")

        # Warm-up phase: prime OS page tables, then replay without measuring.
        if self.warm_os_state:
            warm_page_tables(self.design, trace)
        for record in trace.records[:warmup_count]:
            self.design.access(self._to_access(record))

        # Measurement phase, split into samples for confidence intervals.
        total = SimulationStats()
        sample_cpis: list[float] = []
        for window in split_into_samples(len(measured_records), self.num_samples):
            sample_stats = SimulationStats()
            for record in measured_records[window]:
                access = self._to_access(record)
                outcome = self.design.access(access)
                self.cpi_model.apply_overlap(outcome)
                sample_stats.record(record, outcome, self.cpi_model.busy_cycles(record))
            if sample_stats.instructions:
                sample_cpis.append(sample_stats.cpi)
            total.merge(sample_stats)

        confidence = sample_mean(sample_cpis) if sample_cpis else None
        metadata = {
            "trace_length": len(trace),
            "warmup_records": warmup_count,
            "offchip_rate": self.design.offchip_rate,
        }
        if hasattr(self.design, "misclassification_rate"):
            metadata["misclassification_rate"] = self.design.misclassification_rate
        if hasattr(self.design, "allocation_probability"):
            metadata["asr_allocation_probability"] = self.design.allocation_probability
        return SimulationResult(
            workload=trace.workload,
            design=self.design.name,
            design_letter=self.design.short_name,
            stats=total,
            cpi_confidence=confidence,
            metadata=metadata,
        )

    def _to_access(self, record) -> L2Access:
        block_shift = self.design.config.block_size.bit_length() - 1
        return L2Access(
            core=record.core,
            block_address=record.address >> block_shift,
            byte_address=record.address,
            access_type=record.access_type,
            thread_id=record.thread,
            true_class=record.true_class,
        )


def _resolve_spec(workload: str | WorkloadSpec) -> WorkloadSpec:
    return workload if isinstance(workload, WorkloadSpec) else get_workload(workload)


def simulate_workload(
    workload: str | WorkloadSpec,
    design: str,
    *,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    trace: Optional[Trace] = None,
    **design_kwargs,
) -> SimulationResult:
    """End-to-end convenience: build chip + trace + design and simulate.

    ``design`` is a letter ("P", "A", "S", "R", "I") or a long name
    ("private", "asr", "shared", "rnuca", "ideal").  The system configuration
    defaults to the paper's machine for the workload's category, scaled by
    ``scale`` (the same factor applied to the synthetic working sets).
    """
    spec = _resolve_spec(workload)
    if config is None:
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    if trace is None:
        generator = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale)
        trace = generator.generate(num_records)
    chip = TiledChip(config)
    design_instance = build_design(design, chip, **design_kwargs)
    simulator = TraceSimulator(
        design_instance,
        CpiModel.for_workload(spec),
        warmup_fraction=warmup_fraction,
    )
    result = simulator.run(trace)
    result.metadata["scale"] = scale
    result.metadata["config"] = config.name
    result.metadata["seed"] = seed
    return result


def simulate_best_asr(
    workload: str | WorkloadSpec,
    *,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    config: Optional[SystemConfig] = None,
    trace: Optional[Trace] = None,
    include_adaptive: bool = True,
) -> SimulationResult:
    """Run the six ASR variants and return the best one (paper Section 5.1)."""
    spec = _resolve_spec(workload)
    if config is None:
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    if trace is None:
        generator = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale)
        trace = generator.generate(num_records)
    probabilities: list[Optional[float]] = [0.0, 0.25, 0.5, 0.75, 1.0]
    if include_adaptive:
        probabilities.insert(0, None)
    best: Optional[SimulationResult] = None
    for probability in probabilities:
        kwargs = {} if probability is None else {"allocation_probability": probability}
        result = simulate_workload(
            spec,
            "A",
            num_records=num_records,
            scale=scale,
            seed=seed,
            config=config,
            trace=trace,
            **kwargs,
        )
        if best is None or result.cpi < best.cpi:
            best = result
    assert best is not None
    best.metadata["asr_variants_evaluated"] = len(probabilities)
    return best
