"""The trace-driven simulation engine.

The engine replays an L2 reference trace through one cache design on one
tiled chip, converts each access's latency into CPI contributions with the
:class:`~repro.sim.latency.CpiModel`, and collects
:class:`~repro.sim.stats.SimulationStats`.  A warm-up prefix of the trace is
replayed without measurement (caches, directories, TLBs and OS page tables
warm up), mirroring the paper's checkpoint-with-warmed-state methodology.

Three replay engines produce numerically identical results:

``fast`` (the default)
    Reads the trace's columnar representation directly and reuses a single
    mutable :class:`~repro.designs.base.L2Access`/:class:`AccessOutcome`
    pair, with block/page numbers precomputed once per trace and statistics
    accumulated into flat per-sample counters
    (:class:`~repro.sim.stats.SampleAccumulator`).

``batch``
    The vectorised kernel (:mod:`repro.sim.batch`): whole static runs
    classified, placed and probed as numpy array math, bit-identical to
    the fast engine.  Designs or traces outside its closed form (and
    dynamic traces, which replay span by span between events) fall back
    to the fast path transparently, so ``batch`` is always safe to select.

``reference``
    The seed implementation: one :class:`TraceRecord` and one fresh
    access/outcome object per reference.  Kept as the equivalence baseline
    and as the denominator of ``repro bench``.  Event-carrying traces
    replay through the same span-splitting machinery as the fast engine
    (:meth:`TraceSimulator._replay_reference_dynamic`), so the oracle
    covers dynamics end-to-end.

Select an engine per :class:`TraceSimulator` (``engine=...``), per call
(``run(trace, engine=...)``), or process-wide via the ``RNUCA_ENGINE``
environment variable.

With a :class:`~repro.dynamics.adaptive.AdaptiveScheduler` attached
(``scheduler=...``), the fast engine closes a feedback loop: per-window
per-core pressure flows engine→scheduler and migration decisions flow
scheduler→engine, deterministically (see
:meth:`TraceSimulator._replay_fast_adaptive`).  ``scheduler=None`` (or the
name ``"fixed"``) replays through the unmodified open-loop paths.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field

import numpy as np

from repro import knobs
from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design
from repro.designs.base import AccessOutcome, CacheDesign, L2Access
from repro.dynamics.adaptive import AdaptiveScheduler, build_scheduler
from repro.dynamics.generator import DynamicTraceGenerator
from repro.dynamics.scenarios import is_dynamic_workload, resolve_dynamic
from repro.dynamics.spec import DynamicWorkloadSpec
from repro.errors import SimulationError
from repro.sim.batch import BatchFallback, replay_static_batch
from repro.sim.latency import CpiModel
from repro.sim.sampling import ConfidenceInterval, sample_mean, split_into_samples
from repro.sim.seed_path import seed_access, to_seed_access
from repro.sim.stats import SampleAccumulator, SimulationStats
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import WorkloadSpec, get_workload
from repro.workloads.store import TraceKey, TraceStore
from repro.workloads.trace import (
    INSTRUCTION_CODE,
    MIGRATION_EVENT,
    NO_THREAD,
    PHASE_EVENT,
    STORE_CODE,
    Trace,
)

#: Default number of L2 references simulated per (workload, design) run.
DEFAULT_TRACE_LENGTH = 60_000

#: Default fraction of the trace used to warm caches before measurement.
DEFAULT_WARMUP_FRACTION = 0.25

#: Number of measurement samples for confidence intervals.
DEFAULT_NUM_SAMPLES = 8

#: Environment variable selecting the replay engine
#: ("fast", "batch" or "reference").
ENGINE_ENV = knobs.ENGINE.name

#: Known replay engines.
ENGINES = ("fast", "batch", "reference")


def default_engine() -> str:
    """Replay engine from ``RNUCA_ENGINE``, defaulting to the fast path.

    The value is returned unvalidated; :class:`TraceSimulator` rejects
    unknown engines, so a typo in the environment variable fails loudly
    instead of silently running the fast path.
    """
    return knobs.engine()


def warm_page_tables(design: CacheDesign, trace: Trace) -> int:
    """Prime the OS page table with each page's steady-state classification.

    The paper launches measurements from checkpoints with warmed OS page
    tables (Section 5.1), so pages that are genuinely shared are already
    classified shared when measurement begins.  Without this, a short trace
    charges R-NUCA one private->shared re-classification per shared page
    right inside the measurement window, which is a cold-start artefact
    rather than steady-state behaviour.  (Dynamic traces use
    :func:`warm_page_tables_dynamic` instead, which derives sharing from
    thread identity so schedule-created sharing stays undiscovered.)

    Only designs exposing an R-NUCA ``policy`` attribute are affected.
    Returns the number of pages primed.  The per-page classification is
    computed from the trace columns in bulk (the same result as walking the
    records one at a time, derived once per trace instead of per design).
    """
    policy = getattr(design, "policy", None)
    if policy is None:
        return 0
    page_table = policy.classifier.page_table
    page_size = design.config.page_size
    unique_pages, _ = trace.page_index(page_size)
    instruction_touched, accessor_count, sole_accessor = trace.page_profile(
        page_size
    )
    for page, instr, count, owner in zip(
        unique_pages.tolist(),
        instruction_touched.tolist(),
        accessor_count.tolist(),
        sole_accessor.tolist(),
        strict=True,
    ):
        entry = page_table.get_or_create(page)
        if count:
            # Data rule wins when a page sees both access kinds (the
            # legacy walk marked such pages by their data sharing too).
            if count > 1:
                entry.mark_shared()
            else:
                entry.mark_private(owner)
        elif instr:
            entry.mark_instruction()
    return int(unique_pages.size)


def warm_page_tables_dynamic(design: CacheDesign, trace: Trace) -> int:
    """Prime the OS page table for a dynamic (event-carrying) trace.

    The static rule (a page touched by two *cores* anywhere in the trace is
    shared) would classify the dynamics away before replay begins: a
    migrated thread touches its private pages from two cores, and an onset
    region is touched by many cores once sharing starts, so both would be
    primed shared and the engine would never observe a migration re-own or
    a private->shared re-classification.  Instead, sharing is derived from
    **thread identity**: a page touched by more than one thread is
    steady-state shared (schedule events never create new thread-sharing
    except at onset regions, which the generator names in
    ``trace.metadata["onset_pages"]`` and which stay private to their first
    toucher); a single-thread page is primed private to the first core (in
    record order) that touches it, so a later migration re-owns it exactly
    when the thread's accesses start arriving from the new core.
    """
    policy = getattr(design, "policy", None)
    if policy is None:
        return 0
    cols = trace.columns
    pages = trace.page_number_array(design.config.page_size)
    threads = np.where(cols.thread_id == NO_THREAD, cols.core, cols.thread_id)
    is_instruction = cols.access_type == INSTRUCTION_CODE
    data_mask = ~is_instruction
    onset_pages = set(trace.metadata.get("onset_pages", ()))
    page_table = policy.classifier.page_table
    data_pages = np.empty(0, dtype=np.int64)
    if data_mask.any():
        d_pages = pages[data_mask]
        d_cores = cols.core[data_mask]
        pairs = np.unique(np.stack((d_pages, threads[data_mask])), axis=1)
        data_pages, thread_counts = np.unique(pairs[0], return_counts=True)
        first_pages, first_index = np.unique(d_pages, return_index=True)
        owner_by_page = dict(
            zip(first_pages.tolist(), d_cores[first_index].tolist(), strict=True)
        )
        for page, count in zip(data_pages.tolist(), thread_counts.tolist(), strict=True):
            entry = page_table.get_or_create(page)
            if count > 1 and page not in onset_pages:
                entry.mark_shared()
            else:
                entry.mark_private(owner_by_page[page])
    instruction_only = np.setdiff1d(
        np.unique(pages[is_instruction]), data_pages, assume_unique=True
    )
    for page in instruction_only.tolist():
        page_table.get_or_create(page).mark_instruction()
    return int(data_pages.size) + int(instruction_only.size)


def _trace_event_machinery(trace: Trace, os_scheduler, on_migration=None):
    """Shared event bookkeeping for the event-aware replay paths.

    Both :meth:`TraceSimulator._replay_fast_dynamic` (open loop) and
    :meth:`TraceSimulator._replay_fast_adaptive` (feedback loop) consume
    trace events the same way; this helper is the single place their
    semantics live, so a fix cannot land in one path and not the other.

    Returns ``(events, state, apply_event, phase_label)``: the sorted event
    rows, the mutable replay state (current phase, counters, next event
    index), the event applicator, and the current-phase label function.
    ``on_migration(thread_id)`` — when given — runs before the OS scheduler
    records a migration event (the adaptive path uses it to invalidate a
    stale replay-time override for the migrated thread).
    """
    events = trace.events.rows()
    phase_names = list(trace.metadata.get("phases") or ())
    state = {"phase": 0, "migrations": 0, "onsets": 0, "next": 0}

    def apply_event(kind: int, arg0: int, arg1: int) -> None:
        if kind == MIGRATION_EVENT:
            state["migrations"] += 1
            if on_migration is not None:
                on_migration(arg0)
            if os_scheduler is not None:
                os_scheduler.migrate(arg0, arg1)
        elif kind == PHASE_EVENT:
            state["phase"] = arg0
        else:  # SHARING_ONSET_EVENT: generation-side; count it only.
            state["onsets"] += 1

    def phase_label() -> str:
        index = state["phase"]
        return phase_names[index] if index < len(phase_names) else f"phase{index}"

    return events, state, apply_event, phase_label


@dataclass
class SimulationResult:
    """Everything measured for one (workload, design) pair."""

    workload: str
    design: str
    design_letter: str
    stats: SimulationStats
    cpi_confidence: ConfidenceInterval | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.stats.cpi

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def cpi_breakdown(self) -> dict[str, float]:
        return self.stats.cpi_breakdown()

    def normalized_breakdown(self, baseline_cpi: float) -> dict[str, float]:
        """CPI breakdown normalised to another design's total CPI (Fig. 7)."""
        if baseline_cpi <= 0:
            raise SimulationError("baseline CPI must be positive")
        return {
            component: value / baseline_cpi
            for component, value in self.cpi_breakdown().items()
        }

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Throughput improvement relative to a baseline design."""
        if self.cpi == 0:
            raise SimulationError("cannot compute speedup with zero CPI")
        return baseline.cpi / self.cpi - 1.0

    def to_dict(self) -> dict:
        """JSON-serializable representation, inverse of :meth:`from_dict`."""
        return {
            "workload": self.workload,
            "design": self.design,
            "design_letter": self.design_letter,
            "stats": self.stats.to_dict(),
            "cpi_confidence": (
                self.cpi_confidence.to_dict() if self.cpi_confidence else None
            ),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        confidence = data.get("cpi_confidence")
        return cls(
            workload=data["workload"],
            design=data["design"],
            design_letter=data["design_letter"],
            stats=SimulationStats.from_dict(data["stats"]),
            cpi_confidence=(
                ConfidenceInterval.from_dict(confidence) if confidence else None
            ),
            metadata=dict(data.get("metadata", {})),
        )


class TraceSimulator:
    """Replays one trace through one design.

    ``scheduler`` optionally attaches a feedback-driven scheduler: an
    :class:`~repro.dynamics.adaptive.AdaptiveScheduler` instance, or a bare
    name ("fixed", "greedy", "reinforced").  A bare name builds a policy
    with the **default seed 0** — the simulator has no run seed of its own;
    to tie the policy seed to a run's seed, pass an explicit scheduler
    (``build_scheduler(name, seed=...)``) or go through
    :func:`simulate_workload`, which does exactly that.
    """

    def __init__(
        self,
        design: CacheDesign,
        cpi_model: CpiModel,
        *,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
        num_samples: int = DEFAULT_NUM_SAMPLES,
        warm_os_state: bool = True,
        engine: str | None = None,
        scheduler: "AdaptiveScheduler | str | None" = None,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError("warmup_fraction must be within [0, 1)")
        engine = engine if engine is not None else default_engine()
        if engine not in ENGINES:
            raise SimulationError(f"unknown replay engine {engine!r}")
        if isinstance(scheduler, str):
            scheduler = build_scheduler(scheduler)
        self.design = design
        self.cpi_model = cpi_model
        self.warmup_fraction = warmup_fraction
        self.num_samples = num_samples
        self.warm_os_state = warm_os_state
        self.engine = engine
        #: Optional feedback-driven scheduler (``repro.dynamics.adaptive``).
        #: ``None`` means "fixed": replay exactly what the trace prescribes.
        self.scheduler = scheduler

    def run(self, trace: Trace, *, engine: str | None = None) -> SimulationResult:
        """Replay the trace and return the measured result."""
        mode = engine if engine is not None else self.engine
        if mode not in ENGINES:
            raise SimulationError(f"unknown replay engine {mode!r}")
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        if self.scheduler is not None and mode == "reference":
            raise SimulationError(
                "adaptive scheduling requires a feedback-capable engine "
                "(fast or batch); the reference path has no feedback hook"
            )
        warmup_count = int(len(trace) * self.warmup_fraction)
        if warmup_count >= len(trace):
            raise SimulationError("warm-up consumed the entire trace")

        # Warm-up phase: prime OS page tables, then replay without measuring.
        # Dynamic traces prime by thread identity so that sharing created by
        # schedule events is discovered by the OS during replay instead of
        # being classified away beforehand.
        if self.warm_os_state:
            if trace.is_dynamic:
                warm_page_tables_dynamic(self.design, trace)
            else:
                warm_page_tables(self.design, trace)
        classifier = getattr(getattr(self.design, "policy", None), "classifier", None)
        reowns_before = classifier.migration_reowns if classifier else 0
        reclass_before = classifier.reclassifications if classifier else 0
        # Pause cyclic GC for the replay (both engines): the simulation
        # objects are acyclic, so collections only add latency spikes.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.scheduler is not None:
                # Feedback-driven replay (fast or batch: the kernel has no
                # closed form across migration feedback, so batch shares
                # the fast adaptive loop).
                total, sample_cpis = self._replay_fast_adaptive(
                    trace, warmup_count, self.scheduler
                )
            elif mode == "batch" and not trace.is_dynamic:
                try:
                    total, sample_cpis = replay_static_batch(
                        self, trace, warmup_count
                    )
                except BatchFallback:
                    total, sample_cpis = self._replay_fast(trace, warmup_count)
            elif mode == "reference":
                total, sample_cpis = self._replay_reference(trace, warmup_count)
            else:
                # "fast", and "batch" on event-carrying traces (the kernel
                # is static-only; spans between events replay per record).
                total, sample_cpis = self._replay_fast(trace, warmup_count)
        finally:
            if gc_was_enabled:
                gc.enable()

        if classifier is not None:
            # OS re-classification activity observed over the whole replay
            # (both engines drive the same classifier state machine).
            total.migration_reowns = classifier.migration_reowns - reowns_before
            total.reclassifications = classifier.reclassifications - reclass_before

        confidence = sample_mean(sample_cpis) if sample_cpis else None
        metadata = {
            "trace_length": len(trace),
            "warmup_records": warmup_count,
            "offchip_rate": self.design.offchip_rate,
        }
        if trace.is_dynamic:
            metadata["dynamic"] = True
            metadata["events"] = len(trace.events)
        if self.scheduler is not None:
            metadata["scheduler"] = self.scheduler.name
            metadata["adaptive_migrations"] = total.adaptive_migrations
        if hasattr(self.design, "misclassification_rate"):
            metadata["misclassification_rate"] = self.design.misclassification_rate
        if hasattr(self.design, "allocation_probability"):
            metadata["asr_allocation_probability"] = self.design.allocation_probability
        return SimulationResult(
            workload=trace.workload,
            design=self.design.name,
            design_letter=self.design.short_name,
            stats=total,
            cpi_confidence=confidence,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    # Fast columnar replay
    # ------------------------------------------------------------------ #
    def _replay_fast(
        self, trace: Trace, warmup_count: int
    ) -> tuple[SimulationStats, list[float]]:
        """Columnar replay reusing one access/outcome pair, no per-record allocation."""
        design = self.design
        config = design.config
        rows = trace.hot_rows(config.block_size, config.page_size)

        access = L2Access()
        outcome = AccessOutcome()
        components = outcome.components  # identity is stable across resets
        design_service = design._service
        l1_fill = design._l1_fill
        wants_evictions = design._wants_l1_evictions
        on_l1_eviction = design.on_l1_eviction
        busy_cpi = self.cpi_model.busy_cpi
        stall_factors = self.cpi_model.stall_factors

        def replay_warmup(start: int, stop: int) -> None:
            accesses = 0
            offchip_count = 0
            # A plain slice of prebuilt row tuples: a single C-level list
            # iterator with tuple unpacking is the cheapest per-record walk.
            for core, code, address, instructions, thread, true_class, coarse, block, page in rows[
                start:stop
            ]:
                access.core = core
                # access_type itself is not consulted on the hot path (the
                # designs read the precomputed is_instruction/is_write flags
                # and data_class derives from true_class + is_instruction),
                # so only the flags are refreshed per record.
                instruction = code == INSTRUCTION_CODE
                write = code == STORE_CODE
                access.is_instruction = instruction
                access.is_write = write
                access.block_address = block
                access.byte_address = address
                access.thread_id = thread
                access.true_class = true_class
                access.page_number = page
                # Inline CacheDesign.access (reset + service + counters +
                # L1 mirroring) to drop two call frames per record.
                accesses += 1
                components.clear()
                # target_slice/page_class are not reset: no stats consumer
                # reads them and every design overwrites target_slice.
                outcome.hit_where = "l2_local"
                outcome.offchip = False
                outcome.coherence = False
                design_service(access, outcome)
                if outcome.offchip:
                    offchip_count += 1
                if not instruction:
                    victim = l1_fill(core, block, write)
                    if victim is not None and wants_evictions:
                        on_l1_eviction(core, victim)
            # The design's totals are not read mid-replay, so they are
            # accumulated locally and folded in once per phase.
            design.accesses += accesses
            design.offchip_accesses += offchip_count

        def replay_measured(start: int, stop: int, acc: SampleAccumulator) -> None:
            # The same replay as replay_warmup plus statistics accumulation.
            # The per-record counters live in LOCAL variables (an order of
            # magnitude cheaper than attribute or dict updates) and are
            # transferred into the accumulator once per sample window.  The
            # arithmetic (and its floating-point order) is identical to
            # SampleAccumulator.record_access / SimulationStats.record.
            instructions_total = 0
            accesses = 0
            busy_cycles = 0.0
            instruction_cls = private_cls = shared_cls = 0
            l2_local = l2_remote = l1_remote = offchip_where = 0
            offchip_count = coherence_count = 0
            interleaved_n = coherence_n = l1_to_l1_n = 0
            interleaved_cyc = coherence_cyc = l1_to_l1_cyc = 0.0
            stall_by_component = acc.stall_by_component
            per_class = acc.class_components
            # A plain slice of prebuilt row tuples: a single C-level list
            # iterator with tuple unpacking is the cheapest per-record walk.
            for core, code, address, instructions, thread, true_class, coarse, block, page in rows[
                start:stop
            ]:
                access.core = core
                instruction = code == INSTRUCTION_CODE
                write = code == STORE_CODE
                access.is_instruction = instruction
                access.is_write = write
                access.block_address = block
                access.byte_address = address
                access.thread_id = thread
                access.true_class = true_class
                access.page_number = page
                components.clear()
                # target_slice/page_class are not reset: no stats consumer
                # reads them and every design overwrites target_slice.
                outcome.hit_where = "l2_local"
                outcome.offchip = False
                outcome.coherence = False
                design_service(access, outcome)
                offchip = outcome.offchip
                if not instruction:
                    victim = l1_fill(core, block, write)
                    if victim is not None and wants_evictions:
                        on_l1_eviction(core, victim)

                # --- statistics (CpiModel.apply_overlap fused in) ---
                instructions_total += instructions
                accesses += 1
                shared = False
                if coarse == "shared":
                    shared = True
                    shared_cls += 1
                elif coarse == "instruction":
                    instruction_cls += 1
                elif coarse == "private":
                    private_cls += 1
                else:
                    acc.other_class_accesses[coarse] = (
                        acc.other_class_accesses.get(coarse, 0) + 1
                    )
                busy_cycles += busy_cpi * instructions
                hit_where = outcome.hit_where
                if hit_where == "l2_local":
                    l2_local += 1
                elif hit_where == "l2_remote":
                    l2_remote += 1
                elif hit_where == "offchip":
                    offchip_where += 1
                elif hit_where == "l1_remote":
                    l1_remote += 1
                else:
                    acc.other_hits[hit_where] = acc.other_hits.get(hit_where, 0) + 1
                if offchip:
                    offchip_count += 1
                coherence = outcome.coherence
                if coherence:
                    coherence_count += 1
                class_components = per_class.get(coarse)
                if class_components is None:
                    class_components = per_class[coarse] = {}
                latency = 0.0
                for component, cycles in components.items():
                    cycles = cycles * stall_factors.get(component, 1.0)
                    stall_by_component[component] = (
                        stall_by_component.get(component, 0.0) + cycles
                    )
                    class_components[component] = (
                        class_components.get(component, 0.0) + cycles
                    )
                    latency += cycles
                if shared:
                    if hit_where == "l1_remote":
                        l1_to_l1_n += 1
                        l1_to_l1_cyc += latency
                    elif coherence:
                        coherence_n += 1
                        coherence_cyc += latency
                    else:
                        interleaved_n += 1
                        interleaved_cyc += latency

            # The design's totals are not read mid-replay, so they are
            # accumulated locally and folded in once per window.
            design.accesses += accesses
            design.offchip_accesses += offchip_count
            acc.instructions = instructions_total
            acc.accesses = accesses
            acc.busy_cycles = busy_cycles
            acc.instruction_accesses = instruction_cls
            acc.private_accesses = private_cls
            acc.shared_accesses = shared_cls
            acc.l2_local_hits = l2_local
            acc.l2_remote_hits = l2_remote
            acc.l1_remote_hits = l1_remote
            acc.offchip_services = offchip_where
            acc.offchip_accesses = offchip_count
            acc.coherence_accesses = coherence_count
            acc.interleaved_count = interleaved_n
            acc.coherence_count = coherence_n
            acc.l1_to_l1_count = l1_to_l1_n
            acc.interleaved_cycles = interleaved_cyc
            acc.coherence_cycles = coherence_cyc
            acc.l1_to_l1_cycles = l1_to_l1_cyc

        if trace.is_dynamic:
            return self._replay_fast_dynamic(
                trace, warmup_count, replay_warmup, replay_measured, stall_factors
            )

        replay_warmup(0, warmup_count)

        total = SimulationStats()
        sample_cpis: list[float] = []
        measured = len(trace) - warmup_count
        for window in split_into_samples(measured, self.num_samples):
            accumulator = SampleAccumulator(stall_factors)
            replay_measured(
                warmup_count + window.start, warmup_count + window.stop, accumulator
            )
            sample_stats = accumulator.to_stats()
            if sample_stats.instructions:
                sample_cpis.append(sample_stats.cpi)
            total.merge(sample_stats)
        return total, sample_cpis

    def _replay_fast_dynamic(
        self, trace: Trace, warmup_count: int, replay_warmup, replay_measured,
        stall_factors,
    ) -> tuple[SimulationStats, list[float]]:
        """Fast replay of a trace with events (``repro.dynamics``).

        Reuses the static fast path's replay closures but splits every span
        at event boundaries: an event at record index ``i`` is applied
        before record ``i`` replays.  Migrations update the design's
        :class:`~repro.osmodel.scheduler.ThreadScheduler` (R-NUCA's OS
        model; the other designs have no OS state to update), so the
        classifier's next TLB miss on an affected page re-owns or
        reclassifies it through the ordinary Section-4.3 state machine.
        Measured segments are accumulated per (sample window x phase), so
        per-phase CPI lands in :attr:`SimulationStats.phases`.
        """
        design = self.design
        policy = getattr(design, "policy", None)
        os_scheduler = policy.classifier.scheduler if policy is not None else None
        events, state, apply_event, phase_label = _trace_event_machinery(
            trace, os_scheduler
        )
        n_events = len(events)

        def replay_span(start: int, stop: int, window, phase_stats) -> None:
            """Replay [start, stop), applying events at their indices.

            ``window`` is None for warm-up spans; for measured spans each
            event-free segment gets its own accumulator whose stats are
            merged into ``window`` and folded into the current phase of
            ``phase_stats`` (the run total).
            """
            pos = start
            while pos < stop:
                index = state["next"]
                if index < n_events and events[index][0] < stop:
                    boundary = max(pos, events[index][0])
                else:
                    boundary = stop
                if boundary > pos:
                    if window is None:
                        replay_warmup(pos, boundary)
                    else:
                        accumulator = SampleAccumulator(stall_factors)
                        replay_measured(pos, boundary, accumulator)
                        segment = accumulator.to_stats()
                        phase_stats.fold_phase(phase_label(), segment)
                        window.merge(segment)
                    pos = boundary
                while state["next"] < n_events and events[state["next"]][0] <= pos:
                    _, kind, arg0, arg1 = events[state["next"]]
                    apply_event(kind, arg0, arg1)
                    state["next"] += 1

        replay_span(0, warmup_count, None, None)

        total = SimulationStats()
        sample_cpis: list[float] = []
        measured = len(trace) - warmup_count
        for window in split_into_samples(measured, self.num_samples):
            window_stats = SimulationStats()
            replay_span(
                warmup_count + window.start, warmup_count + window.stop,
                window_stats, total,
            )
            if window_stats.instructions:
                sample_cpis.append(window_stats.cpi)
            total.merge(window_stats)
        total.thread_migrations = state["migrations"]
        total.sharing_onsets = state["onsets"]
        return total, sample_cpis

    # ------------------------------------------------------------------ #
    # Adaptive (feedback-driven) replay
    # ------------------------------------------------------------------ #
    def _replay_fast_adaptive(
        self, trace: Trace, warmup_count: int, controller: AdaptiveScheduler
    ) -> tuple[SimulationStats, list[float]]:
        """Fast replay with the engine→scheduler→engine feedback loop closed.

        The static and fixed-dynamics paths are open-loop: events flow from
        the trace into the engine and nothing flows back.  Here the engine
        counts each window's accesses per software thread, feeds the window
        to the :class:`~repro.dynamics.adaptive.AdaptiveScheduler`, and
        installs the decisions that come back as thread→core overrides for
        the rest of the replay — the trace itself is never modified, so the
        same stored trace serves every scheduler.

        Decisions are charged through the ordinary OS machinery: each
        applied move is recorded in the design's
        :class:`~repro.osmodel.scheduler.ThreadScheduler` (when the design
        has one), so the classifier's next TLB miss on an affected page
        re-owns it — or reclassifies it shared — through the Section-4.3
        state machine, exactly like a generation-time migration.

        Replay is split at three kinds of boundary: trace events (applied
        before their record, as in the fixed-dynamics path), pressure-window
        boundaries (every ``controller.window_records`` records, feedback
        fires), and measurement sample windows (statistics accumulate per
        sample for the confidence interval, per phase for phased traces).
        Everything is a pure function of (trace, policy, seed), which is
        what makes adaptive results deterministic across processes.
        """
        design = self.design
        config = design.config
        rows = trace.hot_rows(config.block_size, config.page_size)
        stall_factors = self.cpi_model.stall_factors
        busy_cpi = self.cpi_model.busy_cpi

        access = L2Access()
        outcome = AccessOutcome()
        components = outcome.components
        design_service = design._service
        l1_fill = design._l1_fill
        wants_evictions = design._wants_l1_evictions
        on_l1_eviction = design.on_l1_eviction

        policy = getattr(design, "policy", None)
        os_scheduler = policy.classifier.scheduler if policy is not None else None
        # The OS is fully aware of thread placement (Section 4.3): priming
        # the scheduler with the trace's launch-time assignment lets the
        # classifier attribute a replay-time move off a packed core to
        # migration (re-own) instead of mistaking it for a second sharer.
        initial = trace.metadata.get("initial_assignment")
        if os_scheduler is not None and initial:
            for thread, core in enumerate(initial):
                os_scheduler.schedule(thread, int(core))

        controller.begin_run(config.num_tiles)
        window_records = controller.window_records
        assignment: dict[int, int] = {}  # thread -> overriding core
        counts: dict[int, int] = {}  # window-local per-thread access counts
        located: dict[int, int] = {}  # window-local thread -> effective core

        has_phases = bool(trace.metadata.get("phases"))
        # A generation-time migration re-places the thread: the trace's
        # core column already issues its accesses from the new core, so any
        # adaptive override for this thread is stale and must be dropped —
        # otherwise the override would silently cancel the scheduled
        # migration for the rest of the replay.  The schedule (the OS, in
        # the fiction) wins; the adaptive scheduler may of course move the
        # thread again at a later window.
        events, state, apply_event, phase_label = _trace_event_machinery(
            trace, os_scheduler,
            on_migration=lambda thread: assignment.pop(thread, None),
        )
        n_events = len(events)

        def replay_segment(start: int, stop: int, acc) -> None:
            """Replay [start, stop) under the current overrides.

            ``acc`` is ``None`` for warm-up segments.  Statistics accumulate
            through :meth:`SampleAccumulator.record_access` (the documented
            slower-but-identical twin of the fused static loop), and every
            access is counted against its issuing thread so the window's
            pressure can be fed back.
            """
            accesses = 0
            offchip_count = 0
            get_override = assignment.get
            for core, code, address, instructions, thread, true_class, coarse, block, page in rows[
                start:stop
            ]:
                core = get_override(thread, core)
                access.core = core
                instruction = code == INSTRUCTION_CODE
                write = code == STORE_CODE
                access.is_instruction = instruction
                access.is_write = write
                access.block_address = block
                access.byte_address = address
                access.thread_id = thread
                access.true_class = true_class
                access.page_number = page
                accesses += 1
                components.clear()
                outcome.hit_where = "l2_local"
                outcome.offchip = False
                outcome.coherence = False
                design_service(access, outcome)
                if outcome.offchip:
                    offchip_count += 1
                if not instruction:
                    victim = l1_fill(core, block, write)
                    if victim is not None and wants_evictions:
                        on_l1_eviction(core, victim)
                counts[thread] = counts.get(thread, 0) + 1
                located[thread] = core
                if acc is not None:
                    acc.record_access(coarse, instructions, busy_cpi * instructions, outcome)
            design.accesses += accesses
            design.offchip_accesses += offchip_count

        def feedback() -> None:
            """Close the loop at a window boundary: observe, decide, apply."""
            decisions = controller.observe(counts, located)
            for decision in decisions:
                previous = located.get(decision.thread_id)
                assignment[decision.thread_id] = decision.to_core
                if os_scheduler is not None:
                    os_scheduler.migrate(decision.thread_id, decision.to_core)
                controller.record_applied(
                    decision.thread_id, previous, decision.to_core
                )
            counts.clear()
            located.clear()

        next_feedback = window_records

        def replay_span(start: int, stop: int, window, phase_stats) -> None:
            """Replay [start, stop), honouring events and window boundaries."""
            nonlocal next_feedback
            pos = start
            while pos < stop:
                boundary = stop
                index = state["next"]
                if index < n_events and events[index][0] < boundary:
                    boundary = events[index][0]
                if next_feedback < boundary:
                    boundary = next_feedback
                boundary = max(boundary, pos)
                if boundary > pos:
                    if window is None:
                        replay_segment(pos, boundary, None)
                    else:
                        accumulator = SampleAccumulator(stall_factors)
                        replay_segment(pos, boundary, accumulator)
                        segment = accumulator.to_stats()
                        if has_phases:
                            phase_stats.fold_phase(phase_label(), segment)
                        window.merge(segment)
                    pos = boundary
                while state["next"] < n_events and events[state["next"]][0] <= pos:
                    _, kind, arg0, arg1 = events[state["next"]]
                    apply_event(kind, arg0, arg1)
                    state["next"] += 1
                if pos == next_feedback:
                    feedback()
                    next_feedback += window_records

        replay_span(0, warmup_count, None, None)

        total = SimulationStats()
        sample_cpis: list[float] = []
        measured = len(trace) - warmup_count
        for window in split_into_samples(measured, self.num_samples):
            window_stats = SimulationStats()
            replay_span(
                warmup_count + window.start, warmup_count + window.stop,
                window_stats, total,
            )
            if window_stats.instructions:
                sample_cpis.append(window_stats.cpi)
            total.merge(window_stats)
        # A trailing partial pressure window (fewer than window_records
        # records) is dropped rather than fed back: its decisions could
        # never affect replay, and a short window's imbalance would be
        # noise in the series.
        total.thread_migrations = state["migrations"]
        total.sharing_onsets = state["onsets"]
        total.adaptive_migrations = controller.migrations_applied
        total.window_imbalance = list(controller.imbalance_series)
        return total, sample_cpis

    # ------------------------------------------------------------------ #
    # Reference (seed) replay
    # ------------------------------------------------------------------ #
    def _replay_reference(
        self, trace: Trace, warmup_count: int
    ) -> tuple[SimulationStats, list[float]]:
        """The seed engine: one record, one access, one outcome at a time.

        Replays through :mod:`repro.sim.seed_path`, which preserves the
        pre-fast-path service bodies and per-record object allocations, so
        this path's cost and results are the pre-optimisation baseline.
        """
        if trace.is_dynamic:
            return self._replay_reference_dynamic(trace, warmup_count)
        design = self.design
        block_shift = design.config.block_size.bit_length() - 1
        measured_records = trace.records[warmup_count:]
        for record in trace.records[:warmup_count]:
            seed_access(design, to_seed_access(record, block_shift))

        total = SimulationStats()
        sample_cpis: list[float] = []
        for window in split_into_samples(len(measured_records), self.num_samples):
            sample_stats = SimulationStats()
            for record in measured_records[window]:
                access = to_seed_access(record, block_shift)
                outcome = seed_access(design, access)
                self.cpi_model.apply_overlap(outcome)
                sample_stats.record(record, outcome, self.cpi_model.busy_cycles(record))
            if sample_stats.instructions:
                sample_cpis.append(sample_stats.cpi)
            total.merge(sample_stats)
        return total, sample_cpis

    def _replay_reference_dynamic(
        self, trace: Trace, warmup_count: int
    ) -> tuple[SimulationStats, list[float]]:
        """Seed-path replay of a trace with events.

        The same span-splitting as :meth:`_replay_fast_dynamic` — an event
        at record index ``i`` is applied before record ``i`` replays, and
        measured segments fold into per-phase stats — but each segment
        replays record by record through :mod:`repro.sim.seed_path`, so
        the oracle covers dynamics with the preserved seed service bodies.
        """
        design = self.design
        block_shift = design.config.block_size.bit_length() - 1
        records = trace.records
        policy = getattr(design, "policy", None)
        os_scheduler = policy.classifier.scheduler if policy is not None else None
        events, state, apply_event, phase_label = _trace_event_machinery(
            trace, os_scheduler
        )
        n_events = len(events)

        def replay_span(start: int, stop: int, window, phase_stats) -> None:
            pos = start
            while pos < stop:
                index = state["next"]
                if index < n_events and events[index][0] < stop:
                    boundary = max(pos, events[index][0])
                else:
                    boundary = stop
                if boundary > pos:
                    if window is None:
                        for record in records[pos:boundary]:
                            seed_access(design, to_seed_access(record, block_shift))
                    else:
                        segment = SimulationStats()
                        for record in records[pos:boundary]:
                            access = to_seed_access(record, block_shift)
                            outcome = seed_access(design, access)
                            self.cpi_model.apply_overlap(outcome)
                            segment.record(
                                record, outcome, self.cpi_model.busy_cycles(record)
                            )
                        phase_stats.fold_phase(phase_label(), segment)
                        window.merge(segment)
                    pos = boundary
                while state["next"] < n_events and events[state["next"]][0] <= pos:
                    _, kind, arg0, arg1 = events[state["next"]]
                    apply_event(kind, arg0, arg1)
                    state["next"] += 1

        replay_span(0, warmup_count, None, None)

        total = SimulationStats()
        sample_cpis: list[float] = []
        measured = len(trace) - warmup_count
        for window in split_into_samples(measured, self.num_samples):
            window_stats = SimulationStats()
            replay_span(
                warmup_count + window.start, warmup_count + window.stop,
                window_stats, total,
            )
            if window_stats.instructions:
                sample_cpis.append(window_stats.cpi)
            total.merge(window_stats)
        total.thread_migrations = state["migrations"]
        total.sharing_onsets = state["onsets"]
        return total, sample_cpis


def resolve_workload(workload) -> tuple[WorkloadSpec, "DynamicWorkloadSpec" | None]:
    """Resolve a workload argument to ``(base spec, dynamic spec or None)``.

    Accepts a static :class:`WorkloadSpec`, a
    :class:`~repro.dynamics.spec.DynamicWorkloadSpec`, a static workload
    name ("oltp-db2") or a dynamic scenario name ("oltp-db2:migrate").
    """
    if isinstance(workload, DynamicWorkloadSpec):
        return workload.base, workload
    if isinstance(workload, WorkloadSpec):
        return workload, None
    if is_dynamic_workload(workload):
        dyn = resolve_dynamic(workload)
        return dyn.base, dyn
    return get_workload(workload), None


def _resolve_spec(workload: str | WorkloadSpec) -> WorkloadSpec:
    return resolve_workload(workload)[0]


def generate_workload_trace(
    spec: WorkloadSpec,
    dyn: DynamicWorkloadSpec | None,
    config: SystemConfig,
    num_records: int,
    *,
    seed: int = 0,
    scale: float = DEFAULT_SCALE,
    store: TraceStore | None = None,
) -> Trace:
    """Build the trace for a resolved workload (dynamic when ``dyn`` is set).

    With a :class:`~repro.workloads.store.TraceStore`, the trace is served
    from the binary columnar cache when present (memory-mapped, zero-copy)
    and generated + persisted exactly once when not; the cache key covers
    the resolved spec's fingerprint, so edited workload parameters never
    serve stale traces.
    """
    def build() -> Trace:
        if dyn is not None:
            return DynamicTraceGenerator(dyn, config, seed=seed, scale=scale).generate(
                num_records
            )
        return SyntheticTraceGenerator(spec, config, seed=seed, scale=scale).generate(
            num_records
        )

    if store is None:
        return build()
    key = TraceKey.make(
        dyn.name if dyn is not None else spec.name,
        num_records=num_records,
        scale=scale,
        seed=seed,
        spec=spec,
        dyn=dyn,
        config=config,
    )
    trace, _ = store.get_or_create(key, build)
    return trace


def simulate_workload(
    workload: str | WorkloadSpec,
    design: str,
    *,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    config: SystemConfig | None = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    trace: Trace | None = None,
    engine: str | None = None,
    scheduler: "AdaptiveScheduler | str | None" = None,
    **design_kwargs,
) -> SimulationResult:
    """End-to-end convenience: build chip + trace + design and simulate.

    ``design`` is a letter ("P", "A", "S", "R", "I") or a long name
    ("private", "asr", "shared", "rnuca", "ideal").  The system configuration
    defaults to the paper's machine for the workload's category, scaled by
    ``scale`` (the same factor applied to the synthetic working sets).
    ``workload`` may also name a dynamic scenario ("oltp-db2:migrate") or be
    a :class:`~repro.dynamics.spec.DynamicWorkloadSpec`; the trace then
    comes from the :class:`~repro.dynamics.generator.DynamicTraceGenerator`
    and replays through the event-aware fast engine.

    ``scheduler`` selects the replay-time scheduling axis: ``None``/"fixed"
    replays exactly what the trace prescribes; "greedy"/"reinforced" (or an
    explicit :class:`~repro.dynamics.adaptive.AdaptiveScheduler`) close the
    engine→scheduler→engine feedback loop.  A scheduler name is seeded with
    this run's ``seed``, so the whole simulation stays a pure function of
    its arguments.
    """
    spec, dyn = resolve_workload(workload)
    if config is None:
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    if trace is None:
        trace = generate_workload_trace(
            spec, dyn, config, num_records, seed=seed, scale=scale
        )
    if isinstance(scheduler, str):
        scheduler = build_scheduler(scheduler, seed=seed)
    # A replacement-policy axis without an explicit policy seed derives it
    # from the run seed: the whole simulation stays a pure function of its
    # arguments, and seeded policies (random) reproduce bit-for-bit.
    if design_kwargs.get("l2_policy") is not None:
        design_kwargs.setdefault("policy_seed", seed)
    chip = TiledChip(config)
    design_instance = build_design(design, chip, **design_kwargs)
    simulator = TraceSimulator(
        design_instance,
        CpiModel.for_workload(spec),
        warmup_fraction=warmup_fraction,
        engine=engine,
        scheduler=scheduler,
    )
    result = simulator.run(trace)
    result.metadata["scale"] = scale
    result.metadata["config"] = config.name
    result.metadata["seed"] = seed
    return result


def simulate_best_asr(
    workload: str | WorkloadSpec,
    *,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    config: SystemConfig | None = None,
    trace: Trace | None = None,
    include_adaptive: bool = True,
    scheduler: "AdaptiveScheduler | str | None" = None,
    l2_policy: str | None = None,
) -> SimulationResult:
    """Run the six ASR variants and return the best one (paper Section 5.1).

    ``scheduler`` and ``l2_policy`` (the replay-time axes) apply to *every*
    variant, so a greedy-scheduler or non-LRU best-ASR result stays
    comparable to a fixed/LRU one.
    """
    spec, dyn = resolve_workload(workload)
    if config is None:
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    if trace is None:
        trace = generate_workload_trace(
            spec, dyn, config, num_records, seed=seed, scale=scale
        )
    probabilities: list[float | None] = [0.0, 0.25, 0.5, 0.75, 1.0]
    if include_adaptive:
        probabilities.insert(0, None)
    best: SimulationResult | None = None
    for probability in probabilities:
        kwargs = {} if probability is None else {"allocation_probability": probability}
        if l2_policy is not None:
            kwargs["l2_policy"] = l2_policy
        result = simulate_workload(
            spec,
            "A",
            num_records=num_records,
            scale=scale,
            seed=seed,
            config=config,
            trace=trace,
            scheduler=scheduler,
            **kwargs,
        )
        if best is None or result.cpi < best.cpi:
            best = result
    assert best is not None
    best.metadata["asr_variants_evaluated"] = len(probabilities)
    return best
