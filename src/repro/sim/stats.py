"""Simulation statistics: CPI components, access classes, hit locations.

The statistics object accumulates, per CPI component and per access class,
the stall cycles produced by the cache design, plus the busy cycles added by
the CPI model.  Everything the analysis package needs to regenerate
Figures 7-12 is derived from these counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.designs.base import BUSY, STALL_COMPONENTS, AccessOutcome
from repro.workloads.trace import TraceRecord

#: Coarse access classes used for the per-class CPI figures (8, 9, 10).
ACCESS_CLASSES = ("instruction", "private", "shared")


def _coarse_class(record: TraceRecord) -> str:
    if record.is_instruction or record.true_class == "instruction":
        return "instruction"
    if record.true_class is None:
        return "shared"
    return "private" if record.true_class == "private" else "shared"


@dataclass
class SimulationStats:
    """Accumulated measurements for one design running one trace."""

    instructions: int = 0
    accesses: int = 0
    cycles_by_component: Counter = field(default_factory=Counter)
    #: cycles_by_class_component[(access_class, component)] -> cycles
    cycles_by_class_component: Counter = field(default_factory=Counter)
    accesses_by_class: Counter = field(default_factory=Counter)
    hits_by_location: Counter = field(default_factory=Counter)
    offchip_accesses: int = 0
    coherence_accesses: int = 0
    #: Per-class counts of where shared-data accesses were serviced, used by
    #: the Figure-8 breakdown (local L2 vs. coherence transfer vs. L1-to-L1).
    shared_service: Counter = field(default_factory=Counter)
    #: Stall cycles of shared-data accesses split by service type
    #: ("interleaved" plain L2, "coherence" remote-L2 transfer, "l1_to_l1").
    shared_service_cycles: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(
        self, record: TraceRecord, outcome: AccessOutcome, busy_cycles: float
    ) -> None:
        """Accumulate one serviced access."""
        access_class = _coarse_class(record)
        self.instructions += record.instructions
        self.accesses += 1
        self.accesses_by_class[access_class] += 1
        self.cycles_by_component[BUSY] += busy_cycles
        self.hits_by_location[outcome.hit_where] += 1
        if outcome.offchip:
            self.offchip_accesses += 1
        if outcome.coherence:
            self.coherence_accesses += 1
        for component, cycles in outcome.components.items():
            self.cycles_by_component[component] += cycles
            self.cycles_by_class_component[(access_class, component)] += cycles
        if access_class == "shared":
            if outcome.hit_where == "l1_remote":
                service = "l1_to_l1"
            elif outcome.coherence:
                service = "coherence"
            else:
                service = "interleaved"
            self.shared_service[service] += 1
            self.shared_service_cycles[service] += outcome.latency

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> float:
        return float(sum(self.cycles_by_component.values()))

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        if self.instructions == 0:
            return 0.0
        return self.total_cycles / self.instructions

    def component_cpi(self, component: str) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles_by_component.get(component, 0.0) / self.instructions

    def cpi_breakdown(self) -> dict[str, float]:
        """CPI per component (busy first, then the stall components)."""
        breakdown = {BUSY: self.component_cpi(BUSY)}
        for component in STALL_COMPONENTS:
            breakdown[component] = self.component_cpi(component)
        return breakdown

    def class_component_cpi(self, access_class: str, component: str) -> float:
        if self.instructions == 0:
            return 0.0
        return (
            self.cycles_by_class_component.get((access_class, component), 0.0)
            / self.instructions
        )

    def class_cpi(self, access_class: str) -> float:
        """Total stall CPI attributable to one access class."""
        if self.instructions == 0:
            return 0.0
        total = sum(
            cycles
            for (cls, _), cycles in self.cycles_by_class_component.items()
            if cls == access_class
        )
        return total / self.instructions

    def shared_service_cpi(self, service: str) -> float:
        """CPI of shared-data accesses serviced a particular way (Figure 8)."""
        if self.instructions == 0:
            return 0.0
        return self.shared_service_cycles.get(service, 0.0) / self.instructions

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi if self.cpi else 0.0

    @property
    def offchip_rate(self) -> float:
        return self.offchip_accesses / self.accesses if self.accesses else 0.0

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable representation (tuple keys flattened)."""
        return {
            "instructions": self.instructions,
            "accesses": self.accesses,
            "cycles_by_component": dict(self.cycles_by_component),
            "cycles_by_class_component": {
                f"{cls}::{component}": cycles
                for (cls, component), cycles in self.cycles_by_class_component.items()
            },
            "accesses_by_class": dict(self.accesses_by_class),
            "hits_by_location": dict(self.hits_by_location),
            "offchip_accesses": self.offchip_accesses,
            "coherence_accesses": self.coherence_accesses,
            "shared_service": dict(self.shared_service),
            "shared_service_cycles": dict(self.shared_service_cycles),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationStats":
        stats = cls(
            instructions=data["instructions"],
            accesses=data["accesses"],
            cycles_by_component=Counter(data["cycles_by_component"]),
            accesses_by_class=Counter(data["accesses_by_class"]),
            hits_by_location=Counter(data["hits_by_location"]),
            offchip_accesses=data["offchip_accesses"],
            coherence_accesses=data["coherence_accesses"],
            shared_service=Counter(data["shared_service"]),
            shared_service_cycles=Counter(data["shared_service_cycles"]),
        )
        for key, cycles in data["cycles_by_class_component"].items():
            access_class, _, component = key.partition("::")
            stats.cycles_by_class_component[(access_class, component)] = cycles
        return stats

    def merge(self, other: "SimulationStats") -> None:
        """Fold another stats object into this one (used by sampling)."""
        self.instructions += other.instructions
        self.accesses += other.accesses
        self.cycles_by_component.update(other.cycles_by_component)
        self.cycles_by_class_component.update(other.cycles_by_class_component)
        self.accesses_by_class.update(other.accesses_by_class)
        self.hits_by_location.update(other.hits_by_location)
        self.offchip_accesses += other.offchip_accesses
        self.coherence_accesses += other.coherence_accesses
        self.shared_service.update(other.shared_service)
        self.shared_service_cycles.update(other.shared_service_cycles)
