"""Simulation statistics: CPI components, access classes, hit locations.

The statistics object accumulates, per CPI component and per access class,
the stall cycles produced by the cache design, plus the busy cycles added by
the CPI model.  Everything the analysis package needs to regenerate
Figures 7-12 is derived from these counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.designs.base import BUSY, STALL_COMPONENTS, AccessOutcome
from repro.workloads.trace import TraceRecord

#: Coarse access classes used for the per-class CPI figures (8, 9, 10).
ACCESS_CLASSES = ("instruction", "private", "shared")


def _coarse_class(record: TraceRecord) -> str:
    if record.is_instruction or record.true_class == "instruction":
        return "instruction"
    if record.true_class is None:
        return "shared"
    return "private" if record.true_class == "private" else "shared"


class SampleAccumulator:
    """Flat counters for one measurement sample of the fast engine loop.

    Mirrors :meth:`SimulationStats.record` field for field but uses plain
    dicts and scalars so the hot loop never touches :class:`Counter`'s
    ``__missing__`` machinery or builds per-record objects.  Integer counts
    with a small fixed key set (access classes, hit locations, shared
    service kinds) live in scalars; only float cycle totals stay in dicts,
    keyed exactly as :class:`SimulationStats` keys them so their insertion
    order — and therefore every downstream floating-point summation order —
    matches what a per-record :meth:`SimulationStats.record` sequence
    produces.  The engine-equivalence tests rely on that bitwise parity.

    NOTE: the fast engine's measured loop
    (``TraceSimulator._replay_fast.replay_measured``) fuses a copy of
    :meth:`record_access` with local-variable counters for speed; keep the
    two in sync.  Divergence is caught by
    ``tests/test_sim.py::test_sample_accumulator_matches_per_record_path``
    (this class vs ``SimulationStats.record``) and by
    ``tests/test_engine_equivalence.py`` (the fused loop vs the seed path).
    """

    __slots__ = (
        "stall_factors",
        "instructions",
        "accesses",
        "busy_cycles",
        "stall_by_component",
        "class_components",
        "instruction_accesses",
        "private_accesses",
        "shared_accesses",
        "other_class_accesses",
        "l2_local_hits",
        "l2_remote_hits",
        "l1_remote_hits",
        "offchip_services",
        "other_hits",
        "offchip_accesses",
        "coherence_accesses",
        "interleaved_count",
        "coherence_count",
        "l1_to_l1_count",
        "interleaved_cycles",
        "coherence_cycles",
        "l1_to_l1_cycles",
    )

    def __init__(self, stall_factors: dict[str, float] | None = None) -> None:
        #: Per-component overlap factors applied while accumulating.
        self.stall_factors = stall_factors if stall_factors is not None else {}
        self.instructions = 0
        self.accesses = 0
        #: Busy cycles are kept as a scalar (every record adds to them) and
        #: re-inserted first in :meth:`to_stats`, matching the Counter
        #: insertion order ``SimulationStats.record`` produces.
        self.busy_cycles = 0.0
        self.stall_by_component: dict[str, float] = {}
        #: access class -> {component -> cycles}.  Nested dicts instead of
        #: (class, component) tuple keys: string keys cache their hashes,
        #: tuple keys re-hash on every update.
        self.class_components: dict[str, dict[str, float]] = {}
        self.instruction_accesses = 0
        self.private_accesses = 0
        self.shared_accesses = 0
        self.other_class_accesses: dict[str, int] = {}
        self.l2_local_hits = 0
        self.l2_remote_hits = 0
        self.l1_remote_hits = 0
        self.offchip_services = 0
        self.other_hits: dict[str, int] = {}
        self.offchip_accesses = 0
        self.coherence_accesses = 0
        self.interleaved_count = 0
        self.coherence_count = 0
        self.l1_to_l1_count = 0
        self.interleaved_cycles = 0.0
        self.coherence_cycles = 0.0
        self.l1_to_l1_cycles = 0.0

    def record_access(
        self,
        access_class: str,
        instructions: int,
        busy_cycles: float,
        outcome: AccessOutcome,
    ) -> None:
        """Accumulate one serviced access.

        Applies the CPI model's per-component overlap factors while
        accumulating (one pass over the outcome instead of
        ``CpiModel.apply_overlap`` followed by ``SimulationStats.record``);
        ``outcome.components`` itself is left unscaled.
        """
        self.instructions += instructions
        self.accesses += 1
        shared = False
        if access_class == "shared":
            shared = True
            self.shared_accesses += 1
        elif access_class == "instruction":
            self.instruction_accesses += 1
        elif access_class == "private":
            self.private_accesses += 1
        else:
            self.other_class_accesses[access_class] = (
                self.other_class_accesses.get(access_class, 0) + 1
            )
        self.busy_cycles += busy_cycles
        hit_where = outcome.hit_where
        if hit_where == "l2_local":
            self.l2_local_hits += 1
        elif hit_where == "l2_remote":
            self.l2_remote_hits += 1
        elif hit_where == "offchip":
            self.offchip_services += 1
        elif hit_where == "l1_remote":
            self.l1_remote_hits += 1
        else:
            self.other_hits[hit_where] = self.other_hits.get(hit_where, 0) + 1
        if outcome.offchip:
            self.offchip_accesses += 1
        coherence = outcome.coherence
        if coherence:
            self.coherence_accesses += 1
        components = self.stall_by_component
        class_components = self.class_components.get(access_class)
        if class_components is None:
            class_components = self.class_components[access_class] = {}
        stall_factors = self.stall_factors
        latency = 0.0
        for component, cycles in outcome.components.items():
            cycles = cycles * stall_factors.get(component, 1.0)
            components[component] = components.get(component, 0.0) + cycles
            class_components[component] = class_components.get(component, 0.0) + cycles
            latency += cycles
        if shared:
            if hit_where == "l1_remote":
                self.l1_to_l1_count += 1
                self.l1_to_l1_cycles += latency
            elif coherence:
                self.coherence_count += 1
                self.coherence_cycles += latency
            else:
                self.interleaved_count += 1
                self.interleaved_cycles += latency

    def to_stats(self) -> "SimulationStats":
        """Package the sample as a :class:`SimulationStats`.

        Scalar counters are integer counts, so re-packing them into
        Counters in a fixed key order (zero counts skipped, like the seed
        path never inserting them) changes no value and no float sum.
        """
        cycles_by_component: Counter = Counter()
        if self.accesses:
            cycles_by_component[BUSY] = self.busy_cycles
        cycles_by_component.update(self.stall_by_component)
        cycles_by_class_component: Counter = Counter()
        for access_class, per_component in self.class_components.items():
            for component, cycles in per_component.items():
                cycles_by_class_component[(access_class, component)] = cycles
        accesses_by_class: Counter = Counter()
        for name, count in (
            ("instruction", self.instruction_accesses),
            ("private", self.private_accesses),
            ("shared", self.shared_accesses),
        ):
            if count:
                accesses_by_class[name] = count
        accesses_by_class.update(self.other_class_accesses)
        hits_by_location: Counter = Counter()
        for name, count in (
            ("l2_local", self.l2_local_hits),
            ("l2_remote", self.l2_remote_hits),
            ("l1_remote", self.l1_remote_hits),
            ("offchip", self.offchip_services),
        ):
            if count:
                hits_by_location[name] = count
        hits_by_location.update(self.other_hits)
        shared_service: Counter = Counter()
        shared_service_cycles: Counter = Counter()
        for name, count, cycles in (
            ("interleaved", self.interleaved_count, self.interleaved_cycles),
            ("coherence", self.coherence_count, self.coherence_cycles),
            ("l1_to_l1", self.l1_to_l1_count, self.l1_to_l1_cycles),
        ):
            if count:
                shared_service[name] = count
                shared_service_cycles[name] = cycles
        return SimulationStats(
            instructions=self.instructions,
            accesses=self.accesses,
            cycles_by_component=cycles_by_component,
            cycles_by_class_component=cycles_by_class_component,
            accesses_by_class=accesses_by_class,
            hits_by_location=hits_by_location,
            offchip_accesses=self.offchip_accesses,
            coherence_accesses=self.coherence_accesses,
            shared_service=shared_service,
            shared_service_cycles=shared_service_cycles,
        )


@dataclass
class SimulationStats:
    """Accumulated measurements for one design running one trace."""

    instructions: int = 0
    accesses: int = 0
    cycles_by_component: Counter = field(default_factory=Counter)
    #: cycles_by_class_component[(access_class, component)] -> cycles
    cycles_by_class_component: Counter = field(default_factory=Counter)
    accesses_by_class: Counter = field(default_factory=Counter)
    hits_by_location: Counter = field(default_factory=Counter)
    offchip_accesses: int = 0
    coherence_accesses: int = 0
    #: Per-class counts of where shared-data accesses were serviced, used by
    #: the Figure-8 breakdown (local L2 vs. coherence transfer vs. L1-to-L1).
    shared_service: Counter = field(default_factory=Counter)
    #: Stall cycles of shared-data accesses split by service type
    #: ("interleaved" plain L2, "coherence" remote-L2 transfer, "l1_to_l1").
    shared_service_cycles: Counter = field(default_factory=Counter)
    # --- dynamic-behaviour measurements (repro.dynamics) ---------------- #
    #: Thread-migration events applied during replay.
    thread_migrations: int = 0
    #: Sharing-onset events observed during replay.
    sharing_onsets: int = 0
    #: OS migration re-owns (a private page following its migrated thread).
    migration_reowns: int = 0
    #: OS private->shared page re-classifications.
    reclassifications: int = 0
    #: Per-phase totals for phased traces: phase name ->
    #: {"instructions", "cycles", "accesses"} over the measured window.
    phases: dict = field(default_factory=dict)
    # --- adaptive-scheduling measurements (repro.dynamics.adaptive) ------ #
    #: Thread migrations decided *during replay* by an adaptive scheduler
    #: (distinct from :attr:`thread_migrations`, which counts trace events).
    adaptive_migrations: int = 0
    #: Per-pressure-window imbalance (``max/mean - 1`` of per-core access
    #: counts) observed by the adaptive scheduler, in replay order.
    window_imbalance: list = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(
        self, record: TraceRecord, outcome: AccessOutcome, busy_cycles: float
    ) -> None:
        """Accumulate one serviced access."""
        access_class = _coarse_class(record)
        self.instructions += record.instructions
        self.accesses += 1
        self.accesses_by_class[access_class] += 1
        self.cycles_by_component[BUSY] += busy_cycles
        self.hits_by_location[outcome.hit_where] += 1
        if outcome.offchip:
            self.offchip_accesses += 1
        if outcome.coherence:
            self.coherence_accesses += 1
        for component, cycles in outcome.components.items():
            self.cycles_by_component[component] += cycles
            self.cycles_by_class_component[(access_class, component)] += cycles
        if access_class == "shared":
            if outcome.hit_where == "l1_remote":
                service = "l1_to_l1"
            elif outcome.coherence:
                service = "coherence"
            else:
                service = "interleaved"
            self.shared_service[service] += 1
            self.shared_service_cycles[service] += outcome.latency

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> float:
        return float(sum(self.cycles_by_component.values()))

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        if self.instructions == 0:
            return 0.0
        return self.total_cycles / self.instructions

    def component_cpi(self, component: str) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles_by_component.get(component, 0.0) / self.instructions

    def cpi_breakdown(self) -> dict[str, float]:
        """CPI per component (busy first, then the stall components)."""
        breakdown = {BUSY: self.component_cpi(BUSY)}
        for component in STALL_COMPONENTS:
            breakdown[component] = self.component_cpi(component)
        return breakdown

    def class_component_cpi(self, access_class: str, component: str) -> float:
        if self.instructions == 0:
            return 0.0
        return (
            self.cycles_by_class_component.get((access_class, component), 0.0)
            / self.instructions
        )

    def class_cpi(self, access_class: str) -> float:
        """Total stall CPI attributable to one access class."""
        if self.instructions == 0:
            return 0.0
        total = sum(
            cycles
            for (cls, _), cycles in self.cycles_by_class_component.items()
            if cls == access_class
        )
        return total / self.instructions

    def shared_service_cpi(self, service: str) -> float:
        """CPI of shared-data accesses serviced a particular way (Figure 8)."""
        if self.instructions == 0:
            return 0.0
        return self.shared_service_cycles.get(service, 0.0) / self.instructions

    def phase_cpi(self, phase: str) -> float:
        """CPI of one phase of a phased trace (0.0 for unknown phases)."""
        totals = self.phases.get(phase)
        if not totals or not totals.get("instructions"):
            return 0.0
        return totals["cycles"] / totals["instructions"]

    def phase_breakdown(self) -> list[dict]:
        """Per-phase rows (phase, accesses, instructions, cpi), replay order."""
        return [
            {
                "phase": name,
                "accesses": totals.get("accesses", 0),
                "instructions": totals.get("instructions", 0),
                "cpi": self.phase_cpi(name),
            }
            for name, totals in self.phases.items()
        ]

    def fold_phase(self, phase: str, sample: "SimulationStats") -> None:
        """Attribute one replay segment's totals to a phase."""
        totals = self.phases.get(phase)
        if totals is None:
            totals = self.phases[phase] = {
                "instructions": 0,
                "cycles": 0.0,
                "accesses": 0,
            }
        totals["instructions"] += sample.instructions
        totals["cycles"] += sample.total_cycles
        totals["accesses"] += sample.accesses

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi if self.cpi else 0.0

    @property
    def offchip_rate(self) -> float:
        return self.offchip_accesses / self.accesses if self.accesses else 0.0

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable representation (tuple keys flattened)."""
        return {
            "instructions": self.instructions,
            "accesses": self.accesses,
            "cycles_by_component": dict(self.cycles_by_component),
            "cycles_by_class_component": {
                f"{cls}::{component}": cycles
                for (cls, component), cycles in self.cycles_by_class_component.items()
            },
            "accesses_by_class": dict(self.accesses_by_class),
            "hits_by_location": dict(self.hits_by_location),
            "offchip_accesses": self.offchip_accesses,
            "coherence_accesses": self.coherence_accesses,
            "shared_service": dict(self.shared_service),
            "shared_service_cycles": dict(self.shared_service_cycles),
            "thread_migrations": self.thread_migrations,
            "sharing_onsets": self.sharing_onsets,
            "migration_reowns": self.migration_reowns,
            "reclassifications": self.reclassifications,
            "phases": {name: dict(totals) for name, totals in self.phases.items()},
            "adaptive_migrations": self.adaptive_migrations,
            "window_imbalance": list(self.window_imbalance),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationStats":
        stats = cls(
            instructions=data["instructions"],
            accesses=data["accesses"],
            cycles_by_component=Counter(data["cycles_by_component"]),
            accesses_by_class=Counter(data["accesses_by_class"]),
            hits_by_location=Counter(data["hits_by_location"]),
            offchip_accesses=data["offchip_accesses"],
            coherence_accesses=data["coherence_accesses"],
            shared_service=Counter(data["shared_service"]),
            shared_service_cycles=Counter(data["shared_service_cycles"]),
            # Dynamic-behaviour fields postdate stored results; default them.
            thread_migrations=data.get("thread_migrations", 0),
            sharing_onsets=data.get("sharing_onsets", 0),
            migration_reowns=data.get("migration_reowns", 0),
            reclassifications=data.get("reclassifications", 0),
            phases={
                name: dict(totals)
                for name, totals in data.get("phases", {}).items()
            },
            adaptive_migrations=data.get("adaptive_migrations", 0),
            window_imbalance=list(data.get("window_imbalance", ())),
        )
        for key, cycles in data["cycles_by_class_component"].items():
            access_class, _, component = key.partition("::")
            stats.cycles_by_class_component[(access_class, component)] = cycles
        return stats

    def merge(self, other: "SimulationStats") -> None:
        """Fold another stats object into this one (used by sampling)."""
        self.instructions += other.instructions
        self.accesses += other.accesses
        self.cycles_by_component.update(other.cycles_by_component)
        self.cycles_by_class_component.update(other.cycles_by_class_component)
        self.accesses_by_class.update(other.accesses_by_class)
        self.hits_by_location.update(other.hits_by_location)
        self.offchip_accesses += other.offchip_accesses
        self.coherence_accesses += other.coherence_accesses
        self.shared_service.update(other.shared_service)
        self.shared_service_cycles.update(other.shared_service_cycles)
        self.thread_migrations += other.thread_migrations
        self.sharing_onsets += other.sharing_onsets
        self.migration_reowns += other.migration_reowns
        self.reclassifications += other.reclassifications
        self.adaptive_migrations += other.adaptive_migrations
        self.window_imbalance.extend(other.window_imbalance)
        for name, totals in other.phases.items():
            mine = self.phases.get(name)
            if mine is None:
                self.phases[name] = dict(totals)
            else:
                for key, value in totals.items():
                    mine[key] = mine.get(key, 0) + value
