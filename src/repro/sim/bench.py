"""Engine micro-benchmark: records/sec per design, fast path vs seed path.

``repro bench`` (see :mod:`repro.cli`) measures how many trace records per
second each cache design replays under

* the **fast** columnar engine (the default production path), and
* the **reference** seed engine (:mod:`repro.sim.seed_path`, the preserved
  pre-fast-path implementation),

on one freshly generated trace shared by all measurements.  Each (design,
engine) pair runs ``repeats`` times on a fresh chip and the best wall time
is kept; the reported ``speedup`` is fast/reference records per second.
Both engines' results are also compared field by field, so every bench run
doubles as an end-to-end equivalence check.

The JSON payload written to ``BENCH_engine.json`` is stable input for CI
artifacts and for tracking engine performance across commits.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design, normalize_design
from repro.sim.engine import TraceSimulator
from repro.sim.latency import CpiModel
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import get_workload

#: Default trace length for a bench run (long enough to amortise warm-up).
DEFAULT_BENCH_RECORDS = 40_000

#: Trace length used by ``repro bench --quick`` (CI smoke).  Long enough
#: that the measurement is not dominated by the cold-start miss burst.
QUICK_BENCH_RECORDS = 16_000

#: Repeats used by ``repro bench --quick``.
QUICK_BENCH_REPEATS = 2

#: Default best-of repeats per (design, engine) measurement.
DEFAULT_BENCH_REPEATS = 3

#: Default output file name.
DEFAULT_BENCH_OUTPUT = "BENCH_engine.json"


@dataclass(frozen=True)
class BenchResult:
    """Throughput of one design under both replay engines."""

    design: str
    design_name: str
    records: int
    fast_records_per_sec: float
    reference_records_per_sec: float
    speedup: float
    cpi: float
    offchip_rate: float
    stats_match: bool

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "design_name": self.design_name,
            "records": self.records,
            "fast_records_per_sec": round(self.fast_records_per_sec, 1),
            "reference_records_per_sec": round(self.reference_records_per_sec, 1),
            "speedup": round(self.speedup, 3),
            "cpi": self.cpi,
            "offchip_rate": self.offchip_rate,
            "stats_match": self.stats_match,
        }


def _measure_once(letter: str, spec, config: SystemConfig, trace, engine: str):
    """One replay of the trace on a fresh chip; returns (result, seconds)."""
    chip = TiledChip(config)
    design = build_design(letter, chip)
    simulator = TraceSimulator(design, CpiModel.for_workload(spec), engine=engine)
    start = time.perf_counter()
    result = simulator.run(trace)
    return result, time.perf_counter() - start


def bench_design(
    letter: str,
    spec,
    config: SystemConfig,
    trace,
    *,
    repeats: int = DEFAULT_BENCH_REPEATS,
) -> BenchResult:
    """Benchmark one design under both engines on a shared trace.

    The engines are measured in interleaved repeats (reference, fast,
    reference, fast, ...) and the best wall time per engine is kept, so a
    transient machine-load burst cannot bias the ratio by landing entirely
    on one engine's measurements.
    """
    best = {"reference": float("inf"), "fast": float("inf")}
    results = {}
    for _ in range(max(1, repeats)):
        for engine in ("reference", "fast"):
            result, elapsed = _measure_once(letter, spec, config, trace, engine)
            results[engine] = result
            best[engine] = min(best[engine], elapsed)
    reference_result = results["reference"]
    fast_result = results["fast"]
    reference_rate = len(trace) / best["reference"]
    fast_rate = len(trace) / best["fast"]
    return BenchResult(
        design=letter,
        design_name=fast_result.design,
        records=len(trace),
        fast_records_per_sec=fast_rate,
        reference_records_per_sec=reference_rate,
        speedup=fast_rate / reference_rate,
        cpi=fast_result.cpi,
        offchip_rate=fast_result.metadata.get("offchip_rate", 0.0),
        stats_match=(
            fast_result.stats.to_dict() == reference_result.stats.to_dict()
            and fast_result.cpi == reference_result.cpi
        ),
    )


def run_bench(
    *,
    designs: Iterable[str] = ("P", "A", "S", "R", "I"),
    workload: str = "oltp-db2",
    num_records: int = DEFAULT_BENCH_RECORDS,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    repeats: int = DEFAULT_BENCH_REPEATS,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the engine benchmark and return the JSON-ready payload."""
    letters = [normalize_design(d) for d in designs]
    spec = get_workload(workload)
    config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    generator = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale)
    trace = generator.generate(num_records)
    # Materialise both trace representations up front so the timings measure
    # replay, not one-time trace preparation (the seed engine consumed a
    # prebuilt record list; the fast engine consumes the columnar rows).
    trace.records
    trace.hot_rows(config.block_size, config.page_size)

    results = []
    for letter in letters:
        if progress:
            progress(f"benchmarking {letter} on {workload} ({num_records} records)")
        results.append(bench_design(letter, spec, config, trace, repeats=repeats))

    return {
        "benchmark": "trace-engine-records-per-sec",
        "workload": workload,
        "records": num_records,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "baseline": "reference (seed replay path, repro.sim.seed_path)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "results": [result.to_dict() for result in results],
    }


def write_bench(payload: dict, path: str | Path = DEFAULT_BENCH_OUTPUT) -> Path:
    """Write the bench payload as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
