"""Engine micro-benchmarks: replay, trace generation and trace persistence.

``repro bench`` (see :mod:`repro.cli`) measures how many trace records per
second each cache design replays under

* the **fast** columnar engine (the default production path),
* the **batch** vectorised kernel (:mod:`repro.sim.batch`; designs outside
  its closed form fall back to the fast path, so their batch column simply
  tracks the fast number), and
* the **reference** seed engine (:mod:`repro.sim.seed_path`, the preserved
  pre-fast-path implementation),

on one freshly generated trace shared by all measurements.  Each (design,
engine) pair runs ``repeats`` times on a fresh chip and the best wall time
is kept; the reported ``speedup`` is fast/reference records per second and
``batch_speedup`` is batch/fast.  All engines' results are also compared
field by field, so every bench run doubles as an end-to-end equivalence
check.

``repro bench --traces`` measures the trace *pipeline* instead of the
replay engines (:func:`run_trace_bench`): generation throughput for static
and dynamic (event-carrying) traces, save/load throughput of the binary
columnar format (with its mmap round-trip cross-checked), and fast-engine
records/sec on a dynamic trace versus its static base — keeping the
event-splitting overhead and the mmap-vs-memory equivalence visible.
(The legacy JSON-lines comparison column left with the format itself.)

The JSON payloads written to ``BENCH_engine.json`` / ``BENCH_trace.json``
are stable input for CI artifacts and for tracking performance across
commits.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design, normalize_design
from repro.dynamics.generator import DynamicTraceGenerator
from repro.dynamics.scenarios import resolve_dynamic
from repro.sim.engine import TraceSimulator
from repro.sim.latency import CpiModel
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import get_workload
from repro.workloads.trace import Trace

#: Default trace length for a bench run (long enough to amortise warm-up).
DEFAULT_BENCH_RECORDS = 40_000

#: Trace length used by ``repro bench --quick`` (CI smoke).  Long enough
#: that the measurement is not dominated by the cold-start miss burst.
QUICK_BENCH_RECORDS = 16_000

#: Repeats used by ``repro bench --quick``.
QUICK_BENCH_REPEATS = 2

#: Default best-of repeats per (design, engine) measurement.
DEFAULT_BENCH_REPEATS = 3

#: Default output file name.
DEFAULT_BENCH_OUTPUT = "BENCH_engine.json"

#: Default trace length for ``repro bench --traces`` (the paper's
#: per-simulation trace length, where the >=10x binary-vs-JSON load claim
#: is pinned).
DEFAULT_TRACE_BENCH_RECORDS = 60_000

#: Default output file name for the trace-pipeline benchmark.
DEFAULT_TRACE_BENCH_OUTPUT = "BENCH_trace.json"

#: Dynamic scenario variant replayed by the trace bench.
TRACE_BENCH_VARIANT = "migrate"

#: Default output file name for the serving benchmark (``bench --serve``).
DEFAULT_SERVE_BENCH_OUTPUT = "BENCH_serve.json"

#: Default output file name for the Belady/OPT oracle benchmark.
DEFAULT_ORACLE_BENCH_OUTPUT = "BENCH_oracle.json"

#: Server workloads the oracle benchmark pins regret on (paper Table 2's
#: OLTP and web-server categories; >= 2 as the near-optimal claim requires).
ORACLE_BENCH_WORKLOADS = ("oltp-db2", "apache")

#: Trace length for the oracle benchmark: long enough that every design's
#: L2 sets fill and replacement actually happens (regret of an unfilled
#: cache is trivially zero).
DEFAULT_ORACLE_BENCH_RECORDS = 60_000

#: Quick-mode (CI smoke) geometry for ``bench --oracle --quick``: a shorter
#: trace on smaller caches, keeping real eviction pressure.
QUICK_ORACLE_BENCH_RECORDS = 20_000
QUICK_ORACLE_BENCH_SCALE = 64


@dataclass(frozen=True)
class BenchResult:
    """Throughput of one design under the three replay engines."""

    design: str
    design_name: str
    records: int
    fast_records_per_sec: float
    batch_records_per_sec: float
    reference_records_per_sec: float
    speedup: float
    batch_speedup: float
    cpi: float
    offchip_rate: float
    stats_match: bool
    batch_stats_match: bool

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "design_name": self.design_name,
            "records": self.records,
            "fast_records_per_sec": round(self.fast_records_per_sec, 1),
            "batch_records_per_sec": round(self.batch_records_per_sec, 1),
            "reference_records_per_sec": round(self.reference_records_per_sec, 1),
            "speedup": round(self.speedup, 3),
            "batch_speedup": round(self.batch_speedup, 3),
            "cpi": self.cpi,
            "offchip_rate": self.offchip_rate,
            "stats_match": self.stats_match,
            "batch_stats_match": self.batch_stats_match,
        }


def _measure_once(letter: str, spec, config: SystemConfig, trace, engine: str):
    """One replay of the trace on a fresh chip; returns (result, seconds)."""
    chip = TiledChip(config)
    design = build_design(letter, chip)
    simulator = TraceSimulator(design, CpiModel.for_workload(spec), engine=engine)
    start = time.perf_counter()
    result = simulator.run(trace)
    return result, time.perf_counter() - start


def bench_design(
    letter: str,
    spec,
    config: SystemConfig,
    trace,
    *,
    repeats: int = DEFAULT_BENCH_REPEATS,
) -> BenchResult:
    """Benchmark one design under the three engines on a shared trace.

    The engines are measured in interleaved repeats (reference, fast,
    batch, reference, fast, batch, ...) and the best wall time per engine
    is kept, so a transient machine-load burst cannot bias the ratios by
    landing entirely on one engine's measurements.
    """
    best = {"reference": float("inf"), "fast": float("inf"), "batch": float("inf")}
    results = {}
    for _ in range(max(1, repeats)):
        for engine in ("reference", "fast", "batch"):
            result, elapsed = _measure_once(letter, spec, config, trace, engine)
            results[engine] = result
            best[engine] = min(best[engine], elapsed)
    reference_result = results["reference"]
    fast_result = results["fast"]
    batch_result = results["batch"]
    reference_rate = len(trace) / best["reference"]
    fast_rate = len(trace) / best["fast"]
    batch_rate = len(trace) / best["batch"]
    fast_dict = fast_result.stats.to_dict()
    return BenchResult(
        design=letter,
        design_name=fast_result.design,
        records=len(trace),
        fast_records_per_sec=fast_rate,
        batch_records_per_sec=batch_rate,
        reference_records_per_sec=reference_rate,
        speedup=fast_rate / reference_rate,
        batch_speedup=batch_rate / fast_rate,
        cpi=fast_result.cpi,
        offchip_rate=fast_result.metadata.get("offchip_rate", 0.0),
        stats_match=(
            fast_dict == reference_result.stats.to_dict()
            and fast_result.cpi == reference_result.cpi
        ),
        batch_stats_match=(
            fast_dict == batch_result.stats.to_dict()
            and fast_result.cpi == batch_result.cpi
        ),
    )


def run_bench(
    *,
    designs: Iterable[str] = ("P", "A", "S", "R", "I"),
    workload: str = "oltp-db2",
    num_records: int = DEFAULT_BENCH_RECORDS,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    repeats: int = DEFAULT_BENCH_REPEATS,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the engine benchmark and return the JSON-ready payload."""
    letters = [normalize_design(d) for d in designs]
    spec = get_workload(workload)
    config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    generator = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale)
    trace = generator.generate(num_records)
    # Materialise both trace representations up front so the timings measure
    # replay, not one-time trace preparation (the seed engine consumed a
    # prebuilt record list; the fast engine consumes the columnar rows).
    trace.records
    trace.hot_rows(config.block_size, config.page_size)

    results = []
    for letter in letters:
        if progress:
            progress(f"benchmarking {letter} on {workload} ({num_records} records)")
        results.append(bench_design(letter, spec, config, trace, repeats=repeats))

    return {
        "benchmark": "trace-engine-records-per-sec",
        "workload": workload,
        "records": num_records,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "baseline": "reference (seed replay path, repro.sim.seed_path)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # repro: allow-wall-clock(report timestamp only; never feeds simulation)
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "results": [result.to_dict() for result in results],
    }


def write_bench(payload: dict, path: str | Path = DEFAULT_BENCH_OUTPUT) -> Path:
    """Write the bench payload as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# --------------------------------------------------------------------------- #
# Trace-pipeline benchmark (``repro bench --traces``)
# --------------------------------------------------------------------------- #


def _best_of(repeats: int, measure: Callable[[], float]) -> float:
    """Best wall time of ``repeats`` calls to ``measure`` (itself a timing)."""
    return min(measure() for _ in range(max(1, repeats)))


def _bench_generation(spec, dspec, config, num_records, scale, seed, repeats) -> dict:
    """Trace-synthesis throughput, static and dynamic (fresh generator each run)."""
    def static_once() -> float:
        start = time.perf_counter()
        SyntheticTraceGenerator(spec, config, seed=seed, scale=scale).generate(num_records)
        return time.perf_counter() - start

    def dynamic_once() -> float:
        start = time.perf_counter()
        DynamicTraceGenerator(dspec, config, seed=seed, scale=scale).generate(num_records)
        return time.perf_counter() - start

    return {
        "static_records_per_sec": round(num_records / _best_of(repeats, static_once), 1),
        "dynamic_records_per_sec": round(num_records / _best_of(repeats, dynamic_once), 1),
    }


def _bench_persistence(trace: Trace, repeats: int) -> dict:
    """Save/load throughput of the binary columnar (mmap) format."""
    num_records = len(trace)
    with tempfile.TemporaryDirectory(prefix="rnuca-bench-") as tmp:
        binary_path = Path(tmp) / "trace.npz"

        def binary_save() -> float:
            start = time.perf_counter()
            trace.save(binary_path)
            return time.perf_counter() - start

        def binary_load() -> float:
            start = time.perf_counter()
            Trace.load(binary_path)
            return time.perf_counter() - start

        binary_save_s = _best_of(repeats, binary_save)
        binary_load_s = _best_of(repeats, binary_load)
        round_trip_ok = Trace.load(binary_path).equals(trace)
        binary_bytes = binary_path.stat().st_size
    return {
        "binary_save_records_per_sec": round(num_records / binary_save_s, 1),
        "binary_load_records_per_sec": round(num_records / binary_load_s, 1),
        "binary_bytes": binary_bytes,
        "round_trip_ok": round_trip_ok,
    }


def _replay_rate(letter, spec, config, trace, repeats) -> tuple[float, object]:
    """Best-of fast-engine records/sec on ``trace``; returns (rate, result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        result, elapsed = _measure_once(letter, spec, config, trace, "fast")
        best = min(best, elapsed)
    return len(trace) / best, result


def _bench_dynamic_replay(
    letters, spec, config, static_trace, dynamic_trace, repeats, progress,
) -> list[dict]:
    """Fast-engine throughput with events in the stream vs the static base.

    For each design, the dynamic trace is also replayed from its
    memory-mapped binary form and the statistics compared, so the bench
    doubles as a zero-copy equivalence check.
    """
    with tempfile.TemporaryDirectory(prefix="rnuca-bench-") as tmp:
        stored = Path(tmp) / "dynamic.npz"
        dynamic_trace.save(stored)
        mmap_trace = Trace.load(stored)
        # Same pre-materialisation as the other traces: the timings must
        # compare replay against replay, not one-time row preparation.
        mmap_trace.hot_rows(config.block_size, config.page_size)
        rows = []
        for letter in letters:
            if progress:
                progress(f"replaying {letter} (static / dynamic / mmap)")
            static_rate, _ = _replay_rate(letter, spec, config, static_trace, repeats)
            dynamic_rate, memory_result = _replay_rate(
                letter, spec, config, dynamic_trace, repeats
            )
            mmap_rate, mmap_result = _replay_rate(letter, spec, config, mmap_trace, repeats)
            rows.append(
                {
                    "design": letter,
                    "static_records_per_sec": round(static_rate, 1),
                    "dynamic_records_per_sec": round(dynamic_rate, 1),
                    "mmap_records_per_sec": round(mmap_rate, 1),
                    "event_overhead": round(static_rate / dynamic_rate, 3),
                    "mmap_stats_match": (
                        mmap_result.stats.to_dict() == memory_result.stats.to_dict()
                        and mmap_result.cpi == memory_result.cpi
                    ),
                }
            )
    return rows


def run_trace_bench(
    *,
    designs: Iterable[str] = ("P", "R"),
    workload: str = "oltp-db2",
    variant: str = TRACE_BENCH_VARIANT,
    num_records: int = DEFAULT_TRACE_BENCH_RECORDS,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    repeats: int = DEFAULT_BENCH_REPEATS,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the trace-pipeline benchmark and return the JSON-ready payload."""
    letters = [normalize_design(d) for d in designs]
    scenario = f"{workload}:{variant}"
    spec = get_workload(workload)
    dspec = resolve_dynamic(scenario)
    config = SystemConfig.for_workload_category(spec.category).scaled(scale)

    if progress:
        progress(f"generating {workload} / {scenario} ({num_records} records)")
    generation = _bench_generation(spec, dspec, config, num_records, scale, seed, repeats)
    static_trace = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale).generate(
        num_records
    )
    dynamic_trace = DynamicTraceGenerator(dspec, config, seed=seed, scale=scale).generate(
        num_records
    )

    if progress:
        progress("timing save/load (binary columnar, mmap)")
    persistence = _bench_persistence(static_trace, repeats)

    # Materialise the replay representations up front so the replay timings
    # measure the engines, not one-time trace preparation.
    static_trace.hot_rows(config.block_size, config.page_size)
    dynamic_trace.hot_rows(config.block_size, config.page_size)
    replay = _bench_dynamic_replay(
        letters, spec, config, static_trace, dynamic_trace, repeats, progress
    )

    return {
        "benchmark": "trace-pipeline",
        "workload": workload,
        "scenario": scenario,
        "records": num_records,
        "events": len(dynamic_trace.events),
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "baseline": "static (event-free) replay",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # repro: allow-wall-clock(report timestamp only; never feeds simulation)
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "generation": generation,
        "persistence": persistence,
        "replay": replay,
    }


# --------------------------------------------------------------------------- #
# Belady/OPT oracle benchmark (``repro bench --oracle``)
# --------------------------------------------------------------------------- #


def run_oracle_bench(
    *,
    workloads: Iterable[str] = ORACLE_BENCH_WORKLOADS,
    designs: Iterable[str] = ("P", "A", "S", "R", "I"),
    policies: Iterable[str] = ("lru",),
    num_records: int = DEFAULT_ORACLE_BENCH_RECORDS,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Per-design placement regret vs the Belady/OPT replacement oracle.

    Replays each (workload, design) pair twice on one shared trace — once
    with clairvoyant replacement, once per online policy — and reports the
    CPI and off-chip-rate gaps (see :mod:`repro.analysis.oracle`).  The
    committed ``BENCH_oracle.json`` pins the paper's "near-optimal" claim:
    R-NUCA with plain LRU stays within a small bound of offline-optimal
    replacement on the server workloads.
    """
    from repro.analysis.oracle import placement_regret

    rows: list[dict] = []
    for workload in workloads:
        rows.extend(
            regret.to_dict()
            for regret in placement_regret(
                workload,
                designs,
                policies=policies,
                num_records=num_records,
                scale=scale,
                seed=seed,
                progress=progress,
            )
        )
    return {
        "benchmark": "belady-oracle-placement-regret",
        "workloads": list(workloads),
        "records": num_records,
        "scale": scale,
        "seed": seed,
        "baseline": "Belady/OPT offline replacement (repro.analysis.oracle)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # repro: allow-wall-clock(report timestamp only; never feeds simulation)
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "results": rows,
    }


# --------------------------------------------------------------------------- #
# Serving benchmark (``repro bench --serve``)
# --------------------------------------------------------------------------- #


def run_serve_bench(**kwargs) -> dict:
    """Self-contained serving benchmark: in-process daemon + closed-loop load.

    Thin delegation to :func:`repro.serve.loadgen.run_serve_bench` (imported
    lazily so ``repro bench`` stays importable without the serve package in
    degraded environments); measures requests/sec and p50/p95/p99 latency
    with the warm/cold/dedupe split and writes ``BENCH_serve.json``.
    """
    from repro.serve.loadgen import run_serve_bench as _run

    return _run(**kwargs)
