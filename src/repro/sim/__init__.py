"""Trace-driven simulation engine, CPI accounting, statistics and sampling."""

from repro.sim.engine import SimulationResult, TraceSimulator, simulate_workload
from repro.sim.latency import CpiModel
from repro.sim.runner import (
    BatchResult,
    BatchRunner,
    ExperimentGrid,
    ExperimentPoint,
    ResultStore,
    execute_point,
    run_grid,
)
from repro.sim.sampling import ConfidenceInterval, sample_mean
from repro.sim.stats import SimulationStats

__all__ = [
    "TraceSimulator",
    "SimulationResult",
    "simulate_workload",
    "CpiModel",
    "SimulationStats",
    "ConfidenceInterval",
    "sample_mean",
    "BatchResult",
    "BatchRunner",
    "ExperimentGrid",
    "ExperimentPoint",
    "ResultStore",
    "execute_point",
    "run_grid",
]
