"""The CPI accounting model.

The trace-driven simulator does not model the out-of-order pipeline, so the
conversion from access latencies to CPI uses the standard decomposition

    CPI = busy CPI + sum over components (stall cycles / instructions)

with a per-component *overlap factor* that captures how much of the latency
an out-of-order core with speculative loads and store prefetching hides
(Section 5.1 notes the cores use these techniques).  Off-chip misses overlap
the most (memory-level parallelism); short L2 hits overlap the least.  The
factors affect absolute CPI but apply identically to every design, so
relative comparisons — the paper's results — are insensitive to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.designs.base import (
    L1_TO_L1,
    L2,
    OFF_CHIP,
    OTHER,
    RECLASSIFICATION,
    AccessOutcome,
)
from repro.errors import ConfigurationError
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace import TraceRecord

#: Fraction of each component's latency that stalls the core.
DEFAULT_STALL_FACTORS = {
    L2: 0.65,
    L1_TO_L1: 0.70,
    OFF_CHIP: 0.60,
    OTHER: 1.0,
    RECLASSIFICATION: 1.0,
}


@dataclass
class CpiModel:
    """Converts access outcomes into busy and stall cycle contributions."""

    busy_cpi: float
    stall_factors: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_STALL_FACTORS)
    )

    def __post_init__(self) -> None:
        if self.busy_cpi <= 0:
            raise ConfigurationError("busy CPI must be positive")
        for component, factor in self.stall_factors.items():
            if not 0.0 <= factor <= 1.0:
                raise ConfigurationError(
                    f"stall factor for {component} must be within [0, 1]"
                )

    @classmethod
    def for_workload(cls, spec: WorkloadSpec) -> "CpiModel":
        return cls(busy_cpi=spec.busy_cpi)

    def busy_cycles(self, record: TraceRecord) -> float:
        """Cycles the core spends computing between L2 references."""
        return self.busy_cpi * record.instructions

    def apply_overlap(self, outcome: AccessOutcome) -> AccessOutcome:
        """Scale each stall component by its overlap factor, in place."""
        for component in list(outcome.components):
            factor = self.stall_factors.get(component, 1.0)
            outcome.components[component] *= factor
        return outcome
