"""Closed-loop load generator for the simulation daemon (``repro loadgen``).

Modelled on the driver split of serving-systems load generators (a
*workload* describing what to request, a per-client *request engine*
issuing it): :class:`ServeWorkload` enumerates a deterministic request
sequence over a small pool of experiment points, and N
:class:`_ClientEngine` threads walk that sequence **closed-loop** — each
client has at most one request outstanding, sends the next only after the
previous response (plus an optional think time), and records per-request
latency and disposition.

Every client walks the *same* seeded sequence.  That is deliberate: all
clients issue the same first (cold) point within microseconds of each
other, so the daemon's in-flight dedupe is exercised on every run — one
client owns the simulation, the rest join it — and later passes over the
sequence measure the warm (store-hit) path.  The resulting
``BENCH_serve.json`` therefore splits latency into *cold* (``executed``)
and *warm* (``cached``/``deduped``) phases.

:func:`run_loadgen` drives an already-running daemon;
:func:`run_serve_bench` (used by ``repro bench --serve``) spins up an
in-process daemon on an ephemeral port, drives it, and shuts it down —
the self-contained mode that produces the committed baseline.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import platform
import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.faults import FaultPlan
from repro.serve.protocol import ProtocolError, ServeClient
from repro.sim.engine import DEFAULT_TRACE_LENGTH
from repro.sim.runner import ExperimentGrid, ExperimentPoint
from repro.workloads.generator import DEFAULT_SCALE

#: Default client (connection) count; the CI smoke and the committed
#: baseline both use at least this many.
DEFAULT_CLIENTS = 4

#: Default total request count across all clients.
DEFAULT_REQUESTS = 32

#: Default trace length per requested point (short: serving latency, not
#: simulation depth, is what the load generator measures).
DEFAULT_LOADGEN_RECORDS = 2_000

#: Default output file name.
DEFAULT_SERVE_BENCH_OUTPUT = "BENCH_serve.json"

#: Default output file name of the chaos soak (``repro bench --chaos``).
DEFAULT_CHAOS_OUTPUT = "BENCH_chaos.json"

#: The chaos soak's default fault plan: 10% worker crashes plus store-io,
#: slow-sim and client-disconnect noise (the ISSUE-pinned availability
#: claim).
DEFAULT_CHAOS_FAULTS = (
    "worker-crash:p=0.1;store-io:p=0.05;slow-sim:p=0.02,ms=500;"
    "client-disconnect:p=0.05"
)

#: Default fault seed of the chaos soak.  Chosen (not 0) so that under
#: :data:`DEFAULT_CHAOS_FAULTS` the default point mix provably loses at
#: least one pool worker to an injected crash — the soak then pins real
#: ``BrokenProcessPool`` recovery, not just the quiet path.
DEFAULT_CHAOS_FAULT_SEED = 2

#: An explicitly empty plan: injectors exist but never fire.  The chaos
#: bench's reference arm uses it to pin "no injection" regardless of any
#: ambient ``RNUCA_FAULTS`` in the environment.
NO_FAULTS = FaultPlan(specs=())

#: The warm phase: requests served straight from the result store.  A
#: ``deduped`` request also runs no simulation, but its latency is bound
#: to the cold execution it joined, so it is reported as its own bucket.
WARM_STATUSES = ("cached",)


@dataclass(frozen=True)
class ServeWorkload:
    """What the load generator asks for: a seeded sequence over a point mix.

    ``points`` is the unique pool; ``sequence(n)`` deterministically
    expands it into ``n`` requests (every point appears before any
    repeats, so each run has a full cold phase followed by warm passes).
    """

    points: tuple[ExperimentPoint, ...] = ()
    seed: int = 0
    think_ms: float = 0.0

    @classmethod
    def mixed(
        cls,
        workloads: tuple[str, ...],
        designs: tuple[str, ...],
        *,
        num_records: int = DEFAULT_LOADGEN_RECORDS,
        scale: int = DEFAULT_SCALE,
        seed: int = 0,
        think_ms: float = 0.0,
    ) -> ServeWorkload:
        """The standard mix: the (workloads x designs) grid at one length."""
        grid = ExperimentGrid(
            workloads=workloads,
            designs=designs,
            num_records=num_records,
            scale=scale,
            seed=seed,
        )
        return cls(points=tuple(grid.points()), seed=seed, think_ms=think_ms)

    def sequence(self, num_requests: int) -> list[ExperimentPoint]:
        """``num_requests`` points: seeded shuffles of the pool, repeated."""
        if not self.points:
            raise ValueError("ServeWorkload has no points")
        rng = random.Random(self.seed)
        out: list[ExperimentPoint] = []
        while len(out) < num_requests:
            batch = list(self.points)
            rng.shuffle(batch)
            out.extend(batch)
        return out[:num_requests]


def result_digest(result: dict[str, Any]) -> str:
    """Digest of a serialized result, for bit-identity comparison.

    Canonical JSON first, so key order (which the wire does not fix)
    cannot make two identical results look different.
    """
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class _RequestRecord:
    client: int
    index: int
    point_hash: str
    status: str
    latency_ms: float
    digest: str


@dataclass
class _ClientEngine:
    """One closed-loop client: connect, walk the sequence, record latency."""

    client_id: int
    host: str
    port: int
    requests: list[ExperimentPoint]
    think_s: float
    barrier: threading.Barrier
    connect_timeout: float
    client_retries: int | None = None
    records: list[_RequestRecord] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    retries_used: int = 0

    def run(self) -> None:
        try:
            with ServeClient(
                self.host,
                self.port,
                connect_timeout=self.connect_timeout,
                retries=self.client_retries,
            ) as client:
                try:
                    # All clients release together so identical cold requests
                    # overlap and exercise the daemon's in-flight dedupe.
                    self.barrier.wait()
                    for index, point in enumerate(self.requests):
                        start = time.perf_counter()
                        final = client.run(point.to_dict())
                        latency_ms = (time.perf_counter() - start) * 1000.0
                        self.records.append(
                            _RequestRecord(
                                client=self.client_id,
                                index=index,
                                point_hash=final["hash"],
                                status=final["status"],
                                latency_ms=latency_ms,
                                digest=result_digest(final["result"]),
                            )
                        )
                        if self.think_s > 0:
                            time.sleep(self.think_s)
                finally:
                    self.retries_used = client.transient_retries
        # repro: allow-broad-except(any client failure is a recorded loadgen error, not a crash)
        except Exception as error:
            self.errors.append(f"client {self.client_id}: {error}")
            with contextlib.suppress(threading.BrokenBarrierError):
                self.barrier.abort()


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def _latency_summary(latencies_ms: list[float]) -> dict[str, float]:
    ordered = sorted(latencies_ms)
    return {
        "count": len(ordered),
        "mean_ms": round(sum(ordered) / len(ordered), 3) if ordered else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p95_ms": round(_percentile(ordered, 0.95), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "max_ms": round(ordered[-1], 3) if ordered else 0.0,
    }


def run_loadgen(
    workload: ServeWorkload,
    *,
    host: str,
    port: int,
    clients: int = DEFAULT_CLIENTS,
    num_requests: int = DEFAULT_REQUESTS,
    connect_timeout: float = 10.0,
    client_retries: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Drive a running daemon closed-loop; return the JSON-ready payload.

    ``num_requests`` is the total across all clients, split as evenly as
    possible; every client draws from the same seeded sequence, so the
    mix deliberately contains duplicates (the dedupe/warm path is part of
    what is being measured).

    Beyond latency, the payload carries the robustness evidence the chaos
    bench compares on: ``result_digests`` maps each point hash to the
    digest of its serialized result (a digest *conflict within the run* is
    recorded as an error — two requests for one point must never see
    different answers) and ``client_retries`` counts transient failures
    the clients absorbed (shed requests, dropped connections).
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if num_requests < clients:
        raise ValueError("need at least one request per client")
    per_client = [
        num_requests // clients + (1 if i < num_requests % clients else 0)
        for i in range(clients)
    ]
    sequence = workload.sequence(max(per_client))
    barrier = threading.Barrier(clients)
    engines = [
        _ClientEngine(
            client_id=i,
            host=host,
            port=port,
            requests=sequence[: per_client[i]],
            think_s=workload.think_ms / 1000.0,
            barrier=barrier,
            connect_timeout=connect_timeout,
            client_retries=client_retries,
        )
        for i in range(clients)
    ]
    if progress:
        progress(
            f"{clients} clients x {per_client[0]} requests over "
            f"{len(workload.points)} unique points at {host}:{port}"
        )
    threads = [
        threading.Thread(target=engine.run, name=f"loadgen-{engine.client_id}")
        for engine in engines
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start

    records = [record for engine in engines for record in engine.records]
    errors = [error for engine in engines for error in engine.errors]
    by_status: dict[str, list[float]] = {}
    for record in records:
        by_status.setdefault(record.status, []).append(record.latency_ms)
    cold = by_status.get("executed", [])
    warm = [ms for status in WARM_STATUSES for ms in by_status.get(status, [])]

    digests: dict[str, str] = {}
    for record in records:
        known = digests.setdefault(record.point_hash, record.digest)
        if known != record.digest:
            errors.append(
                f"bit-identity violated within run: point {record.point_hash} "
                f"returned digests {known} and {record.digest}"
            )

    daemon_stats = None
    daemon_health = None
    try:
        with ServeClient(host, port, connect_timeout=connect_timeout) as client:
            daemon_stats = client.stats()
            daemon_health = client.health()
    except (ProtocolError, OSError) as error:
        errors.append(f"stats: {error}")

    all_latencies = [record.latency_ms for record in records]
    return {
        "benchmark": "serve-loadgen",
        "host": f"{host}:{port}",
        "clients": clients,
        "requests": len(records),
        "requested": num_requests,
        "unique_points": len(workload.points),
        "think_ms": workload.think_ms,
        "seed": workload.seed,
        "errors": len(errors),
        "error_messages": errors[:10],
        "wall_s": round(wall_s, 3),
        "requests_per_sec": round(len(records) / wall_s, 2) if wall_s > 0 else 0.0,
        "latency": _latency_summary(all_latencies),
        "cold": _latency_summary(cold),
        "warm": _latency_summary(warm),
        "deduped": _latency_summary(by_status.get("deduped", [])),
        "warm_speedup": (
            round(
                (sum(cold) / len(cold)) / (sum(warm) / len(warm)), 2
            )
            if cold and warm
            else None
        ),
        "status_counts": {status: len(ms) for status, ms in sorted(by_status.items())},
        "client_retries": sum(engine.retries_used for engine in engines),
        "result_digests": dict(sorted(digests.items())),
        "daemon_stats": daemon_stats,
        "daemon_health": daemon_health,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def run_serve_bench(
    *,
    workloads: tuple[str, ...] = ("mix", "oltp-db2"),
    designs: tuple[str, ...] = ("P", "R"),
    clients: int = DEFAULT_CLIENTS,
    num_requests: int = DEFAULT_REQUESTS,
    num_records: int = DEFAULT_LOADGEN_RECORDS,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    think_ms: float = 0.0,
    jobs: int = 1,
    results_dir: str | None = None,
    trace_dir: str | None = None,
    faults: FaultPlan | None = None,
    client_retries: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Self-contained serving benchmark: in-process daemon + loadgen.

    With ``results_dir=None`` the run uses a throwaway store, so every
    unique point is simulated cold exactly once and the warm/cold split
    reflects the daemon alone, not a developer's populated cache.

    ``faults`` pins the fault plan for *every* layer (runner, daemon,
    both stores); ``None`` inherits ``RNUCA_FAULTS`` from the
    environment, :data:`NO_FAULTS` pins injection off.
    """
    import tempfile

    from repro.serve.daemon import SimulationDaemon
    from repro.sim.runner import BatchRunner, ResultStore
    from repro.workloads.store import TraceStore

    workload = ServeWorkload.mixed(
        tuple(workloads),
        tuple(designs),
        num_records=num_records,
        scale=scale,
        seed=seed,
        think_ms=think_ms,
    )
    with tempfile.TemporaryDirectory(prefix="rnuca-serve-") as tmp:
        runner = BatchRunner(
            store=ResultStore(results_dir or f"{tmp}/results", faults=faults),
            jobs=jobs,
            trace_store=TraceStore(trace_dir or f"{tmp}/traces", faults=faults),
            faults=faults,
        )
        with SimulationDaemon(runner, port=0, faults=faults) as daemon:
            if progress:
                progress(f"daemon {daemon.describe()}")
            payload = run_loadgen(
                workload,
                host=daemon.host,
                port=daemon.port,
                clients=clients,
                num_requests=num_requests,
                client_retries=client_retries,
                progress=progress,
            )
    payload["mode"] = "in-process"
    payload["records"] = num_records
    payload["scale"] = scale
    payload["jobs"] = jobs
    payload["faults"] = faults.describe() if faults is not None else None
    return payload


def run_chaos_bench(
    *,
    workloads: tuple[str, ...] = ("mix", "oltp-db2"),
    designs: tuple[str, ...] = ("P", "R"),
    clients: int = DEFAULT_CLIENTS,
    num_requests: int = DEFAULT_REQUESTS,
    num_records: int = DEFAULT_LOADGEN_RECORDS,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    jobs: int = 2,
    faults: str = DEFAULT_CHAOS_FAULTS,
    fault_seed: int = DEFAULT_CHAOS_FAULT_SEED,
    client_retries: int = 5,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Chaos soak (``repro bench --chaos``): prove faults are invisible.

    Two identical in-process serve benchmarks run back to back: a
    reference arm under :data:`NO_FAULTS`, then a chaos arm under
    ``faults`` (default: 10% injected worker crashes plus store-io,
    slow-sim and client-disconnect noise).  The claim being pinned is the
    strongest the stack makes — under that plan, **zero client requests
    fail and every result is bit-identical to the fault-free run**,
    because crashed attempts are retried deterministically, corrupt store
    reads degrade to regeneration, and dropped connections resubmit
    content-addressed (hence replay-safe) points.

    The payload reports ``availability`` (answered/requested, the gated
    floor is 1.0) and ``identical_to_fault_free`` alongside the retry
    and fault counters that show the faults actually happened.
    """
    plan = FaultPlan.parse(faults, seed=fault_seed)
    if not plan.specs:
        raise ValueError("chaos bench needs a non-empty fault plan")
    common: dict[str, Any] = {
        "workloads": tuple(workloads),
        "designs": tuple(designs),
        "clients": clients,
        "num_requests": num_requests,
        "num_records": num_records,
        "scale": scale,
        "seed": seed,
        "jobs": jobs,
        "client_retries": client_retries,
    }
    if progress:
        progress("reference arm (faults pinned off)")
    reference = run_serve_bench(faults=NO_FAULTS, progress=progress, **common)
    if progress:
        progress(f"chaos arm under {plan.describe()}")
    chaos = run_serve_bench(faults=plan, progress=progress, **common)

    ref_digests: dict[str, str] = reference["result_digests"]
    chaos_digests: dict[str, str] = chaos["result_digests"]
    mismatched = sorted(
        point_hash
        for point_hash, digest in chaos_digests.items()
        if ref_digests.get(point_hash) != digest
    )
    requested = int(chaos["requested"])
    answered = int(chaos["requests"])
    failed = requested - answered
    identical = not mismatched and chaos["errors"] == 0 and failed == 0
    health = chaos.get("daemon_health") or {}
    return {
        "benchmark": "serve-chaos",
        "faults": plan.describe(),
        "fault_seed": fault_seed,
        "clients": clients,
        "requested": requested,
        "answered": answered,
        "failed_requests": failed,
        "errors": chaos["errors"],
        "error_messages": chaos["error_messages"],
        "availability": round(answered / requested, 6) if requested else 0.0,
        "identical_to_fault_free": identical,
        "mismatched_points": mismatched[:10],
        "client_retries": chaos["client_retries"],
        "runner_retries": health.get("retries"),
        "pool_rebuilds": health.get("pool_rebuilds"),
        "injected_faults": health.get("injected_faults"),
        "quarantined_results": health.get("quarantined_results"),
        "quarantined_traces": health.get("quarantined_traces"),
        "wall_s": chaos["wall_s"],
        "requests_per_sec": chaos["requests_per_sec"],
        "latency": chaos["latency"],
        "fault_free": {
            "requests_per_sec": reference["requests_per_sec"],
            "latency": reference["latency"],
            "errors": reference["errors"],
        },
        "records": num_records,
        "scale": scale,
        "jobs": jobs,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
