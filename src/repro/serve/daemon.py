"""The long-lived simulation daemon behind ``repro serve``.

One :class:`SimulationDaemon` owns one reentrant
:class:`~repro.sim.runner.BatchRunner` — and through it the warm worker
pool, the content-addressed :class:`~repro.sim.runner.ResultStore` and the
memory-mapped :class:`~repro.workloads.store.TraceStore` — and serves the
JSON-lines protocol of :mod:`repro.serve.protocol` to any number of
concurrent client connections (one handler thread each, via
:class:`socketserver.ThreadingTCPServer`).

What a persistent process buys over per-invocation ``repro run``:

* **No startup tax.**  Interpreter boot, imports, pool spin-up and trace
  materialisation are paid once; every request after the first rides the
  warm pool and the mmap'd trace cache.
* **Cross-client dedupe.**  Two clients requesting the same point while
  it is simulating share one execution
  (:meth:`~repro.sim.runner.BatchRunner.run_point`'s in-flight table);
  requests for already-stored points are pure cache reads.
* **A measurable serving surface.**  Requests/sec at a latency percentile
  becomes a number the load generator (:mod:`repro.serve.loadgen`) can
  drive and CI can gate.
"""

from __future__ import annotations

import contextlib
import socketserver
import threading
import time
from typing import Any

from repro.check.locks import make_lock, note_write
from repro.serve.protocol import DEFAULT_SERVE_HOST, ProtocolError, decode_line, encode_line
from repro.sim.runner import BatchRunner, ExperimentPoint

__all__ = ["SimulationDaemon"]


class _ServeStats:
    """Thread-safe daemon counters (reported by the ``stats`` op)."""

    def __init__(self) -> None:
        self._lock = make_lock("daemon.stats")
        self.started_at = time.monotonic()
        self.connections = 0
        self.requests = 0
        self.executed = 0
        self.cached = 0
        self.deduped = 0
        self.errors = 0

    def bump(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)
            note_write("daemon.stats.counters", self._lock)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "connections": self.connections,
                "requests": self.requests,
                "executed": self.executed,
                "cached": self.cached,
                "deduped": self.deduped,
                "errors": self.errors,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
            }


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: read request lines, stream event lines."""

    # Small request/response frames on loopback: Nagle + delayed ACK would
    # add ~40ms to every exchange, swamping the warm-path latency.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        daemon: SimulationDaemon = self.server.daemon  # type: ignore[attr-defined]
        daemon.stats.bump("connections")
        for raw in self.rfile:
            raw = raw.strip()
            if not raw:
                continue
            daemon.stats.bump("requests")
            try:
                request = decode_line(raw)
            except ProtocolError as error:
                daemon.stats.bump("errors")
                self._emit({"event": "error", "error": str(error)})
                continue
            if not self._dispatch(daemon, request):
                return

    def _dispatch(self, daemon: SimulationDaemon, request: dict[str, Any]) -> bool:
        """Handle one request; False ends the connection (shutdown)."""
        op = request.get("op")
        if op == "ping":
            self._emit({"event": "pong"})
        elif op == "stats":
            self._emit({"event": "stats", "stats": daemon.stats.snapshot()})
        elif op == "shutdown":
            self._emit({"event": "shutting-down"})
            daemon.request_shutdown()
            return False
        elif op == "run":
            self._handle_run(daemon, request)
        else:
            daemon.stats.bump("errors")
            self._emit({"event": "error", "error": f"unknown op {op!r}"})
        return True

    def _handle_run(self, daemon: SimulationDaemon, request: dict[str, Any]) -> None:
        start = time.perf_counter()
        try:
            point = ExperimentPoint.from_dict(request["point"])
        except (KeyError, TypeError, ValueError) as error:
            daemon.stats.bump("errors")
            self._emit({"event": "error", "error": f"bad run request: {error}"})
            return

        def accepted(status: str) -> None:
            self._emit(
                {"event": "accepted", "hash": point.content_hash, "status": status}
            )

        try:
            result, status = daemon.runner.run_point(point, on_status=accepted)
        # repro: allow-broad-except(any simulation failure becomes an error event; daemon stays up)
        except Exception as error:
            daemon.stats.bump("errors")
            daemon.log(f"error     {point.label}: {error}")
            self._emit({"event": "error", "error": str(error)})
            return
        daemon.stats.bump(status)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        daemon.log(f"{status:9s} {point.label}  {elapsed_ms:.1f}ms")
        self._emit(
            {
                "event": "result",
                "hash": point.content_hash,
                "status": status,
                "elapsed_ms": round(elapsed_ms, 3),
                "point": point.to_dict(),
                "result": result.to_dict(),
            }
        )

    def _emit(self, payload: dict[str, Any]) -> None:
        with contextlib.suppress(BrokenPipeError, ConnectionResetError, ValueError):
            # Client went away; the simulation result is stored anyway.
            self.wfile.write(encode_line(payload))
            self.wfile.flush()


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True  # handler threads must not block process exit
    allow_reuse_address = True  # fast restart after an unclean daemon death


class SimulationDaemon:
    """Serve simulation requests over a loopback TCP socket.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` always
    reports the actual bound port.  ``serve_forever`` blocks the calling
    thread; ``start`` runs the serve loop on a background thread instead
    (the in-process mode the load-generator benchmark uses).
    """

    def __init__(
        self,
        runner: BatchRunner,
        *,
        host: str = DEFAULT_SERVE_HOST,
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        self.runner = runner
        self.stats = _ServeStats()
        self.quiet = quiet
        self._server = _Server((host, port), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._log_lock = make_lock("daemon.log")

    @property
    def host(self) -> str:
        return str(self._server.server_address[0])

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    def log(self, message: str) -> None:
        if not self.quiet:
            with self._log_lock:
                print(f"  {message}", flush=True)

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`request_shutdown` (or ^C)."""
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self.runner.close()

    def start(self) -> SimulationDaemon:
        """Serve on a background thread; returns self once listening."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Stop the serve loop (callable from any thread, incl. handlers)."""
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def stop(self, timeout: float = 10.0) -> None:
        """Shut down and join the background serve thread (if any)."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> SimulationDaemon:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def describe(self) -> str:
        store = self.runner.store.directory if self.runner.store else "(none)"
        traces = (
            self.runner.trace_store.directory if self.runner.trace_store else "(none)"
        )
        return (
            f"listening on {self.host}:{self.port} "
            f"(jobs={self.runner.jobs}, results={store}/, traces={traces}/)"
        )
