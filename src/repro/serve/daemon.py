"""The long-lived simulation daemon behind ``repro serve``.

One :class:`SimulationDaemon` owns one reentrant
:class:`~repro.sim.runner.BatchRunner` — and through it the warm worker
pool, the content-addressed :class:`~repro.sim.runner.ResultStore` and the
memory-mapped :class:`~repro.workloads.store.TraceStore` — and serves the
JSON-lines protocol of :mod:`repro.serve.protocol` to any number of
concurrent client connections (one handler thread each, via
:class:`socketserver.ThreadingTCPServer`).

What a persistent process buys over per-invocation ``repro run``:

* **No startup tax.**  Interpreter boot, imports, pool spin-up and trace
  materialisation are paid once; every request after the first rides the
  warm pool and the mmap'd trace cache.
* **Cross-client dedupe.**  Two clients requesting the same point while
  it is simulating share one execution
  (:meth:`~repro.sim.runner.BatchRunner.run_point`'s in-flight table);
  requests for already-stored points are pure cache reads.
* **A measurable serving surface.**  Requests/sec at a latency percentile
  becomes a number the load generator (:mod:`repro.serve.loadgen`) can
  drive and CI can gate.
"""

from __future__ import annotations

import contextlib
import socketserver
import sys
import threading
import time
from typing import Any

from repro import knobs
from repro.check.locks import TrackedLock, make_lock, note_write
from repro.faults import FaultInjector, FaultPlan, default_fault_plan
from repro.serve.protocol import DEFAULT_SERVE_HOST, ProtocolError, decode_line, encode_line
from repro.sim.runner import BatchRunner, ExperimentPoint

__all__ = ["SimulationDaemon"]


class _InjectedDisconnect(Exception):
    """Internal: drop this connection now, mid-request, replying nothing."""


class _ServeStats:
    """Thread-safe daemon counters (reported by the ``stats`` op)."""

    def __init__(self) -> None:
        self._lock = make_lock("daemon.stats")
        self.started_at = time.monotonic()
        self.connections = 0
        self.requests = 0
        self.executed = 0
        self.cached = 0
        self.deduped = 0
        self.errors = 0
        self.shed = 0
        self.idle_timeouts = 0
        self.injected_disconnects = 0

    def bump(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)
            note_write("daemon.stats.counters", self._lock)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "connections": self.connections,
                "requests": self.requests,
                "executed": self.executed,
                "cached": self.cached,
                "deduped": self.deduped,
                "errors": self.errors,
                "shed": self.shed,
                "idle_timeouts": self.idle_timeouts,
                "injected_disconnects": self.injected_disconnects,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
            }


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: read request lines, stream event lines."""

    # Small request/response frames on loopback: Nagle + delayed ACK would
    # add ~40ms to every exchange, swamping the warm-path latency.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        daemon: SimulationDaemon = self.server.daemon  # type: ignore[attr-defined]
        daemon.stats.bump("connections")
        idle_s = daemon.idle_timeout_s
        if idle_s > 0:
            # A stalled client must not pin this handler thread forever.
            self.connection.settimeout(idle_s)
        while True:
            try:
                raw = self.rfile.readline()
            except TimeoutError:
                daemon.stats.bump("idle_timeouts")
                self._emit(
                    {
                        "event": "error",
                        "error": (
                            f"idle connection closed after {idle_s:g}s "
                            "(RNUCA_SERVE_IDLE_S)"
                        ),
                    }
                )
                return
            except OSError:
                return  # peer reset mid-read; nothing left to answer
            if not raw:
                return  # clean EOF
            raw = raw.strip()
            if not raw:
                continue
            daemon.stats.bump("requests")
            try:
                request = decode_line(raw)
            except ProtocolError as error:
                daemon.stats.bump("errors")
                self._emit({"event": "error", "error": str(error)})
                continue
            try:
                if not self._dispatch(daemon, request):
                    return
            except _InjectedDisconnect:
                # The fault plan drops this connection abruptly: the client
                # sees EOF mid-request and must retry.  Any result is
                # already in the store, so the retry is a cache hit.
                return

    def _dispatch(self, daemon: SimulationDaemon, request: dict[str, Any]) -> bool:
        """Handle one request; False ends the connection (shutdown)."""
        op = request.get("op")
        if op == "ping":
            self._emit({"event": "pong"})
        elif op == "stats":
            self._emit({"event": "stats", "stats": daemon.stats.snapshot()})
        elif op == "health":
            self._emit({"event": "health", "health": daemon.health()})
        elif op == "shutdown":
            self._emit({"event": "shutting-down"})
            daemon.request_shutdown()
            return False
        elif op == "run":
            self._handle_run(daemon, request)
        else:
            daemon.stats.bump("errors")
            self._emit({"event": "error", "error": f"unknown op {op!r}"})
        return True

    def _handle_run(self, daemon: SimulationDaemon, request: dict[str, Any]) -> None:
        start = time.perf_counter()
        try:
            point = ExperimentPoint.from_dict(request["point"])
        except (KeyError, TypeError, ValueError) as error:
            daemon.stats.bump("errors")
            self._emit({"event": "error", "error": f"bad run request: {error}"})
            return
        if not daemon.try_admit():
            # Bounded admission: shed explicitly instead of queueing until
            # collapse.  "overloaded" is terminal for this request; the
            # client backs off and resubmits.
            daemon.stats.bump("shed")
            daemon.log(f"overloaded {point.label}")
            self._emit(
                {
                    "event": "overloaded",
                    "hash": point.content_hash,
                    "error": (
                        f"daemon at admission capacity "
                        f"({daemon.max_inflight} requests in flight); "
                        "retry with backoff"
                    ),
                }
            )
            return
        try:

            def accepted(status: str) -> None:
                self._emit(
                    {"event": "accepted", "hash": point.content_hash, "status": status}
                )

            try:
                result, status = daemon.runner.run_point(point, on_status=accepted)
            # repro: allow-broad-except(any simulation failure becomes an error event; daemon stays up)
            except Exception as error:
                daemon.stats.bump("errors")
                daemon.log(f"error     {point.label}: {error}")
                self._emit({"event": "error", "error": str(error)})
                return
            daemon.stats.bump(status)
            if daemon.injects_disconnect(point.content_hash):
                daemon.stats.bump("injected_disconnects")
                daemon.log(f"inject    client-disconnect {point.label}")
                raise _InjectedDisconnect
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            daemon.log(f"{status:9s} {point.label}  {elapsed_ms:.1f}ms")
            self._emit(
                {
                    "event": "result",
                    "hash": point.content_hash,
                    "status": status,
                    "elapsed_ms": round(elapsed_ms, 3),
                    "point": point.to_dict(),
                    "result": result.to_dict(),
                }
            )
        finally:
            daemon.release_admission()

    def _emit(self, payload: dict[str, Any]) -> None:
        with contextlib.suppress(BrokenPipeError, ConnectionResetError, ValueError):
            # Client went away; the simulation result is stored anyway.
            self.wfile.write(encode_line(payload))
            self.wfile.flush()


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True  # handler threads must not block process exit
    allow_reuse_address = True  # fast restart after an unclean daemon death


class SimulationDaemon:
    """Serve simulation requests over a loopback TCP socket.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` always
    reports the actual bound port.  ``serve_forever`` blocks the calling
    thread; ``start`` runs the serve loop on a background thread instead
    (the in-process mode the load-generator benchmark uses).
    """

    def __init__(
        self,
        runner: BatchRunner,
        *,
        host: str = DEFAULT_SERVE_HOST,
        port: int = 0,
        quiet: bool = True,
        faults: FaultPlan | None = None,
        idle_timeout_s: float | None = None,
        max_inflight: int | None = None,
    ) -> None:
        self.runner = runner
        self.stats = _ServeStats()
        self.quiet = quiet
        plan = faults if faults is not None else default_fault_plan()
        self.fault_injector = FaultInjector(plan) if plan is not None else None
        self.idle_timeout_s = (
            idle_timeout_s if idle_timeout_s is not None else knobs.serve_idle_s()
        )
        self.max_inflight = (
            max_inflight if max_inflight is not None else knobs.serve_max_inflight()
        )
        self._admission = threading.BoundedSemaphore(self.max_inflight)
        self._inflight_count = 0
        self._inflight_lock: TrackedLock = make_lock("daemon.inflight")
        self._server = _Server((host, port), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._log_lock = make_lock("daemon.log")

    # ------------------------------------------------------------------ #
    # Admission control and fault injection
    # ------------------------------------------------------------------ #
    def try_admit(self) -> bool:
        """Claim an admission slot without blocking; False = shed."""
        admitted = self._admission.acquire(blocking=False)
        if admitted:
            with self._inflight_lock:
                self._inflight_count += 1
                note_write("daemon.inflight_count", self._inflight_lock)
        return admitted

    def release_admission(self) -> None:
        with self._inflight_lock:
            self._inflight_count -= 1
            note_write("daemon.inflight_count", self._inflight_lock)
        self._admission.release()

    def in_flight(self) -> int:
        """Run requests currently admitted and not yet answered."""
        with self._inflight_lock:
            return self._inflight_count

    def injects_disconnect(self, key: str) -> bool:
        return self.fault_injector is not None and self.fault_injector.fires(
            "client-disconnect", key
        )

    def health(self) -> dict[str, Any]:
        """The ``health`` op payload: recovery and degradation counters."""
        stats = self.stats.snapshot()
        return {
            "status": "ok",
            "in_flight": self.in_flight(),
            "admission_limit": self.max_inflight,
            **self.runner.stats_snapshot(),
            "shed": stats["shed"],
            "idle_timeouts": stats["idle_timeouts"],
            "quarantined_results": (
                self.runner.store.quarantined if self.runner.store else 0
            ),
            "quarantined_traces": (
                self.runner.trace_store.quarantined
                if self.runner.trace_store
                else 0
            ),
            "injected_faults": (
                self.fault_injector.counters() if self.fault_injector else {}
            ),
        }

    @property
    def host(self) -> str:
        return str(self._server.server_address[0])

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    def log(self, message: str) -> None:
        if not self.quiet:
            with self._log_lock:
                print(f"  {message}", flush=True)

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`request_shutdown` (or ^C)."""
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self.runner.close()

    def start(self) -> SimulationDaemon:
        """Serve on a background thread; returns self once listening."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Stop the serve loop (callable from any thread, incl. handlers)."""
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def stop(self, timeout: float = 10.0) -> bool:
        """Shut down and join the background serve thread (if any).

        Returns ``False`` — loudly, on stderr — when the serve thread
        failed to exit within ``timeout``: a hung shutdown must never look
        like a clean one (``repro serve --stop`` turns it into a non-zero
        exit).
        """
        self._server.shutdown()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            if thread.is_alive():
                print(
                    f"repro serve: daemon thread failed to stop within "
                    f"{timeout:.0f}s (handlers may be wedged)",
                    file=sys.stderr,
                    flush=True,
                )
                return False
            self._thread = None
        return True

    def __enter__(self) -> SimulationDaemon:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def describe(self) -> str:
        store = self.runner.store.directory if self.runner.store else "(none)"
        traces = (
            self.runner.trace_store.directory if self.runner.trace_store else "(none)"
        )
        return (
            f"listening on {self.host}:{self.port} "
            f"(jobs={self.runner.jobs}, results={store}/, traces={traces}/)"
        )
