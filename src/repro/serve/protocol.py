"""Wire protocol of the simulation daemon: JSON lines over a local socket.

The protocol is deliberately primitive — newline-delimited JSON over TCP
on loopback — so any client (a shell heredoc, ``nc``, the bundled load
generator) can speak it.  A connection carries a sequence of requests;
each request is one line, and the daemon answers with one or more event
lines, the last of which is always ``result``, ``error`` or the op's
single reply.

Requests
--------

``{"op": "run", "point": {...}}``
    Simulate (or fetch) one experiment point.  ``point`` is the
    :meth:`~repro.sim.runner.ExperimentPoint.to_dict` form.  The daemon
    streams::

        {"event": "accepted", "hash": "...", "status": "executing"}
        {"event": "result", "hash": "...", "status": "executed",
         "elapsed_ms": 12.3, "point": {...}, "result": {...}}

    ``accepted.status`` is ``executing`` (this request owns the
    simulation), ``joined`` (an identical point is already in flight;
    the request shares it) or ``cached`` (served from the result store).
    ``result.status`` is the corresponding final disposition
    (``executed`` / ``deduped`` / ``cached``) and ``result.result`` is
    the full serialized :class:`~repro.sim.engine.SimulationResult`.

    When the daemon is at its admission bound (``RNUCA_SERVE_MAX_INFLIGHT``
    run requests already executing) the run is **shed** instead of queued::

        {"event": "overloaded", "hash": "...", "error": "..."}

    ``overloaded`` is terminal for the request; the client backs off and
    resubmits (safe: points are content-addressed and deduped).

``{"op": "ping"}``
    Liveness probe; answered with ``{"event": "pong"}``.

``{"op": "stats"}``
    Daemon counters; answered with ``{"event": "stats", "stats": {...}}``
    (requests, executed, cached, deduped, errors, shed, idle timeouts,
    uptime).

``{"op": "health"}``
    Robustness introspection; answered with ``{"event": "health",
    "health": {...}}`` — worker-pool generation and rebuild/retry
    counters, in-flight count against the admission limit, shed count,
    store-quarantine counters and (under an ``RNUCA_FAULTS`` plan) the
    per-site injected-fault counts.

``{"op": "shutdown"}``
    Answered with ``{"event": "shutting-down"}``, then the daemon stops
    accepting connections and exits its serve loop cleanly.

Any malformed line or failed simulation is answered with
``{"event": "error", "error": "..."}``; the connection stays usable.  A
connection idle longer than ``RNUCA_SERVE_IDLE_S`` is answered with a
final ``error`` event and closed.

:class:`ServeClient` wraps one connection with blocking helpers for each
op; it is what the load generator and the tests use.  Its ``run`` retries
*transient* failures — a dropped connection
(:class:`DaemonDisconnected`), a shed request (:class:`DaemonOverloaded`)
— with bounded exponential backoff up to ``RNUCA_CLIENT_RETRIES`` times;
genuine daemon ``error`` events are never retried.
"""

from __future__ import annotations

import contextlib
import json
import socket
import time
from collections.abc import Iterator
from typing import Any

from repro import knobs
from repro.errors import SimulationError

#: Environment variable overriding the daemon's bind/connect host.
SERVE_HOST_ENV = knobs.SERVE_HOST.name

#: Environment variable overriding the daemon's port.
SERVE_PORT_ENV = knobs.SERVE_PORT.name

#: Default loopback host: the daemon is a *local* service.
DEFAULT_SERVE_HOST = "127.0.0.1"

#: Default TCP port (an unremarkable high port; override with --port).
DEFAULT_SERVE_PORT = 7781


def default_serve_host() -> str:
    return knobs.serve_host()


def default_serve_port() -> int:
    return knobs.serve_port()


def encode_line(payload: dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline (the frame delimiter)."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one protocol line; raises :class:`ProtocolError` on garbage."""
    try:
        payload = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed protocol line: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(f"protocol line must be a JSON object, got {type(payload).__name__}")
    return payload


class ProtocolError(SimulationError):
    """A malformed frame, an unexpected event, or a daemon-side error."""


class DaemonDisconnected(ProtocolError):
    """The connection died mid-request (EOF/reset); safe to retry."""


class DaemonOverloaded(ProtocolError):
    """The daemon shed the request (admission bound); retry after backoff."""


#: Client-side retry backoff: exponential from the base, capped.
_CLIENT_BACKOFF_BASE_S = 0.05
_CLIENT_BACKOFF_CAP_S = 1.0


class ServeClient:
    """One blocking connection to the daemon.

    ``connect_timeout`` is a *retry window*, not a single-connect timeout:
    the constructor retries the TCP connect until the daemon is up or the
    window runs out, so a freshly backgrounded daemon (the CI smoke job)
    needs no separate readiness poll.

    ``retries`` bounds how many transient failures :meth:`run` absorbs
    (default: the ``RNUCA_CLIENT_RETRIES`` knob); :attr:`transient_retries`
    counts the absorptions over the client's lifetime.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        connect_timeout: float = 10.0,
        retries: int | None = None,
    ) -> None:
        self.host = host or default_serve_host()
        self.port = port if port is not None else default_serve_port()
        self.connect_timeout = connect_timeout
        self.retries = retries if retries is not None else knobs.client_retries()
        self.transient_retries = 0
        self._sock = self._connect(connect_timeout)
        self._reader = self._sock.makefile("rb")

    def _connect(self, window: float) -> socket.socket:
        deadline = time.monotonic() + window
        while True:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=None)
                # Frames are tiny; Nagle + delayed ACK would add ~40ms each.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ProtocolError(
                        f"cannot connect to daemon at {self.host}:{self.port} "
                        f"within {window:.1f}s: {error}"
                    ) from error
                time.sleep(0.05)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Request helpers
    # ------------------------------------------------------------------ #
    def _send(self, payload: dict[str, Any]) -> None:
        self._sock.sendall(encode_line(payload))

    def _read_event(self) -> dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise DaemonDisconnected("daemon closed the connection mid-request")
        return decode_line(line)

    def _reconnect(self) -> None:
        with contextlib.suppress(OSError):
            self.close()
        self._sock = self._connect(self.connect_timeout)
        self._reader = self._sock.makefile("rb")

    def run_events(self, point_dict: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Send a run request; yield every event line up to the final one."""
        self._send({"op": "run", "point": point_dict})
        while True:
            event = self._read_event()
            yield event
            if event.get("event") in ("result", "error", "overloaded"):
                return

    def _run_once(self, point_dict: dict[str, Any]) -> dict[str, Any]:
        final: dict[str, Any] = {}
        for event in self.run_events(point_dict):
            final = event
        if final.get("event") == "overloaded":
            raise DaemonOverloaded(f"daemon shed the request: {final.get('error')}")
        if final.get("event") == "error":
            raise ProtocolError(f"daemon error: {final.get('error')}")
        return final

    def run(self, point_dict: dict[str, Any]) -> dict[str, Any]:
        """Send a run request; return the final ``result`` event.

        Transient failures — a dropped connection, a shed request, a
        connection-level error — are retried with bounded exponential
        backoff up to :attr:`retries` times.  Resubmission is safe: points
        are content-addressed and deduped daemon-side, so a retry of
        already-finished work is a cache hit, never a second simulation
        with a different answer.  A daemon ``error`` event (a genuinely
        failed simulation) raises :class:`ProtocolError` without retry.
        """
        attempt = 0
        while True:
            try:
                return self._run_once(point_dict)
            except (DaemonOverloaded, DaemonDisconnected, ConnectionError) as error:
                if attempt >= self.retries:
                    raise
                attempt += 1
                self.transient_retries += 1
                time.sleep(
                    min(_CLIENT_BACKOFF_CAP_S, _CLIENT_BACKOFF_BASE_S * (2.0**attempt))
                )
                if not isinstance(error, DaemonOverloaded):
                    # The socket is dead (or poisoned mid-frame); start clean.
                    self._reconnect()

    def ping(self) -> bool:
        self._send({"op": "ping"})
        return self._read_event().get("event") == "pong"

    def stats(self) -> dict[str, Any]:
        self._send({"op": "stats"})
        event = self._read_event()
        if event.get("event") != "stats":
            raise ProtocolError(f"expected stats event, got {event}")
        stats = event["stats"]
        if not isinstance(stats, dict):
            raise ProtocolError(f"malformed stats event: {event}")
        return stats

    def health(self) -> dict[str, Any]:
        self._send({"op": "health"})
        event = self._read_event()
        if event.get("event") != "health":
            raise ProtocolError(f"expected health event, got {event}")
        health = event["health"]
        if not isinstance(health, dict):
            raise ProtocolError(f"malformed health event: {event}")
        return health

    def shutdown(self) -> bool:
        """Ask the daemon to stop; True when it acknowledged."""
        self._send({"op": "shutdown"})
        try:
            return self._read_event().get("event") == "shutting-down"
        except ProtocolError:
            return False  # it may drop the connection while winding down
