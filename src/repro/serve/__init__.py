"""Long-lived simulation serving: daemon, wire protocol and load generator.

``repro serve`` keeps one warm process — pool spun up, traces mmap'd,
result store attached — and serves experiment points to any number of
concurrent clients over a loopback JSON-lines protocol, deduplicating
identical in-flight requests.  ``repro loadgen`` is the closed-loop
driver that turns that into committed numbers (``BENCH_serve.json``).

See :mod:`repro.serve.daemon`, :mod:`repro.serve.protocol` and
:mod:`repro.serve.loadgen`.
"""

from repro.serve.daemon import SimulationDaemon
from repro.serve.loadgen import (
    ServeWorkload,
    run_chaos_bench,
    run_loadgen,
    run_serve_bench,
)
from repro.serve.protocol import (
    DaemonDisconnected,
    DaemonOverloaded,
    ProtocolError,
    ServeClient,
)

__all__ = [
    "DaemonDisconnected",
    "DaemonOverloaded",
    "ProtocolError",
    "ServeClient",
    "ServeWorkload",
    "SimulationDaemon",
    "run_chaos_bench",
    "run_loadgen",
    "run_serve_bench",
]
