"""Deterministic, seeded fault injection for the serve/runner stack.

The availability claim — "the daemon survives worker crashes, store
corruption and flaky clients with zero failed requests" — is only worth
making if it is *measurable* and *replayable*.  This module is the
measurement instrument: a registry of typed fault specifications parsed
from the ``RNUCA_FAULTS`` knob, and an injector whose every draw is a pure
function of ``(seed, site, key, sequence)``.  Two runs with the same plan,
seed and request sequence inject exactly the same faults, so a chaos
failure reproduces under a debugger instead of vanishing.

The grammar is ``site:p=<prob>[,ms=<delay>][,max=<count>]`` joined with
``;``::

    RNUCA_FAULTS="worker-crash:p=0.1;store-io:p=0.05;slow-sim:p=0.02,ms=500"

Fault sites (each named for the failure it simulates, not the layer that
handles it):

``worker-crash``
    The pool worker process dies mid-simulation (``os._exit``), producing
    a genuine ``BrokenProcessPool`` in the parent.  Inline execution
    (``jobs=1``) raises :class:`InjectedFault` instead — killing the only
    process would take the daemon down with it.
``store-io``
    A result/trace store read fails; the store degrades it to a cache
    miss (the caller re-executes).
``slow-sim``
    The simulation stalls for ``ms`` milliseconds before running —
    exercises per-point deadlines and tail latency.
``client-disconnect``
    The daemon drops the client connection after executing a request but
    before writing the response — the worst case for a client retry,
    because the work is done and only the reply is lost.

Draws are *sequence-addressed*: the injector keys each draw on the site,
a caller-supplied key (a point's content hash) and a sequence number (an
explicit attempt index, or a per-``(site, key)`` occurrence counter).
Keying on the attempt index is what lets a retry of a crashed point draw
*independently* — with a key-only draw, a point that crashed once would
crash identically on every retry, forever.

Injection is per-point / per-request / per-store-operation — never
per-record — so the hot replay loop pays nothing, and with ``RNUCA_FAULTS``
unset no injector exists at all and every fault check is a ``None`` test.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro import knobs
from repro.check.locks import TrackedLock, make_lock, note_write
from repro.errors import ReproError

__all__ = [
    "FAULT_SITES",
    "FaultConfigError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "backoff_with_jitter",
    "default_fault_plan",
    "fault_draw",
    "parse_faults",
]

#: Every injectable fault site (see the module docstring for semantics).
FAULT_SITES = ("worker-crash", "store-io", "slow-sim", "client-disconnect")


class FaultConfigError(ReproError):
    """An ``RNUCA_FAULTS`` plan string is malformed (bad site, bad value)."""


class InjectedFault(ReproError):
    """A deliberately injected, transient failure (safe to retry)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause: a site, a probability and its parameters.

    ``delay_ms`` only applies to ``slow-sim``.  ``max_fires`` caps how many
    times the spec fires *within one injector* (one process); it exists for
    tests that need "fail exactly once, then succeed" without hunting for
    a seed, and is process-local by construction — worker processes each
    build their own injector.
    """

    site: str
    probability: float
    delay_ms: float = 0.0
    max_fires: int | None = None


def _parse_clause(clause: str) -> FaultSpec:
    site, _, settings = clause.partition(":")
    site = site.strip()
    if site not in FAULT_SITES:
        known = ", ".join(FAULT_SITES)
        raise FaultConfigError(f"unknown fault site {site!r}; known sites: {known}")
    probability: float | None = None
    delay_ms = 0.0
    max_fires: int | None = None
    for item in filter(None, (part.strip() for part in settings.split(","))):
        name, separator, text = item.partition("=")
        if not separator:
            raise FaultConfigError(
                f"malformed fault setting {item!r} for {site!r}; expected name=value"
            )
        try:
            if name == "p":
                probability = float(text)
            elif name == "ms":
                delay_ms = float(text)
            elif name == "max":
                max_fires = int(text)
            else:
                raise FaultConfigError(
                    f"unknown fault setting {name!r} for {site!r}; known: p, ms, max"
                )
        except ValueError as error:
            raise FaultConfigError(
                f"bad value {text!r} for fault setting {name!r} of {site!r}"
            ) from error
    if probability is None:
        raise FaultConfigError(f"fault clause for {site!r} must set p=<probability>")
    if not 0.0 <= probability <= 1.0:
        raise FaultConfigError(
            f"fault probability for {site!r} must be in [0, 1], got {probability}"
        )
    if delay_ms < 0:
        raise FaultConfigError(f"fault delay for {site!r} cannot be negative")
    if max_fires is not None and max_fires < 0:
        raise FaultConfigError(f"max fires for {site!r} cannot be negative")
    return FaultSpec(
        site=site, probability=probability, delay_ms=delay_ms, max_fires=max_fires
    )


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse an ``RNUCA_FAULTS`` plan string into specs (loudly, on error)."""
    specs: list[FaultSpec] = []
    seen: set[str] = set()
    for clause in filter(None, (part.strip() for part in text.split(";"))):
        spec = _parse_clause(clause)
        if spec.site in seen:
            raise FaultConfigError(f"duplicate fault clause for site {spec.site!r}")
        seen.add(spec.site)
        specs.append(spec)
    return tuple(specs)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable fault plan: the specs plus the draw seed.

    Plans cross the process-pool boundary as executor ``initargs`` (plain
    dataclasses of primitives pickle by value), so parent and workers
    replay the same plan.
    """

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> FaultPlan:
        return cls(specs=parse_faults(text), seed=seed)

    def spec_for(self, site: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    def describe(self) -> str:
        """The plan back in knob-string form (for logs and bench payloads)."""
        clauses: list[str] = []
        for spec in self.specs:
            clause = f"{spec.site}:p={spec.probability:g}"
            if spec.delay_ms:
                clause += f",ms={spec.delay_ms:g}"
            if spec.max_fires is not None:
                clause += f",max={spec.max_fires}"
            clauses.append(clause)
        return ";".join(clauses)


def default_fault_plan() -> FaultPlan | None:
    """The plan from ``RNUCA_FAULTS``/``RNUCA_FAULT_SEED``, or ``None``.

    ``None`` — the default — means *no injector anywhere*: the hardened
    code paths skip every fault check with a single ``is None`` test, so
    production runs pay nothing.
    """
    text = knobs.faults()
    if not text:
        return None
    return FaultPlan(specs=parse_faults(text), seed=knobs.fault_seed())


def fault_draw(seed: int, site: str, key: str, sequence: int) -> float:
    """The injector's uniform draw in [0, 1): a pure function of its inputs.

    Hash-derived rather than stream-based so the draw for (site, key,
    sequence) is independent of every other draw — thread interleaving,
    request order and retry timing cannot change it.
    """
    material = f"{seed}|{site}|{key}|{sequence}".encode()
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big")).random()


def backoff_with_jitter(
    seed: int, key: str, attempt: int, *, base_s: float, cap_s: float
) -> float:
    """Bounded exponential backoff with deterministic (seeded) jitter.

    Full jitter in ``[base/2, base]`` de-synchronises retrying threads
    without sacrificing replayability: the delay is as pure a function of
    ``(seed, key, attempt)`` as the fault draws themselves.
    """
    exponential = min(cap_s, base_s * (2.0**attempt))
    fraction = fault_draw(seed, "backoff", key, attempt)
    return exponential * (0.5 + 0.5 * fraction)


class FaultInjector:
    """Draw (and count) fault firings for one process, thread-safely.

    ``fires`` with an explicit ``sequence`` (an attempt index) is fully
    stateless; without one, a per-``(site, key)`` occurrence counter
    supplies the sequence, so repeated operations on the same key draw
    independently while staying deterministic for a deterministic caller
    sequence.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock: TrackedLock = make_lock("faults.injector")
        self._occurrences: dict[tuple[str, str], int] = {}
        self._fired: dict[str, int] = dict.fromkeys(FAULT_SITES, 0)

    def fires(self, site: str, key: str, *, sequence: int | None = None) -> bool:
        """True when the fault at ``site`` fires for this (key, sequence)."""
        spec = self.plan.spec_for(site)
        if spec is None or spec.probability <= 0.0:
            return False
        with self._lock:
            if sequence is None:
                sequence = self._occurrences.get((site, key), 0)
                self._occurrences[(site, key)] = sequence + 1
                note_write("FaultInjector._occurrences", self._lock)
            if spec.max_fires is not None and self._fired[site] >= spec.max_fires:
                return False
            fired = fault_draw(self.plan.seed, site, key, sequence) < spec.probability
            if fired:
                self._fired[site] += 1
                note_write("FaultInjector._fired", self._lock)
        return fired

    def delay_s(self, site: str) -> float:
        """The configured delay for ``site``, in seconds (0 when unset)."""
        spec = self.plan.spec_for(site)
        return spec.delay_ms / 1000.0 if spec is not None else 0.0

    def counters(self) -> dict[str, int]:
        """How many times each site has fired in this process."""
        with self._lock:
            return dict(self._fired)
