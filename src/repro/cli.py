"""Command-line front end for the parallel experiment runner.

Subcommands:

``run``
    Enumerate an :class:`~repro.sim.runner.ExperimentGrid` from
    ``--workloads``/``--designs`` (plus optional ``--cluster-sizes``, the
    replay-time ``--scheduler`` axis and the L2 replacement-policy
    ``--policy`` axis), fan it out across ``--jobs``
    worker processes, and persist every
    :class:`~repro.sim.engine.SimulationResult` as a content-addressed JSON
    file under ``--results-dir``.  Re-running the same grid reports cache
    hits instead of re-simulating, so interrupted sweeps resume for free.

``report``
    Load everything in ``--results-dir`` and print per-workload CPI tables
    with speedups over the private baseline (the paper's normalisation),
    plus a scheduler-comparison table whenever adaptive-scheduler results
    are present.  An empty or missing results directory is not an error:
    the command prints a pointer to ``repro run`` and exits 0.

``bench``
    Measure the trace engine's records/sec per design — fast columnar path
    vs the preserved seed path — and write ``BENCH_engine.json``
    (see :mod:`repro.sim.bench`).  ``bench --traces`` measures the trace
    pipeline instead — generation, binary save/load, and dynamic
    (event-carrying) replay — and writes ``BENCH_trace.json``.
    ``bench --oracle`` measures each design's placement regret against the
    Belady/OPT replacement oracle (:mod:`repro.analysis.oracle`) and
    writes ``BENCH_oracle.json``.  ``bench --chaos`` soaks the serving
    stack under an injected-fault plan (:mod:`repro.faults`) and writes
    ``BENCH_chaos.json``, failing unless every client request succeeds
    with results bit-identical to a fault-free run.

``traces``
    Maintain the binary trace store: ``traces gc --max-bytes N`` evicts
    least-recently-used traces until the store fits the budget.

``serve``
    Run the long-lived simulation daemon (:mod:`repro.serve`): a warm
    worker pool, a shared mmap'd trace cache and the content-addressed
    result store behind a loopback JSON-lines endpoint, with identical
    in-flight requests deduplicated across clients.  ``serve --stop``
    asks a running daemon to shut down cleanly and exits non-zero if it
    does not actually stop within ten seconds.

``loadgen``
    Drive a running daemon closed-loop (N concurrent clients, think
    time, duplicated point mix) and write ``BENCH_serve.json`` with
    requests/sec, p50/p95/p99 latency and the warm/cold/dedupe split.

``list``
    Show the known workloads, designs, engines, schedulers and
    replacement policies.

Examples::

    python -m repro.cli run --designs private,shared,rnuca \\
        --workloads oltp-db2,apache --jobs 4
    python -m repro.cli run --workloads mix:adaptive --designs rnuca \\
        --scheduler fixed,greedy
    python -m repro.cli report
    python -m repro.cli bench --quick
    python -m repro.cli traces gc --max-bytes 500000000
    python -m repro.cli list

The full reference (every flag and ``RNUCA_*`` environment knob) lives in
``docs/CLI.md``.  The console script ``repro`` (see ``pyproject.toml``)
maps to :func:`main`.
"""

from __future__ import annotations

import argparse
import socket
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro import knobs
from repro.analysis.reporting import format_table
from repro.analysis.speedup import speedup_table
from repro.cache.policies import DEFAULT_POLICY, POLICIES
from repro.designs import DESIGNS, normalize_design
from repro.dynamics.adaptive import SCHEDULERS
from repro.dynamics.scenarios import DYNAMIC_VARIANTS, dynamic_workload_names
from repro.serve.loadgen import (
    DEFAULT_CHAOS_FAULT_SEED,
    DEFAULT_CHAOS_FAULTS,
    DEFAULT_CHAOS_OUTPUT,
    DEFAULT_CLIENTS,
    DEFAULT_LOADGEN_RECORDS,
    DEFAULT_REQUESTS,
    ServeWorkload,
    run_chaos_bench,
    run_loadgen,
)
from repro.serve.protocol import (
    DEFAULT_SERVE_PORT,
    ProtocolError,
    ServeClient,
    default_serve_host,
    default_serve_port,
)
from repro.sim.bench import (
    DEFAULT_BENCH_OUTPUT,
    DEFAULT_BENCH_RECORDS,
    DEFAULT_BENCH_REPEATS,
    DEFAULT_ORACLE_BENCH_OUTPUT,
    DEFAULT_ORACLE_BENCH_RECORDS,
    DEFAULT_SERVE_BENCH_OUTPUT,
    DEFAULT_TRACE_BENCH_OUTPUT,
    DEFAULT_TRACE_BENCH_RECORDS,
    ORACLE_BENCH_WORKLOADS,
    QUICK_BENCH_RECORDS,
    QUICK_BENCH_REPEATS,
    QUICK_ORACLE_BENCH_RECORDS,
    QUICK_ORACLE_BENCH_SCALE,
    run_bench,
    run_oracle_bench,
    run_serve_bench,
    run_trace_bench,
    write_bench,
)
from repro.sim.engine import DEFAULT_TRACE_LENGTH, ENGINES, default_engine
from repro.sim.runner import (
    DEFAULT_RESULTS_DIR,
    BatchRunner,
    ExperimentGrid,
    ResultStore,
    default_jobs,
)
from repro.workloads.generator import DEFAULT_SCALE
from repro.workloads.spec import WORKLOADS
from repro.workloads.store import DEFAULT_TRACE_DIR, TraceStore


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> list[int]:
    return [int(item) for item in _csv(text)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel R-NUCA experiment runner (grid -> cache -> report).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate an experiment grid in parallel")
    run.add_argument(
        "--workloads",
        type=_csv,
        default=list(WORKLOADS),
        help="comma-separated workload names (default: all eight); dynamic "
        "scenarios use <workload>:<variant>, e.g. oltp-db2:migrate,mix:phased",
    )
    run.add_argument(
        "--designs",
        type=_csv,
        default=["P", "A", "S", "R", "I"],
        help="comma-separated designs, letters or names (default: P,A,S,R,I)",
    )
    run.add_argument(
        "--records",
        type=int,
        default=DEFAULT_TRACE_LENGTH,
        help=f"L2 references per simulation (default: {DEFAULT_TRACE_LENGTH})",
    )
    run.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"system down-scale factor (default: {DEFAULT_SCALE})",
    )
    run.add_argument("--seed", type=int, default=0, help="base RNG seed (default: 0)")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $RNUCA_JOBS or 1)",
    )
    run.add_argument(
        "--cluster-sizes",
        type=_csv_ints,
        default=[],
        help="also sweep R-NUCA instruction-cluster sizes, e.g. 1,2,4",
    )
    run.add_argument(
        "--scheduler",
        type=_csv,
        default=[],
        help="replay-time scheduler axis: comma-separated names from "
        f"{', '.join(SCHEDULERS)} (e.g. fixed,greedy to compare); "
        "'fixed' replays schedules as generated",
    )
    run.add_argument(
        "--policy",
        type=_csv,
        default=None,
        help="L2 replacement-policy axis: comma-separated names from "
        f"{', '.join(POLICIES)} (e.g. lru,arc to compare); "
        "'lru' is the native default (default: $RNUCA_POLICY or lru)",
    )
    run.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help=f"JSON result store directory (default: {DEFAULT_RESULTS_DIR}/)",
    )
    run.add_argument(
        "--trace-dir",
        default=None,
        help="binary trace cache directory (default: $RNUCA_TRACE_DIR or "
        f"{DEFAULT_TRACE_DIR}/); each workload trace is generated once and "
        "memory-mapped by every worker",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress lines"
    )

    report = sub.add_parser("report", help="summarise stored results")
    report.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    report.add_argument(
        "--workloads",
        type=_csv,
        default=None,
        help="restrict the report to these workloads",
    )

    bench = sub.add_parser(
        "bench", help="measure engine records/sec per design (fast vs seed path)"
    )
    bench.add_argument(
        "--designs",
        type=_csv,
        default=None,
        help="comma-separated designs to benchmark "
        "(default: P,A,S,R,I; --serve: P,R)",
    )
    bench.add_argument(
        "--workload",
        default="oltp-db2",
        help="workload whose trace is replayed (default: oltp-db2)",
    )
    bench.add_argument(
        "--traces",
        action="store_true",
        help="benchmark the trace pipeline (generation, binary vs JSON "
        "save/load, dynamic replay) instead of the replay engines",
    )
    bench.add_argument(
        "--records",
        type=int,
        default=None,
        help=f"trace length (default: {DEFAULT_BENCH_RECORDS}, "
        f"--quick: {QUICK_BENCH_RECORDS}, "
        f"--traces: {DEFAULT_TRACE_BENCH_RECORDS})",
    )
    bench.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"system down-scale factor (default: {DEFAULT_SCALE})",
    )
    bench.add_argument("--seed", type=int, default=0, help="RNG seed (default: 0)")
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help=f"best-of repeats per measurement (default: {DEFAULT_BENCH_REPEATS}, "
        f"--quick: {QUICK_BENCH_REPEATS})",
    )
    bench.add_argument(
        "--output",
        default=None,
        help=f"JSON output path (default: {DEFAULT_BENCH_OUTPUT}, "
        f"--traces: {DEFAULT_TRACE_BENCH_OUTPUT})",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="short smoke run (fewer records and repeats)",
    )
    bench.add_argument(
        "--serve",
        action="store_true",
        help="benchmark the serving path instead: in-process daemon + "
        "closed-loop load generator, written to BENCH_serve.json",
    )
    bench.add_argument(
        "--oracle",
        action="store_true",
        help="benchmark placement regret vs the Belady/OPT replacement "
        "oracle instead, written to BENCH_oracle.json",
    )
    bench.add_argument(
        "--chaos",
        action="store_true",
        help="soak the serving stack under injected faults instead; fails "
        "unless all requests succeed bit-identical to a fault-free run "
        "(written to BENCH_chaos.json)",
    )
    bench.add_argument(
        "--faults",
        default=DEFAULT_CHAOS_FAULTS,
        help="(--chaos) fault plan, RNUCA_FAULTS syntax "
        f"(default: {DEFAULT_CHAOS_FAULTS})",
    )
    bench.add_argument(
        "--fault-seed",
        type=int,
        default=DEFAULT_CHAOS_FAULT_SEED,
        help="(--chaos) seed for the deterministic fault draws "
        f"(default: {DEFAULT_CHAOS_FAULT_SEED}, chosen so the default mix "
        "loses at least one pool worker)",
    )
    bench.add_argument(
        "--policy",
        type=_csv,
        default=None,
        help="(--oracle) online policies compared against the oracle "
        f"(names from {', '.join(POLICIES)}; default: lru)",
    )
    bench.add_argument(
        "--clients",
        type=int,
        default=None,
        help="(--serve/--chaos) concurrent closed-loop clients (default: 4)",
    )
    bench.add_argument(
        "--requests",
        type=int,
        default=None,
        help="(--serve/--chaos) total requests across all clients (default: 32)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="(--serve) daemon worker processes (default: $RNUCA_JOBS or 1; "
        "--chaos: at least 2, so worker crashes hit a real process pool)",
    )

    traces = sub.add_parser("traces", help="maintain the binary trace store")
    traces_sub = traces.add_subparsers(dest="traces_command", required=True)
    gc = traces_sub.add_parser(
        "gc", help="evict least-recently-used traces to fit a byte budget"
    )
    gc.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        help="keep the store at or below this many bytes of trace files",
    )
    gc.add_argument(
        "--trace-dir",
        default=None,
        help=f"trace store to sweep (default: $RNUCA_TRACE_DIR or {DEFAULT_TRACE_DIR}/)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )

    serve = sub.add_parser(
        "serve", help="run the long-lived simulation daemon (JSON lines over TCP)"
    )
    serve.add_argument(
        "--host",
        default=None,
        help="bind address (default: $RNUCA_SERVE_HOST or 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"TCP port; 0 picks an ephemeral port "
        f"(default: $RNUCA_SERVE_PORT or {DEFAULT_SERVE_PORT})",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes in the warm pool (default: $RNUCA_JOBS or 1)",
    )
    serve.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help=f"JSON result store directory (default: {DEFAULT_RESULTS_DIR}/)",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        help="binary trace cache directory (default: $RNUCA_TRACE_DIR or "
        f"{DEFAULT_TRACE_DIR}/)",
    )
    serve.add_argument(
        "--stop",
        action="store_true",
        help="do not start a daemon; ask the one at --host/--port to shut down",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )

    loadgen = sub.add_parser(
        "loadgen", help="drive a running daemon closed-loop and measure latency"
    )
    loadgen.add_argument(
        "--host",
        default=None,
        help="daemon address (default: $RNUCA_SERVE_HOST or 127.0.0.1)",
    )
    loadgen.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"daemon port (default: $RNUCA_SERVE_PORT or {DEFAULT_SERVE_PORT})",
    )
    loadgen.add_argument(
        "--clients",
        type=int,
        default=DEFAULT_CLIENTS,
        help=f"concurrent closed-loop clients (default: {DEFAULT_CLIENTS})",
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=DEFAULT_REQUESTS,
        help=f"total requests across all clients (default: {DEFAULT_REQUESTS})",
    )
    loadgen.add_argument(
        "--workloads",
        type=_csv,
        default=["mix", "oltp-db2"],
        help="workloads in the point mix (default: mix,oltp-db2)",
    )
    loadgen.add_argument(
        "--designs",
        type=_csv,
        default=["private", "rnuca"],
        help="designs in the point mix (default: private,rnuca)",
    )
    loadgen.add_argument(
        "--records",
        type=int,
        default=DEFAULT_LOADGEN_RECORDS,
        help=f"trace length per point (default: {DEFAULT_LOADGEN_RECORDS})",
    )
    loadgen.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"system down-scale factor (default: {DEFAULT_SCALE})",
    )
    loadgen.add_argument("--seed", type=int, default=0, help="mix RNG seed (default: 0)")
    loadgen.add_argument(
        "--think-ms",
        type=float,
        default=0.0,
        help="per-client think time between requests in ms (default: 0)",
    )
    loadgen.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to retry the first connect (daemon may still be booting)",
    )
    loadgen.add_argument(
        "--output",
        default=DEFAULT_SERVE_BENCH_OUTPUT,
        help=f"JSON output path (default: {DEFAULT_SERVE_BENCH_OUTPUT})",
    )
    loadgen.add_argument(
        "--shutdown",
        action="store_true",
        help="send the daemon a shutdown request after the run",
    )

    sub.add_parser("list", help="show known workloads, designs, engines, schedulers")

    check = sub.add_parser(
        "check",
        help="run the repo's contract checks (AST lints + strict typing gate)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    check.add_argument(
        "--no-mypy",
        action="store_true",
        help="skip the mypy strict typing gate (the AST lints still run)",
    )
    check.add_argument(
        "--rules",
        action="store_true",
        help="list the registered lint rules and exit",
    )
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    # No --policy falls back to the RNUCA_POLICY knob; the default "lru"
    # contributes no point parameter, so the grid (and every content hash)
    # is identical to a pre-axis run.
    policies = args.policy if args.policy else [knobs.policy()]
    grid = ExperimentGrid(
        workloads=tuple(args.workloads),
        designs=tuple(normalize_design(d) for d in args.designs),
        num_records=args.records,
        scale=args.scale,
        seed=args.seed,
        cluster_sizes=tuple(args.cluster_sizes),
        schedulers=tuple(args.scheduler),
        policies=tuple(policies),
    )
    store = ResultStore(args.results_dir)
    trace_store = TraceStore(args.trace_dir) if args.trace_dir else TraceStore.from_env()

    def progress(line: str) -> None:
        if not args.quiet:
            print(f"  {line}")

    jobs = args.jobs if args.jobs is not None else default_jobs()
    print(
        f"Running {len(grid)} experiment points "
        f"({len(grid.workloads)} workloads x {len(grid.designs)} designs"
        + (f" + {len(grid.cluster_sizes)}-size cluster sweep" if grid.cluster_sizes else "")
        + (f" x {len(grid.schedulers)} schedulers" if grid.schedulers else "")
        + (
            f" x {len(grid.policies)} policies"
            if set(grid.policies) != {DEFAULT_POLICY}
            else ""
        )
        + f") with {jobs} job(s); store: {store.directory}/; "
        + f"traces: {trace_store.directory}/"
    )
    batch = BatchRunner(
        store=store, jobs=jobs, progress=progress, trace_store=trace_store
    ).run(grid.points())
    print(
        f"Done: {batch.executed} simulated, {batch.cache_hits} cache hits, "
        f"{len(batch)} results in {store.directory}/"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.results_dir)
    try:
        pairs, skipped = store.load_all_with_errors()
    except OSError as error:
        print(f"Cannot read results under {store.directory}/: {error}")
        return 1
    if skipped:
        # Corrupt files are not silently dropped: name them so a damaged
        # cache is visible in the report instead of shrinking it.
        print(
            f"WARNING: skipped {len(skipped)} corrupt/unreadable result "
            f"file(s): {', '.join(path.name for path in skipped)}"
        )
    quarantined = store.quarantined_files()
    if quarantined:
        print(
            f"WARNING: {len(quarantined)} quarantined result file(s) under "
            f"{store.directory}/quarantine/: "
            f"{', '.join(path.name for path in quarantined)}"
        )
    if args.workloads:
        wanted = set(args.workloads)
        pairs = [(p, r) for p, r in pairs if p.workload in wanted]
    if not pairs:
        # Nothing stored (or nothing matching) is a clean no-op, not an
        # error: print a pointer and exit 0.
        print(f"No results under {store.directory}/ — run `repro run` first.")
        return 0
    rows = [
        {
            "point": point.label,
            "cpi": result.cpi,
            "ipc": result.ipc,
            "offchip_rate": result.metadata.get("offchip_rate", 0.0),
            "records": point.num_records,
        }
        for point, result in pairs
    ]
    print(format_table(rows, title=f"Stored results ({store.directory}/)"))
    phase_rows = [
        {
            "point": point.label,
            "phase": row["phase"],
            "accesses": row["accesses"],
            "cpi": row["cpi"],
        }
        for point, result in pairs
        for row in result.stats.phase_breakdown()
    ]
    if phase_rows:
        print()
        print(format_table(phase_rows, title="Per-phase CPI (dynamic scenarios)"))
    dynamic_rows = [
        {
            "point": point.label,
            "migrations": result.stats.thread_migrations,
            "reowns": result.stats.migration_reowns,
            "reclassifications": result.stats.reclassifications,
            "onsets": result.stats.sharing_onsets,
        }
        for point, result in pairs
        if result.metadata.get("dynamic")
    ]
    if dynamic_rows:
        print()
        print(
            format_table(
                dynamic_rows, title="OS re-classification activity (dynamic scenarios)"
            )
        )
    scheduler_rows = _scheduler_comparison(pairs)
    if scheduler_rows:
        print()
        print(
            format_table(
                scheduler_rows,
                title="Scheduler comparison (replay-time adaptive axis)",
            )
        )
    policy_rows = _policy_comparison(pairs)
    if policy_rows:
        print()
        print(
            format_table(
                policy_rows,
                title="Replacement-policy comparison (L2 policy axis)",
            )
        )
    # Figure 12 is defined over the fixed-schedule, native-LRU results;
    # adaptive/policy variants get their own comparison tables above.
    speedups = speedup_table(
        [
            result
            for point, result in pairs
            if "scheduler" not in point.param_dict
            and "l2_policy" not in point.param_dict
        ]
    )
    if speedups:
        print()
        print(format_table(speedups, title="Speedup over the private design (Fig. 12)"))
    return 0


def _scheduler_comparison(pairs) -> list[dict]:
    """Rows comparing replay-time schedulers on otherwise-identical points.

    Points are grouped by everything except the ``scheduler`` parameter;
    a group shows up as soon as it contains an adaptive result, with each
    row's CPI speedup over the group's ``fixed`` counterpart when one is
    stored.
    """
    groups: dict[tuple, list] = {}
    for point, result in pairs:
        params = point.param_dict
        scheduler = params.pop("scheduler", "fixed")
        key = (
            point.workload,
            point.design,
            point.num_records,
            point.scale,
            point.seed,
            tuple(sorted(params.items())),
        )
        groups.setdefault(key, []).append((scheduler, point, result))
    rows = []
    for key in sorted(groups, key=str):
        group = groups[key]
        if all(scheduler == "fixed" for scheduler, _, _ in group):
            continue
        fixed = next((r for s, _, r in group if s == "fixed"), None)
        for scheduler, point, result in sorted(group, key=lambda item: item[0]):
            imbalance = result.stats.window_imbalance
            rows.append(
                {
                    "point": f"{key[0]}/{key[1]}",
                    "scheduler": scheduler,
                    "cpi": result.cpi,
                    "adaptive_migrations": result.stats.adaptive_migrations,
                    "mean_imbalance": (
                        sum(imbalance) / len(imbalance) if imbalance else 0.0
                    ),
                    "vs_fixed": (
                        f"{(fixed.cpi / result.cpi - 1) * 100:+.1f}%"
                        if scheduler != "fixed" and fixed is not None and result.cpi
                        else ""
                    ),
                }
            )
    return rows


def _policy_comparison(pairs) -> list[dict]:
    """Rows comparing L2 replacement policies on otherwise-identical points.

    Same grouping scheme as :func:`_scheduler_comparison`: points grouped
    by everything except the ``l2_policy`` parameter, shown as soon as a
    group contains a non-LRU result, with each row's CPI speedup over the
    group's native-LRU counterpart when one is stored.
    """
    groups: dict[tuple, list] = {}
    for point, result in pairs:
        params = point.param_dict
        policy = params.pop("l2_policy", DEFAULT_POLICY)
        key = (
            point.workload,
            point.design,
            point.num_records,
            point.scale,
            point.seed,
            tuple(sorted(params.items())),
        )
        groups.setdefault(key, []).append((policy, point, result))
    rows = []
    for key in sorted(groups, key=str):
        group = groups[key]
        if all(policy == DEFAULT_POLICY for policy, _, _ in group):
            continue
        baseline = next((r for p, _, r in group if p == DEFAULT_POLICY), None)
        for policy, point, result in sorted(group, key=lambda item: item[0]):
            rows.append(
                {
                    "point": f"{key[0]}/{key[1]}",
                    "policy": policy,
                    "cpi": result.cpi,
                    "offchip_rate": result.metadata.get("offchip_rate", 0.0),
                    "vs_lru": (
                        f"{(baseline.cpi / result.cpi - 1) * 100:+.1f}%"
                        if policy != DEFAULT_POLICY
                        and baseline is not None
                        and result.cpi
                        else ""
                    ),
                }
            )
    return rows


def cmd_bench(args: argparse.Namespace) -> int:
    if args.traces:
        return cmd_bench_traces(args)
    if args.serve:
        return cmd_bench_serve(args)
    if args.oracle:
        return cmd_bench_oracle(args)
    if args.chaos:
        return cmd_bench_chaos(args)
    records = args.records
    repeats = args.repeats
    if args.quick:
        records = records if records is not None else QUICK_BENCH_RECORDS
        repeats = repeats if repeats is not None else QUICK_BENCH_REPEATS
    else:
        records = records if records is not None else DEFAULT_BENCH_RECORDS
        repeats = repeats if repeats is not None else DEFAULT_BENCH_REPEATS
    payload = run_bench(
        designs=args.designs or ["P", "A", "S", "R", "I"],
        workload=args.workload,
        num_records=records,
        scale=args.scale,
        seed=args.seed,
        repeats=repeats,
        progress=lambda line: print(f"  {line}"),
    )
    rows = [
        {
            "design": result["design"],
            "fast_rec/s": result["fast_records_per_sec"],
            "batch_rec/s": result["batch_records_per_sec"],
            "seed_rec/s": result["reference_records_per_sec"],
            "speedup": result["speedup"],
            "batch_x": result["batch_speedup"],
            "stats_match": result["stats_match"] and result["batch_stats_match"],
        }
        for result in payload["results"]
    ]
    print(
        format_table(
            rows,
            title=(
                f"Engine throughput on {payload['workload']} "
                f"({payload['records']} records, best of {payload['repeats']})"
            ),
        )
    )
    path = write_bench(payload, args.output or DEFAULT_BENCH_OUTPUT)
    print(f"Wrote {path}")
    mismatches = [
        r["design"]
        for r in payload["results"]
        if not (r["stats_match"] and r["batch_stats_match"])
    ]
    if mismatches:
        print(f"WARNING: engine stats mismatch for {', '.join(mismatches)}")
        return 1
    return 0


def cmd_bench_traces(args: argparse.Namespace) -> int:
    records = args.records
    repeats = args.repeats
    if args.quick:
        records = records if records is not None else QUICK_BENCH_RECORDS
        repeats = repeats if repeats is not None else QUICK_BENCH_REPEATS
    else:
        records = records if records is not None else DEFAULT_TRACE_BENCH_RECORDS
        repeats = repeats if repeats is not None else DEFAULT_BENCH_REPEATS
    payload = run_trace_bench(
        designs=args.designs or ["P", "A", "S", "R", "I"],
        workload=args.workload,
        num_records=records,
        scale=args.scale,
        seed=args.seed,
        repeats=repeats,
        progress=lambda line: print(f"  {line}"),
    )
    generation = payload["generation"]
    persistence = payload["persistence"]
    print(
        format_table(
            [
                {
                    "phase": "generate",
                    "static_rec/s": generation["static_records_per_sec"],
                    "dynamic_rec/s": generation["dynamic_records_per_sec"],
                },
            ],
            title=(
                f"Trace generation on {payload['workload']} / {payload['scenario']} "
                f"({payload['records']} records, best of {payload['repeats']})"
            ),
        )
    )
    print()
    print(
        format_table(
            [
                {
                    "path": "binary (.npz, mmap)",
                    "save_rec/s": persistence["binary_save_records_per_sec"],
                    "load_rec/s": persistence["binary_load_records_per_sec"],
                    "bytes": persistence["binary_bytes"],
                },
            ],
            title="Trace persistence (binary columnar, memory-mapped)",
        )
    )
    print()
    print(
        format_table(
            [
                {
                    "design": row["design"],
                    "static_rec/s": row["static_records_per_sec"],
                    "dynamic_rec/s": row["dynamic_records_per_sec"],
                    "mmap_rec/s": row["mmap_records_per_sec"],
                    "event_overhead": row["event_overhead"],
                    "mmap_stats_match": row["mmap_stats_match"],
                }
                for row in payload["replay"]
            ],
            title=f"Dynamic replay ({payload['events']} events in the stream)",
        )
    )
    path = write_bench(payload, args.output or DEFAULT_TRACE_BENCH_OUTPUT)
    print(f"Wrote {path}")
    problems = []
    if not persistence["round_trip_ok"]:
        problems.append("binary save/load round trip altered the trace")
    problems.extend(
        f"mmap/memory stats mismatch for {row['design']}"
        for row in payload["replay"]
        if not row["mmap_stats_match"]
    )
    if problems:
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1
    return 0


def cmd_bench_oracle(args: argparse.Namespace) -> int:
    records = args.records
    scale = args.scale
    if args.quick:
        records = records if records is not None else QUICK_ORACLE_BENCH_RECORDS
        if scale == DEFAULT_SCALE:
            scale = QUICK_ORACLE_BENCH_SCALE
    else:
        records = records if records is not None else DEFAULT_ORACLE_BENCH_RECORDS
    workloads = (
        (args.workload,) if args.workload != "oltp-db2" else ORACLE_BENCH_WORKLOADS
    )
    payload = run_oracle_bench(
        workloads=workloads,
        designs=tuple(args.designs or ["P", "A", "S", "R", "I"]),
        policies=tuple(args.policy or [DEFAULT_POLICY]),
        num_records=records,
        scale=scale,
        seed=args.seed,
        progress=lambda line: print(f"  {line}"),
    )
    rows = [
        {
            "point": f"{row['workload']}/{row['design']}",
            "policy": row["policy"],
            "policy_cpi": row["policy_cpi"],
            "oracle_cpi": row["oracle_cpi"],
            "regret_pct": row["cpi_regret_pct"],
            "offchip_regret": row["offchip_regret"],
        }
        for row in payload["results"]
    ]
    print(
        format_table(
            rows,
            title=(
                f"Placement regret vs Belady/OPT "
                f"({payload['records']} records, scale {payload['scale']})"
            ),
        )
    )
    path = write_bench(payload, args.output or DEFAULT_ORACLE_BENCH_OUTPUT)
    print(f"Wrote {path}")
    # A negative regret means an online policy beat the clairvoyant
    # schedule — for the exact-oracle designs that signals a bug, so it
    # fails loudly rather than being committed as a benchmark.
    impossible = [
        f"{row['workload']}/{row['design']}[{row['policy']}]"
        for row in payload["results"]
        if row["design"] in ("S", "I") and row["cpi_regret"] < 0
    ]
    if impossible:
        for label in impossible:
            print(f"WARNING: online policy beat the oracle on {label}")
        return 1
    return 0


def _print_serve_summary(payload: dict) -> None:
    rows = [
        {
            "phase": phase,
            "count": payload[phase]["count"],
            "mean_ms": payload[phase]["mean_ms"],
            "p50_ms": payload[phase]["p50_ms"],
            "p95_ms": payload[phase]["p95_ms"],
            "p99_ms": payload[phase]["p99_ms"],
        }
        for phase in ("latency", "cold", "warm", "deduped")
        if payload.get(phase, {}).get("count")
    ]
    print(
        format_table(
            rows,
            title=(
                f"Serving latency: {payload['clients']} clients, "
                f"{payload['requests']} requests over {payload['unique_points']} "
                f"unique points @ {payload['requests_per_sec']} req/s"
            ),
        )
    )
    stats = payload.get("daemon_stats")
    if stats:
        print(
            f"  daemon: executed={stats['executed']} cached={stats['cached']} "
            f"deduped={stats['deduped']} errors={stats['errors']}"
        )
    if payload.get("warm_speedup"):
        print(f"  warm (store-hit) requests {payload['warm_speedup']}x faster than cold")


def cmd_bench_serve(args: argparse.Namespace) -> int:
    requests = args.requests if args.requests is not None else DEFAULT_REQUESTS
    clients = args.clients if args.clients is not None else DEFAULT_CLIENTS
    records = args.records
    if records is None:
        records = QUICK_BENCH_RECORDS // 8 if args.quick else DEFAULT_LOADGEN_RECORDS
    payload = run_serve_bench(
        workloads=tuple(dict.fromkeys(("mix", args.workload))),
        designs=tuple(args.designs or ["P", "R"]),
        clients=clients,
        num_requests=requests,
        num_records=records,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        progress=lambda line: print(f"  {line}"),
    )
    _print_serve_summary(payload)
    path = write_bench(payload, args.output or DEFAULT_SERVE_BENCH_OUTPUT)
    print(f"Wrote {path}")
    if payload["errors"]:
        for message in payload["error_messages"]:
            print(f"WARNING: {message}")
        return 1
    return 0


def cmd_bench_chaos(args: argparse.Namespace) -> int:
    requests = args.requests if args.requests is not None else DEFAULT_REQUESTS
    clients = args.clients if args.clients is not None else DEFAULT_CLIENTS
    records = args.records
    if records is None:
        records = QUICK_BENCH_RECORDS // 8 if args.quick else DEFAULT_LOADGEN_RECORDS
    payload = run_chaos_bench(
        workloads=tuple(dict.fromkeys(("mix", args.workload))),
        designs=tuple(args.designs or ["P", "R"]),
        clients=clients,
        num_requests=requests,
        num_records=records,
        scale=args.scale,
        seed=args.seed,
        # Crashes must kill real pool workers, so never run single-process.
        jobs=max(2, args.jobs if args.jobs is not None else default_jobs()),
        faults=args.faults,
        fault_seed=args.fault_seed,
        progress=lambda line: print(f"  {line}"),
    )
    injected = payload.get("injected_faults") or {}
    print(
        format_table(
            [
                {
                    "requested": payload["requested"],
                    "answered": payload["answered"],
                    "availability": payload["availability"],
                    "identical": payload["identical_to_fault_free"],
                    "client_retries": payload["client_retries"],
                    "pool_rebuilds": payload["pool_rebuilds"],
                }
            ],
            title=f"Chaos soak under {payload['faults']}",
        )
    )
    if injected:
        fired = ", ".join(f"{site}={count}" for site, count in sorted(injected.items()))
        print(f"  injected faults: {fired}")
    print(f"  p99 under faults: {payload['latency']['p99_ms']} ms "
          f"(fault-free: {payload['fault_free']['latency']['p99_ms']} ms)")
    path = write_bench(payload, args.output or DEFAULT_CHAOS_OUTPUT)
    print(f"Wrote {path}")
    problems = []
    if payload["failed_requests"]:
        problems.append(f"{payload['failed_requests']} client request(s) failed")
    if payload["errors"]:
        problems.extend(payload["error_messages"])
    if payload["mismatched_points"]:
        problems.append(
            "results under faults differ from the fault-free run: "
            + ", ".join(payload["mismatched_points"])
        )
    if problems:
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import SimulationDaemon

    host = args.host or default_serve_host()
    port = args.port if args.port is not None else default_serve_port()
    if args.stop:
        try:
            with ServeClient(host, port, connect_timeout=2.0) as client:
                acknowledged = client.shutdown()
        except (ProtocolError, OSError) as error:
            print(f"No daemon at {host}:{port}: {error}")
            return 1
        if not acknowledged:
            print(f"Daemon at {host}:{port} did not acknowledge the shutdown request")
            return 1
        # An acknowledgement only means the daemon *intends* to stop; poll
        # until the port actually closes so a wedged daemon exits non-zero.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                with socket.create_connection((host, port), timeout=0.5):
                    pass
            except OSError:
                print(f"Daemon at {host}:{port} shut down")
                return 0
            time.sleep(0.1)
        print(f"Daemon at {host}:{port} acknowledged but did not stop within 10s")
        return 1
    store = ResultStore(args.results_dir)
    trace_store = TraceStore(args.trace_dir) if args.trace_dir else TraceStore.from_env()
    runner = BatchRunner(
        store=store,
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        trace_store=trace_store,
    )
    daemon = SimulationDaemon(runner, host=host, port=port, quiet=args.quiet)
    print(f"repro serve: {daemon.describe()}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    print("repro serve: stopped cleanly")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    host = args.host or default_serve_host()
    port = args.port if args.port is not None else default_serve_port()
    workload = ServeWorkload.mixed(
        tuple(args.workloads),
        tuple(normalize_design(d) for d in args.designs),
        num_records=args.records,
        scale=args.scale,
        seed=args.seed,
        think_ms=args.think_ms,
    )
    payload = run_loadgen(
        workload,
        host=host,
        port=port,
        clients=args.clients,
        num_requests=args.requests,
        connect_timeout=args.connect_timeout,
        progress=lambda line: print(f"  {line}"),
    )
    _print_serve_summary(payload)
    path = write_bench(payload, args.output)
    print(f"Wrote {path}")
    if args.shutdown:
        try:
            with ServeClient(host, port, connect_timeout=args.connect_timeout) as client:
                client.shutdown()
            print(f"Sent shutdown to {host}:{port}")
        except (ProtocolError, OSError) as error:
            print(f"WARNING: shutdown request failed: {error}")
            return 1
    if payload["errors"]:
        for message in payload["error_messages"]:
            print(f"WARNING: {message}")
        return 1
    return 0


def cmd_traces(args: argparse.Namespace) -> int:
    if args.traces_command == "gc":
        return cmd_traces_gc(args)
    raise SystemExit(f"unknown traces subcommand {args.traces_command!r}")


def cmd_traces_gc(args: argparse.Namespace) -> int:
    store = TraceStore(args.trace_dir) if args.trace_dir else TraceStore.from_env()
    before = store.size_bytes()
    evicted = store.gc(args.max_bytes, dry_run=args.dry_run)
    freed = before - store.size_bytes() if not args.dry_run else sum(
        path.stat().st_size for path in evicted if path.exists()
    )
    verb = "would evict" if args.dry_run else "evicted"
    print(
        f"Trace store {store.directory}/: {before} bytes, budget {args.max_bytes}; "
        f"{verb} {len(evicted)} trace(s), {freed} bytes"
    )
    for path in evicted:
        print(f"  {verb} {path.name}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("Workloads: " + ", ".join(WORKLOADS))
    print(
        "Dynamic:   <workload>:<variant> with variants "
        + ", ".join(sorted(DYNAMIC_VARIANTS))
        + " (e.g. " + ", ".join(dynamic_workload_names(("oltp-db2",))) + ")"
    )
    print("Designs:   " + ", ".join(f"{letter} ({cls.__name__})" for letter, cls in DESIGNS.items()))
    print("Engines:   " + ", ".join(ENGINES) + f" (default: {default_engine()})")
    print(
        "Schedulers: " + ", ".join(SCHEDULERS)
        + " (replay-time axis, `repro run --scheduler`; fixed = as generated)"
    )
    print(
        "Policies:  " + ", ".join(POLICIES)
        + " (L2 replacement axis, `repro run --policy`; lru = native path)"
    )
    print("Env knobs:")
    for name in sorted(knobs.REGISTRY):
        knob = knobs.REGISTRY[name]
        default = f", default {knob.default}" if knob.default is not None else ""
        print(f"  {name} ({knob.kind}{default}): {knob.description}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: AST contract lints, then the strict typing gate."""
    from repro.check import RULES, STRICT_MODULES, check_paths, run_typing_gate

    if args.rules:
        for name in sorted(RULES):
            rule = RULES[name]
            print(f"{name:30s} [{rule.scope}] {rule.description}")
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else None
    findings = check_paths(paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"Lints: {len(findings)} finding(s)")
    else:
        print("Lints: clean")
    failed = bool(findings)
    if not args.no_mypy:
        gate = run_typing_gate()
        print(f"Typing gate [{gate.status}]: {', '.join(STRICT_MODULES)}")
        if gate.output and gate.status != "passed":
            print(gate.output)
        failed = failed or not gate.ok
    return 1 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "report": cmd_report,
        "bench": cmd_bench,
        "traces": cmd_traces,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "list": cmd_list,
        "check": cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
