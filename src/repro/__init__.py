"""Reactive NUCA (R-NUCA) reproduction library.

This package reproduces the system described in "Reactive NUCA: Near-Optimal
Block Placement and Replication in Distributed Caches" (Hardavellas, Ferdman,
Falsafi, Ailamaki — ISCA 2009) as a pure-Python, trace-driven tiled-CMP
simulator.

The package is organised as follows:

``repro.cmp``
    Tiled chip-multiprocessor model and the Table-1 system configurations.
``repro.cache``
    Set-associative cache arrays, MSHRs and victim caches.
``repro.coherence``
    MOSI coherence protocol and full-map directory.
``repro.interconnect``
    2-D folded-torus and mesh on-chip networks.
``repro.osmodel``
    Page table, TLBs and the OS-driven page classification of Section 4.3.
``repro.core``
    The paper's contribution: rotational interleaving, clusters and the
    R-NUCA placement policy.
``repro.designs``
    The five cache designs evaluated in the paper (private, ASR, shared,
    R-NUCA, ideal) behind a single interface.
``repro.workloads``
    Synthetic workload trace generators calibrated to the paper's own
    workload characterisation.
``repro.sim``
    The trace-driven simulation engine and CPI accounting model.
``repro.analysis``
    Regeneration of every figure and table in the paper's evaluation.
"""

from repro.cmp.config import SystemConfig
from repro.core.rnuca import RNucaPolicy
from repro.designs import (
    AsrDesign,
    CacheDesign,
    IdealDesign,
    PrivateDesign,
    RNucaDesign,
    SharedDesign,
    build_design,
)
from repro.sim.engine import SimulationResult, TraceSimulator, simulate_workload
from repro.workloads import WORKLOADS, WorkloadSpec, get_workload

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "RNucaPolicy",
    "CacheDesign",
    "PrivateDesign",
    "SharedDesign",
    "AsrDesign",
    "RNucaDesign",
    "IdealDesign",
    "build_design",
    "TraceSimulator",
    "SimulationResult",
    "simulate_workload",
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "__version__",
]
