"""The strict-typing gate (the third ``repro check`` pass).

mypy runs in strict mode over the modules whose contracts the rest of the
system leans on — the knob registry, the serve surface, the reentrant
runner and the trace store — with the configuration living in
``pyproject.toml`` (``[tool.mypy]``), so the CLI, CI and a bare ``mypy``
invocation all check the same thing.

mypy is a dev dependency, not a runtime one: in environments without it
(a minimal container, a fresh checkout) the gate reports *skipped* rather
than failing, and the ``typed-defs`` AST lint (:mod:`repro.check.lints`)
still enforces full annotation coverage on the same modules.  CI installs
mypy and runs the gate for real.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass
from importlib import util as importlib_util

__all__ = ["STRICT_MODULES", "TypeGateResult", "mypy_available", "run_typing_gate"]

#: Modules under the strict mypy gate, in dependency order.  Kept in sync
#: with ``[tool.mypy]`` in pyproject.toml and with
#: ``repro.check.lints.TYPED_PATH_SUFFIXES``.
STRICT_MODULES = (
    "repro.knobs",
    "repro.faults",
    "repro.workloads.store",
    "repro.sim.runner",
    "repro.serve.protocol",
    "repro.serve.daemon",
    "repro.serve.loadgen",
)


@dataclass(frozen=True)
class TypeGateResult:
    """Outcome of one typing-gate run."""

    status: str  # "passed" | "failed" | "skipped"
    output: str

    @property
    def ok(self) -> bool:
        return self.status in ("passed", "skipped")


def mypy_available() -> bool:
    """True when mypy is importable in this environment."""
    return importlib_util.find_spec("mypy") is not None


def run_typing_gate(timeout: float = 600.0) -> TypeGateResult:
    """Run mypy over the gated modules (config from pyproject.toml).

    The module list is passed explicitly (``-m`` per module) so the gate
    checks exactly :data:`STRICT_MODULES` regardless of the working
    directory, and ``follow_imports = silent`` in the shared config keeps
    errors scoped to the gated modules themselves.
    """
    if not mypy_available():
        return TypeGateResult(
            status="skipped",
            output="mypy is not installed; install dev dependencies to run "
            "the typing gate (CI runs it on every push)",
        )
    command = [sys.executable, "-m", "mypy"]
    for module in STRICT_MODULES:
        command.extend(["-m", module])
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=timeout, check=False
        )
    except (OSError, subprocess.TimeoutExpired) as error:
        return TypeGateResult(status="failed", output=f"mypy did not run: {error}")
    output = (completed.stdout + completed.stderr).strip()
    status = "passed" if completed.returncode == 0 else "failed"
    return TypeGateResult(status=status, output=output)
