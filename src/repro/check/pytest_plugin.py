"""Pytest plugin wiring the lock detector into the test suite.

Registered process-wide through ``addopts = "-p repro.check.pytest_plugin"``
in ``pyproject.toml`` and **opt-in at runtime**: with ``RNUCA_CHECK_LOCKS``
unset the plugin does nothing, so the plain suite pays no overhead.  With
``RNUCA_CHECK_LOCKS=1`` every tracked lock acquisition in the session —
the runner's in-flight/trace/pool locks, the daemon's stats/log locks,
whatever real concurrency the serve and runner suites create — feeds the
acquisition graph of :mod:`repro.check.locks`, and the session *errors* if
any lock-order inversion or unguarded shared-state write was observed.

CI runs the serve/runner test subset under this knob (the ``check`` job);
locally::

    RNUCA_CHECK_LOCKS=1 python -m pytest tests/test_serve.py tests/test_runner.py
"""

from __future__ import annotations

from collections.abc import Iterator

import pytest

from repro import knobs
from repro.check import locks


@pytest.fixture(scope="session", autouse=True)
def _rnuca_lock_check() -> Iterator[None]:
    """Enable tracking for the whole session; fail it on collected evidence.

    A session-scoped autouse fixture (rather than sessionfinish hooks) so
    a violation surfaces as an ordinary teardown error with a non-zero
    exit code — no exit-status plumbing.
    """
    if not knobs.check_locks():
        yield
        return
    locks.reset_lock_state()
    locks.enable_lock_tracking()
    try:
        yield
    finally:
        locks.disable_lock_tracking()
    inversions = locks.find_inversions()
    writes = locks.unguarded_writes()
    locks.reset_lock_state()
    problems = [violation.format() for violation in inversions] + [
        f"unguarded write: {message}" for message in writes
    ]
    if problems:
        pytest.fail(
            "RNUCA_CHECK_LOCKS found concurrency-contract violations:\n  "
            + "\n  ".join(problems),
            pytrace=False,
        )
