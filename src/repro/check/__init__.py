"""Contract-enforcing static analysis (``repro check``).

The simulator's correctness rests on invariants nothing used to enforce
mechanically: bit-identical replay across engines and job counts,
exactly-once trace generation, content-hash stability of the trace and
result stores, and the lock discipline inside the runner and the serve
daemon.  This package turns those contracts into three machine-checked
passes:

:mod:`repro.check.lints`
    AST-based contract lints over the source tree — determinism (no
    unseeded global RNG state, no wall-clock reads in the simulation
    packages), configuration hygiene (every environment read goes through
    :mod:`repro.knobs`), hash coverage (every field of a content-addressed
    dataclass is consumed by its fingerprint), exception discipline and
    annotation coverage for the strictly typed modules.

:mod:`repro.check.locks`
    A runtime lock-order/race detector: instrumented lock wrappers record
    the per-thread acquisition graph, flag lock-order inversions
    (potential deadlock cycles) and writes to registered shared state
    made outside any lock.  Opt in with ``RNUCA_CHECK_LOCKS=1`` under
    pytest (:mod:`repro.check.pytest_plugin`).

:mod:`repro.check.typegate`
    The strict-typing gate: runs mypy over the gated modules when it is
    installed (CI always installs it) and reports "skipped" otherwise —
    the AST annotation-coverage lint still runs either way, so the
    annotation contract is enforced even without mypy.

``repro check`` (see :mod:`repro.cli`) runs the lints and the typing gate
and exits non-zero on any finding; the lock detector runs under the test
suite, where there is real concurrency to observe.
"""

from __future__ import annotations

from repro.check.lints import RULES, Finding, Rule, check_paths, default_paths
from repro.check.typegate import STRICT_MODULES, TypeGateResult, run_typing_gate

__all__ = [
    "RULES",
    "STRICT_MODULES",
    "Finding",
    "Rule",
    "TypeGateResult",
    "check_paths",
    "default_paths",
    "run_typing_gate",
]
