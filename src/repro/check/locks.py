"""Runtime lock-order and data-race detection (TSan-style, in miniature).

The runner and the serve daemon are the repo's threaded surface, and PR 6
shipped a real store race that only a human caught.  This module makes the
lock discipline observable:

:func:`make_lock`
    The instrumented replacement for ``threading.Lock()`` used by
    :class:`~repro.sim.runner.BatchRunner` and
    :class:`~repro.serve.daemon.SimulationDaemon`.  Each returned
    :class:`TrackedLock` behaves exactly like a ``threading.Lock`` and,
    **when tracking is enabled**, records every acquisition into a
    per-thread held-lock stack and a global lock-order graph.

:func:`note_write`
    Declares "this statement writes shared state ``name``".  With tracking
    enabled, a write made while the current thread holds no tracked lock
    (or not the specific ``guard`` it was registered with) is recorded as
    an unguarded-write violation.

:func:`lock_report`
    The collected evidence: the acquisition-order edges, every lock-order
    *inversion* (a cycle in the order graph — two threads that nest the
    same locks in opposite orders can deadlock, even if this run got
    lucky), and every unguarded write.

Tracking is off by default and costs one attribute read per acquisition;
enable it programmatically (:func:`enable_lock_tracking`) or for a whole
pytest run with ``RNUCA_CHECK_LOCKS=1``
(:mod:`repro.check.pytest_plugin`), which fails the session on any
inversion or unguarded write.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = [
    "LockOrderViolation",
    "LockTracker",
    "TrackedLock",
    "disable_lock_tracking",
    "enable_lock_tracking",
    "find_inversions",
    "lock_order_edges",
    "lock_report",
    "make_lock",
    "note_write",
    "register_shared_state",
    "reset_lock_state",
    "tracking_enabled",
    "unguarded_writes",
]


@dataclass(frozen=True)
class LockOrderViolation:
    """A cycle in the acquisition-order graph (a potential deadlock)."""

    cycle: tuple[str, ...]
    witnesses: tuple[str, ...]

    def format(self) -> str:
        ring = " -> ".join((*self.cycle, self.cycle[0]))
        return f"lock-order inversion: {ring} (seen: {'; '.join(self.witnesses)})"


class LockTracker:
    """One acquisition graph + per-thread held stacks.

    The module keeps a process-global default instance behind
    :func:`make_lock` and friends; tests that *provoke* violations build a
    private ``LockTracker()`` (and pass it to :class:`TrackedLock`) so
    their deliberate inversions never leak into the session-wide evidence
    the pytest plugin asserts on.
    """

    def __init__(self) -> None:
        self.enabled = False
        # The tracker's own mutex must be a *plain* lock: instrumenting it
        # would recurse.  It only guards the edge/violation dicts, never
        # user code, so it cannot participate in an application cycle.
        self._mutex = threading.Lock()
        self._held = threading.local()
        self._edges: dict[tuple[str, str], str] = {}
        self._writes: list[str] = []
        self._guards: dict[str, str] = {}

    # -------------------------------------------------------------- #
    # Per-thread held stack
    # -------------------------------------------------------------- #
    def held_stack(self) -> list[TrackedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquire(self, lock: TrackedLock) -> None:
        stack = self.held_stack()
        if stack:
            thread = threading.current_thread().name
            with self._mutex:
                for held in stack:
                    if held.name == lock.name:
                        continue
                    edge = (held.name, lock.name)
                    self._edges.setdefault(
                        edge,
                        f"{held.name} -> {lock.name} on thread {thread!r}",
                    )
        stack.append(lock)

    def on_release(self, lock: TrackedLock) -> None:
        stack = self.held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # -------------------------------------------------------------- #
    # Shared-state writes
    # -------------------------------------------------------------- #
    def register(self, state: str, guard: TrackedLock | None) -> None:
        with self._mutex:
            self._guards[state] = guard.name if guard is not None else ""

    def on_write(self, state: str, guard: TrackedLock | None) -> None:
        held = [lock.name for lock in self.held_stack()]
        with self._mutex:
            required = (
                guard.name if guard is not None else self._guards.get(state, "")
            )
        thread = threading.current_thread().name
        if required:
            if required not in held:
                self._record_write(
                    f"{state} written on thread {thread!r} without holding "
                    f"its guard lock {required!r} (held: {held or 'none'})"
                )
        elif not held:
            self._record_write(
                f"{state} written on thread {thread!r} with no lock held"
            )

    def _record_write(self, message: str) -> None:
        with self._mutex:
            self._writes.append(message)

    # -------------------------------------------------------------- #
    # Reporting
    # -------------------------------------------------------------- #
    def edges(self) -> dict[tuple[str, str], str]:
        with self._mutex:
            return dict(self._edges)

    def writes(self) -> list[str]:
        with self._mutex:
            return list(self._writes)

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._writes.clear()
            self._guards.clear()

    def find_inversions(self) -> list[LockOrderViolation]:
        """Cycles in the acquisition-order graph, one violation per cycle.

        Two threads that nest the same pair of locks in opposite orders
        can deadlock even if every individual run happened to interleave
        safely, so the check is over the *union* of all observed orders:
        any strongly connected component of two or more locks is an
        inversion.
        """
        edges = self.edges()
        graph: dict[str, set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())

        # Iterative Tarjan SCC (deterministic: nodes and successors sorted).
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0
        for root in sorted(graph):
            if root in index_of:
                continue
            work: list[tuple[str, list[str]]] = [(root, sorted(graph[root]))]
            index_of[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                while successors:
                    nxt = successors.pop()
                    if nxt not in index_of:
                        index_of[nxt] = low[nxt] = counter
                        counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, sorted(graph[nxt])))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index_of[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        violations: list[LockOrderViolation] = []
        for component in components:
            if len(component) < 2:
                continue
            members = tuple(sorted(component))
            witnesses = tuple(
                sorted(
                    witness
                    for (outer, inner), witness in edges.items()
                    if outer in members and inner in members
                )
            )
            violations.append(LockOrderViolation(cycle=members, witnesses=witnesses))
        violations.sort(key=lambda violation: violation.cycle)
        return violations

    def report(self) -> dict[str, object]:
        return {
            "edges": self.edges(),
            "inversions": self.find_inversions(),
            "unguarded_writes": self.writes(),
        }


#: The process-global tracker the production locks report to.
_TRACKER = LockTracker()


class TrackedLock:
    """A ``threading.Lock`` work-alike that reports to a tracker.

    The wrapper adds one ``enabled`` check per acquisition when tracking
    is off, so production code uses it unconditionally via
    :func:`make_lock` — the checked and unchecked configurations run the
    same code, and the detector observes the *real* locks, not copies.
    """

    __slots__ = ("name", "_lock", "_tracker")

    def __init__(self, name: str, tracker: LockTracker | None = None) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._tracker = tracker if tracker is not None else _TRACKER

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired and self._tracker.enabled:
            self._tracker.on_acquire(self)
        return acquired

    def release(self) -> None:
        if self._tracker.enabled:
            self._tracker.on_release(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<TrackedLock {self.name!r} {state}>"


def make_lock(name: str) -> TrackedLock:
    """An instrumented lock; drop-in for ``threading.Lock()`` plus a name."""
    return TrackedLock(name)


def enable_lock_tracking() -> None:
    """Start recording acquisitions (idempotent)."""
    _TRACKER.enabled = True


def disable_lock_tracking() -> None:
    """Stop recording acquisitions (collected evidence is kept)."""
    _TRACKER.enabled = False


def tracking_enabled() -> bool:
    return _TRACKER.enabled


def reset_lock_state() -> None:
    """Drop all collected edges, violations and registrations."""
    _TRACKER.reset()


def register_shared_state(state: str, guard: TrackedLock | None = None) -> None:
    """Declare shared state; writes must then hold ``guard`` (or any lock)."""
    _TRACKER.register(state, guard)


def note_write(state: str, guard: TrackedLock | None = None) -> None:
    """Record a write to shared state; flags it when made outside the lock."""
    if _TRACKER.enabled:
        _TRACKER.on_write(state, guard)


def lock_order_edges() -> dict[tuple[str, str], str]:
    """Every observed nested acquisition ``(outer, inner) -> witness``."""
    return _TRACKER.edges()


def unguarded_writes() -> list[str]:
    """Every recorded write-outside-lock violation, in occurrence order."""
    return _TRACKER.writes()


def find_inversions() -> list[LockOrderViolation]:
    """Cycles in the default tracker's acquisition-order graph."""
    return _TRACKER.find_inversions()


def lock_report() -> dict[str, object]:
    """Everything the pytest plugin asserts on at session end."""
    return _TRACKER.report()
