"""AST-based contract lints (the first ``repro check`` pass).

Each rule encodes a repo-specific correctness contract — not style — and
is registered in :data:`RULES` through the :func:`rule` decorator, so new
contracts are one function away and ``repro check --rules`` can enumerate
them for the docs cross-check.

Scoping.  Rules carry a *scope* restricting where they fire inside the
installed package:

``determinism``
    ``repro.sim`` / ``repro.designs`` / ``repro.dynamics`` /
    ``repro.workloads`` — the packages whose outputs must be bit-identical
    across runs, engines and job counts.
``package``
    everything under ``repro`` (except :mod:`repro.knobs` for the
    environment rule, which is the sanctioned read path).
``typed``
    the strictly typed modules of :data:`repro.check.typegate.STRICT_MODULES`.
``all``
    every checked file.

A file *outside* the installed package (a test fixture, a snippet) is
checked in **snippet mode**: every rule applies.  That is what lets the
committed bad-fixture snippets under ``tests/fixtures/check/`` fail
``repro check`` without living inside the simulation packages.

Suppressions are explicit and carry a reason, on the offending line or the
line above::

    payload["generated_at"] = time.strftime(...)  # repro: allow-wall-clock(bench metadata)

An empty reason does not suppress: ``# repro: allow-wall-clock()`` is
itself a finding.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "RULES",
    "DETERMINISM_PACKAGES",
    "Finding",
    "Rule",
    "SourceFile",
    "check_paths",
    "check_source",
    "default_paths",
    "iter_python_files",
]

#: Sub-packages whose replay output must be deterministic.
DETERMINISM_PACKAGES = ("sim", "designs", "dynamics", "workloads")

#: Module-path suffixes (relative to the package root) under the strict
#: typing gate; kept in sync with ``repro.check.typegate.STRICT_MODULES``.
TYPED_PATH_SUFFIXES = (
    ("knobs.py",),
    ("faults.py",),
    ("serve", "protocol.py"),
    ("serve", "daemon.py"),
    ("serve", "loadgen.py"),
    ("sim", "runner.py"),
    ("workloads", "store.py"),
)

#: Sub-packages where blocking on a future without a deadline is forbidden
#: (the parallel runner and the serve daemon: one wedged worker must never
#: wedge the process).
FUTURES_PACKAGES = ("sim", "serve")


@dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at a file and line."""

    rule: str
    path: Path
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class SourceFile:
    """A parsed file plus the package context the scoping rules need."""

    path: Path
    text: str
    tree: ast.Module
    lines: tuple[str, ...]
    package_relative: tuple[str, ...] | None  # path parts below repro/, or None

    @property
    def in_package(self) -> bool:
        return self.package_relative is not None

    @property
    def snippet(self) -> bool:
        return self.package_relative is None

    def scope_determinism(self) -> bool:
        if self.snippet:
            return True
        assert self.package_relative is not None
        return bool(self.package_relative) and self.package_relative[0] in DETERMINISM_PACKAGES

    def scope_package(self) -> bool:
        return True  # package files and snippets alike

    def scope_typed(self) -> bool:
        if self.snippet:
            return True
        assert self.package_relative is not None
        return self.package_relative in {tuple(s) for s in TYPED_PATH_SUFFIXES}

    def scope_futures(self) -> bool:
        if self.snippet:
            return True
        assert self.package_relative is not None
        return bool(self.package_relative) and self.package_relative[0] in FUTURES_PACKAGES

    def is_knobs_module(self) -> bool:
        return self.package_relative == ("knobs.py",)


@dataclass(frozen=True)
class Rule:
    """One registered contract lint."""

    name: str
    scope: str
    description: str
    marker: str | None
    check: Callable[[SourceFile], Iterator[Finding]]


#: Registry of every contract lint, keyed by rule name.
RULES: dict[str, Rule] = {}


def rule(
    name: str, *, scope: str, description: str, marker: str | None = None
) -> Callable[[Callable[[SourceFile], Iterator[Finding]]], Callable[[SourceFile], Iterator[Finding]]]:
    """Register a lint rule; ``marker`` names its suppression comment."""

    def register(
        check: Callable[[SourceFile], Iterator[Finding]],
    ) -> Callable[[SourceFile], Iterator[Finding]]:
        RULES[name] = Rule(
            name=name, scope=scope, description=description, marker=marker, check=check
        )
        return check

    return register


# ---------------------------------------------------------------------- #
# Shared helpers
# ---------------------------------------------------------------------- #
def _suppressed(source: SourceFile, lineno: int, marker: str | None) -> bool:
    """True when an ``# repro: allow-<marker>(reason)`` comment covers lineno."""
    if marker is None:
        return False
    pattern = re.compile(rf"#\s*repro:\s*{re.escape(marker)}\([^)]+\)")
    for line_number in (lineno, lineno - 1):
        if 1 <= line_number <= len(source.lines) and pattern.search(
            source.lines[line_number - 1]
        ):
            return True
    return False


def _dotted_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _walk_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ---------------------------------------------------------------------- #
# Determinism rules
# ---------------------------------------------------------------------- #
#: ``numpy.random`` constructors that take an explicit seed.
_SEEDED_NP_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
)


@rule(
    "determinism-unseeded-random",
    scope="determinism",
    description=(
        "No global-state RNG calls (random.*, np.random.*) in the simulation "
        "packages; draw from an explicitly seeded random.Random or "
        "numpy.random.default_rng(seed) so replay is bit-identical."
    ),
    marker="allow-unseeded-random",
)
def _check_unseeded_random(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module in ("random", "numpy.random"):
            allowed = (
                {"Random", "SystemRandom"}
                if node.module == "random"
                else _SEEDED_NP_CONSTRUCTORS
            )
            bad = sorted(alias.name for alias in node.names if alias.name not in allowed)
            if bad and not _suppressed(source, node.lineno, "allow-unseeded-random"):
                yield Finding(
                    "determinism-unseeded-random",
                    source.path,
                    node.lineno,
                    f"importing {', '.join(bad)} from {node.module} pulls in "
                    "global RNG state; use a seeded constructor instead",
                )
    for call in _walk_calls(source.tree):
        chain = _dotted_chain(call.func)
        if chain is None:
            continue
        finding = None
        if chain[0] == "random" and len(chain) == 2:
            if chain[1] in ("Random", "SystemRandom"):
                if not call.args and not call.keywords:
                    finding = (
                        f"random.{chain[1]}() without a seed is "
                        "nondeterministic; pass an explicit seed"
                    )
            else:
                finding = (
                    f"random.{chain[1]}() uses the global RNG; draw from a "
                    "seeded random.Random instance"
                )
        elif len(chain) >= 3 and chain[-2] == "random" and chain[0] in ("np", "numpy"):
            name = chain[-1]
            if name not in _SEEDED_NP_CONSTRUCTORS:
                finding = (
                    f"np.random.{name}() uses numpy's global RNG; draw from a "
                    "seeded np.random.default_rng(seed)"
                )
            elif not call.args and not call.keywords:
                finding = f"np.random.{name}() without a seed is nondeterministic"
        if finding and not _suppressed(source, call.lineno, "allow-unseeded-random"):
            yield Finding(
                "determinism-unseeded-random", source.path, call.lineno, finding
            )


#: ``time`` module attributes that read the wall clock.  perf_counter and
#: monotonic are duration clocks and stay legal (benchmarking needs them).
_WALL_TIME_ATTRS = frozenset(
    {"time", "time_ns", "localtime", "gmtime", "ctime", "asctime", "strftime"}
)
_WALL_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


@rule(
    "determinism-wall-clock",
    scope="determinism",
    description=(
        "No wall-clock reads (time.time/strftime/..., datetime.now, "
        "date.today) in the simulation packages; simulated time must come "
        "from the trace, never from the host clock.  Duration clocks "
        "(time.perf_counter, time.monotonic) stay legal."
    ),
    marker="allow-wall-clock",
)
def _check_wall_clock(source: SourceFile) -> Iterator[Finding]:
    for call in _walk_calls(source.tree):
        chain = _dotted_chain(call.func)
        if chain is None or len(chain) < 2:
            continue
        dotted = ".".join(chain)
        is_wall = (
            (chain[0] == "time" and chain[-1] in _WALL_TIME_ATTRS)
            or (chain[0] in ("datetime", "date") and chain[-1] in _WALL_DATETIME_ATTRS)
        )
        if is_wall and not _suppressed(source, call.lineno, "allow-wall-clock"):
            yield Finding(
                "determinism-wall-clock",
                source.path,
                call.lineno,
                f"{dotted}() reads the wall clock inside a determinism "
                "package; derive time from the trace (or mark a measurement "
                "site with the allow-wall-clock marker)",
            )


# ---------------------------------------------------------------------- #
# Configuration hygiene
# ---------------------------------------------------------------------- #
@rule(
    "knobs-env-registry",
    scope="package",
    description=(
        "No raw os.environ / os.getenv access outside repro.knobs: every "
        "environment knob is declared once in the registry and read through "
        "its typed accessor, so the configuration surface stays enumerable "
        "and documented."
    ),
    marker="allow-env",
)
def _check_env_registry(source: SourceFile) -> Iterator[Finding]:
    if source.is_knobs_module():
        return
    for node in ast.walk(source.tree):
        lineno = getattr(node, "lineno", 0)
        message = None
        if isinstance(node, ast.Attribute):
            chain = _dotted_chain(node)
            if chain == ("os", "environ"):
                message = "raw os.environ access"
            elif chain is not None and chain[0] == "os" and chain[-1] in (
                "getenv",
                "putenv",
                "unsetenv",
            ):
                message = f"raw os.{chain[-1]} access"
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in ("environ", "getenv", "putenv", "unsetenv")
            )
            if bad:
                message = f"importing {', '.join(bad)} from os"
        if message and not _suppressed(source, lineno, "allow-env"):
            yield Finding(
                "knobs-env-registry",
                source.path,
                lineno,
                f"{message}; route environment reads through the repro.knobs registry",
            )


# ---------------------------------------------------------------------- #
# Exception and argument discipline
# ---------------------------------------------------------------------- #
_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


@rule(
    "no-broad-except",
    scope="all",
    description=(
        "No bare except or except Exception/BaseException without an "
        "explicit `# repro: allow-broad-except(reason)` marker; a silent "
        "catch-all can swallow the very contract violations the rest of "
        "this checker exists to surface."
    ),
    marker="allow-broad-except",
)
def _check_broad_except(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught: list[str] = []
        if node.type is None:
            caught.append("<bare>")
        else:
            exprs = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            for expr in exprs:
                chain = _dotted_chain(expr)
                if chain and chain[-1] in _BROAD_EXCEPTION_NAMES:
                    caught.append(chain[-1])
        if caught and not _suppressed(source, node.lineno, "allow-broad-except"):
            yield Finding(
                "no-broad-except",
                source.path,
                node.lineno,
                f"broad exception handler ({', '.join(caught)}); narrow the "
                "type or annotate with # repro: allow-broad-except(reason)",
            )


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


@rule(
    "no-mutable-default",
    scope="all",
    description=(
        "No mutable default arguments (list/dict/set literals or "
        "constructors): the default is evaluated once and shared across "
        "calls, which is exactly the kind of cross-run state leak the "
        "determinism contracts forbid."
    ),
    marker=None,
)
def _check_mutable_default(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                yield Finding(
                    "no-mutable-default",
                    source.path,
                    default.lineno,
                    f"mutable default argument in {node.name}(); default to "
                    "None and build the object inside the function",
                )


# ---------------------------------------------------------------------- #
# Content-hash coverage
# ---------------------------------------------------------------------- #
def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = _dotted_chain(target)
        if chain and chain[-1] == "dataclass":
            return True
    return False


def _annotation_is_classvar(annotation: ast.expr) -> bool:
    target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    chain = _dotted_chain(target)
    return chain is not None and chain[-1] == "ClassVar"


def _references_to_dict(func: ast.FunctionDef) -> bool:
    return any(
        isinstance(node, ast.Attribute) and node.attr == "to_dict"
        for node in ast.walk(func)
    )


def _to_dict_keys(func: ast.FunctionDef) -> set[str] | None:
    """Literal string keys of every dict returned by ``to_dict``.

    Returns ``None`` when any return value is not a dict literal (e.g. a
    ``dataclasses.asdict`` call, which covers every field by construction).
    """
    keys: set[str] = set()
    saw_dict = False
    for node in ast.walk(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        saw_dict = True
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
            else:
                return None  # dynamic key (e.g. **spread): cannot prove coverage
    return keys if saw_dict else None


@rule(
    "hash-coverage",
    scope="all",
    description=(
        "Every field of a content-addressed dataclass (one whose "
        "content_hash fingerprints its to_dict() form) must appear as a "
        "to_dict key: a silently unhashed field makes two distinct "
        "configurations share a cache entry, corrupting the trace and "
        "result stores."
    ),
    marker="allow-unhashed",
)
def _check_hash_coverage(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
            continue
        to_dict = None
        hashes_to_dict = False
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                if item.name == "to_dict":
                    to_dict = item
                elif item.name == "content_hash" and _references_to_dict(item):
                    hashes_to_dict = True
        if to_dict is None or not hashes_to_dict:
            continue
        keys = _to_dict_keys(to_dict)
        if keys is None:
            continue  # not a literal dict: asdict()-style coverage is total
        for item in node.body:
            if not isinstance(item, ast.AnnAssign) or not isinstance(
                item.target, ast.Name
            ):
                continue
            name = item.target.id
            if name.startswith("_") or _annotation_is_classvar(item.annotation):
                continue
            if name not in keys and not _suppressed(
                source, item.lineno, "allow-unhashed"
            ):
                yield Finding(
                    "hash-coverage",
                    source.path,
                    item.lineno,
                    f"field {name!r} of {node.name} is not consumed by "
                    "to_dict()/content_hash; an unhashed field corrupts "
                    "content-addressed cache keys",
                )


# ---------------------------------------------------------------------- #
# Typing coverage (the AST half of the typing gate)
# ---------------------------------------------------------------------- #
@rule(
    "typed-defs",
    scope="typed",
    description=(
        "Every function in the strictly typed modules (repro.knobs, "
        "repro.serve.*, repro.sim.runner, repro.workloads.store) carries "
        "complete parameter and return annotations — the AST half of the "
        "mypy gate, enforced even where mypy is not installed."
    ),
    marker=None,
)
def _check_typed_defs(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing: list[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        for index, arg in enumerate(positional + list(args.kwonlyargs)):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for special in (args.vararg, args.kwarg):
            if special is not None and special.annotation is None:
                missing.append(f"*{special.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            yield Finding(
                "typed-defs",
                source.path,
                node.lineno,
                f"{node.name}() is missing annotations for: {', '.join(missing)}",
            )


# ---------------------------------------------------------------------- #
# Robustness discipline
# ---------------------------------------------------------------------- #
@rule(
    "no-unbounded-future-result",
    scope="futures",
    description=(
        "Every Future.result() in repro.sim/repro.serve passes a timeout: "
        "an unbounded join on a pool worker turns one wedged or killed "
        "process into a wedged runner.  Bound the wait and handle "
        "TimeoutError (cancel + retry), or mark a call that provably "
        "cannot block with # repro: allow-unbounded-result(reason)."
    ),
    marker="allow-unbounded-result",
)
def _check_unbounded_future_result(source: SourceFile) -> Iterator[Finding]:
    for call in _walk_calls(source.tree):
        if not isinstance(call.func, ast.Attribute) or call.func.attr != "result":
            continue
        # Future.result(timeout) — a positional arg is a bound too.
        if call.args or any(kw.arg == "timeout" for kw in call.keywords):
            continue
        if _suppressed(source, call.lineno, "allow-unbounded-result"):
            continue
        yield Finding(
            "no-unbounded-future-result",
            source.path,
            call.lineno,
            ".result() without a timeout can block forever on a dead "
            "worker; pass timeout= (and cancel/retry on TimeoutError)",
        )


# ---------------------------------------------------------------------- #
# Driving the rules
# ---------------------------------------------------------------------- #
_SCOPE_PREDICATES: dict[str, Callable[[SourceFile], bool]] = {
    "determinism": SourceFile.scope_determinism,
    "package": SourceFile.scope_package,
    "typed": SourceFile.scope_typed,
    "futures": SourceFile.scope_futures,
    "all": lambda source: True,
}


def _package_relative(path: Path) -> tuple[str, ...] | None:
    """Path parts below the installed ``repro`` package, or ``None``.

    A directory counts as the package root only when it is named ``repro``
    and actually contains an ``__init__.py`` — so a repo checked out as
    ``~/repro/`` does not accidentally put test fixtures in package scope.
    """
    resolved = path.resolve()
    for parent in resolved.parents:
        if parent.name == "repro" and (parent / "__init__.py").is_file():
            return resolved.relative_to(parent).parts
    return None


def load_source(path: Path) -> SourceFile:
    """Parse one file into the representation the rules consume."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceFile(
        path=path,
        text=text,
        tree=tree,
        lines=tuple(text.splitlines()),
        package_relative=_package_relative(path),
    )


def check_source(source: SourceFile) -> list[Finding]:
    """Run every applicable rule over one parsed file."""
    findings: list[Finding] = []
    for registered in RULES.values():
        if _SCOPE_PREDICATES[registered.scope](source):
            findings.extend(registered.check(source))
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to check."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            yield path


def default_paths() -> list[Path]:
    """What ``repro check`` checks with no arguments: the installed package."""
    return [Path(__file__).resolve().parents[1]]


def check_paths(paths: Iterable[Path] | None = None) -> list[Finding]:
    """Lint every file under ``paths`` (default: the repro package)."""
    findings: list[Finding] = []
    for path in iter_python_files(paths if paths is not None else default_paths()):
        try:
            source = load_source(path)
        except (OSError, SyntaxError, ValueError) as error:
            findings.append(
                Finding("parse", path, getattr(error, "lineno", 0) or 0, str(error))
            )
            continue
        findings.extend(check_source(source))
    findings.sort(key=lambda finding: (str(finding.path), finding.line, finding.rule))
    return findings
