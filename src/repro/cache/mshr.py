"""Miss Status Holding Registers (MSHRs).

MSHRs track outstanding misses so that secondary misses to the same block can
be merged instead of issuing duplicate requests.  In the trace-driven model
they are used for accounting (merge rates, structural-stall detection) rather
than for timing overlap, but the structure matches Table 1 (32 MSHRs per
cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class Mshr:
    """One outstanding miss: the block address and merged requestors."""

    block_address: int
    issue_time: int
    requestors: list[int] = field(default_factory=list)

    def merge(self, core_id: int) -> None:
        self.requestors.append(core_id)


class MshrFile:
    """A bounded file of MSHRs.

    ``allocate`` returns ``True`` when a new entry was created and ``False``
    when the miss merged into an existing entry.  When the file is full a
    structural stall is counted and the allocation still proceeds logically
    (the trace-driven engine cannot replay the access later), which matches
    the accounting-only role of this structure.
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise SimulationError("MSHR file must have at least one entry")
        self.capacity = entries
        self._entries: dict[int, Mshr] = {}
        self.allocations = 0
        self.merges = 0
        self.structural_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_address: int) -> bool:
        return block_address in self._entries

    def allocate(self, block_address: int, core_id: int, now: int) -> bool:
        """Track a miss; returns True if a new entry was allocated."""
        entry = self._entries.get(block_address)
        if entry is not None:
            entry.merge(core_id)
            self.merges += 1
            return False
        if len(self._entries) >= self.capacity:
            self.structural_stalls += 1
            # Retire the oldest entry to keep the model making progress.
            oldest = min(self._entries.values(), key=lambda e: e.issue_time)
            del self._entries[oldest.block_address]
        self._entries[block_address] = Mshr(
            block_address=block_address, issue_time=now, requestors=[core_id]
        )
        self.allocations += 1
        return True

    def release(self, block_address: int) -> list[int]:
        """Complete a miss, returning the merged requestors."""
        entry = self._entries.pop(block_address, None)
        return entry.requestors if entry else []

    def clear(self) -> None:
        self._entries.clear()

    @property
    def merge_rate(self) -> float:
        total = self.allocations + self.merges
        return self.merges / total if total else 0.0
