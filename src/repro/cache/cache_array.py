"""A set-associative cache array with true-LRU replacement.

The array stores :class:`~repro.cache.block.CacheBlock` metadata keyed by
block address.  It is used for L1 instruction/data caches and for every L2
slice in each of the five cache designs.  Indexing uses the low-order bits of
the block address, exactly as a hardware array would; an optional
``index_offset`` lets a design skip interleaving bits that are constant
within one slice (not needed for correctness, only for realistic set
utilisation).

Replacement defaults to true LRU on the per-set ``OrderedDict`` (the first
entry is the victim).  :meth:`CacheArray.set_policy` installs a
:class:`~repro.cache.policies.ReplacementPolicy` that takes over victim
selection and observes probe/hit/insert/evict events; with no policy
installed every operation follows the original inlined LRU path unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.cache.block import CacheBlock, CoherenceState
from repro.cache.policies import ReplacementPolicy
from repro.cmp.config import CacheConfig
from repro.errors import ConfigurationError

_INVALID = CoherenceState.INVALID


@dataclass
class LookupResult:
    """Outcome of a cache lookup."""

    hit: bool
    block: CacheBlock | None = None


@dataclass
class EvictionResult:
    """Outcome of an insertion: the victim block, if any was displaced."""

    inserted: CacheBlock
    victim: CacheBlock | None = None


class CacheArray:
    """Set-associative cache with per-set LRU ordering.

    Each set is an :class:`collections.OrderedDict` mapping block address to
    :class:`CacheBlock`, maintained in LRU-to-MRU order (the first entry is
    the LRU victim candidate).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: list[OrderedDict[int, CacheBlock]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._set_mask = config.num_sets - 1
        self._associativity = config.associativity
        self._now = 0
        #: Optional replacement policy; ``None`` is the native LRU path.
        self._policy: ReplacementPolicy | None = None
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    @property
    def num_sets(self) -> int:
        return self.config.num_sets

    @property
    def associativity(self) -> int:
        return self.config.associativity

    def set_index(self, block_address: int) -> int:
        """Set index for a block address (low-order bits above the offset)."""
        return block_address & self._set_mask

    @property
    def policy(self) -> ReplacementPolicy | None:
        """The installed replacement policy (``None`` = native LRU)."""
        return self._policy

    def set_policy(self, policy: ReplacementPolicy | None) -> None:
        """Install (or remove) a replacement policy.

        Must be called on an empty array: a policy's bookkeeping only sees
        events from the moment it is installed, so pre-existing resident
        blocks would be invisible to its victim selection.
        """
        if policy is not None and len(self):
            raise ConfigurationError(
                "replacement policies must be installed on an empty array"
            )
        if policy is not None and (
            policy.num_sets != self.num_sets
            or policy.associativity != self._associativity
        ):
            raise ConfigurationError(
                f"policy geometry {policy.num_sets}x{policy.associativity} does "
                f"not match array {self.num_sets}x{self._associativity}"
            )
        self._policy = policy

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, block_address: int) -> bool:
        return block_address in self._sets[self.set_index(block_address)]

    def blocks(self) -> Iterator[CacheBlock]:
        """Iterate over every resident block (LRU order within each set)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    # ------------------------------------------------------------------ #
    # Access operations
    # ------------------------------------------------------------------ #
    def lookup(self, block_address: int, *, write: bool = False) -> LookupResult:
        """Probe the array; on a hit, update LRU and access metadata."""
        block = self.lookup_block(block_address, write=write)
        if block is None:
            return LookupResult(hit=False)
        return LookupResult(hit=True, block=block)

    def lookup_block(
        self, block_address: int, write: bool = False
    ) -> CacheBlock | None:
        """Allocation-free :meth:`lookup`: the hit block, or ``None``."""
        now = self._now = self._now + 1
        cache_set = self._sets[block_address & self._set_mask]
        policy = self._policy
        if policy is not None:
            policy.on_probe(block_address & self._set_mask, block_address)
        block = cache_set.get(block_address)
        if block is None or block.state is _INVALID:
            self.misses += 1
            return None
        cache_set.move_to_end(block_address)
        # Inline CacheBlock.touch - this probe is the hottest cache operation.
        block.last_access = now
        block.access_count += 1
        if write:
            block.dirty = True
            block.state = CoherenceState.MODIFIED
        if policy is not None:
            policy.on_hit(block_address & self._set_mask, block_address)
        self.hits += 1
        return block

    def peek(self, block_address: int) -> CacheBlock | None:
        """Probe without disturbing LRU state or statistics."""
        block = self._sets[self.set_index(block_address)].get(block_address)
        if block is None or not block.state.is_valid:
            return None
        return block

    def insert(
        self,
        block_address: int,
        *,
        state: CoherenceState = CoherenceState.SHARED,
        dirty: bool = False,
        metadata: dict | None = None,
    ) -> EvictionResult:
        """Allocate a block, evicting the LRU entry of its set if full.

        If the block is already resident, its state is updated in place and
        no eviction occurs.
        """
        inserted, victim = self.insert_block(
            block_address, state=state, dirty=dirty, metadata=metadata
        )
        return EvictionResult(inserted=inserted, victim=victim)

    def insert_block(
        self,
        block_address: int,
        state: CoherenceState = CoherenceState.SHARED,
        dirty: bool = False,
        metadata: dict | None = None,
    ) -> tuple[CacheBlock, CacheBlock | None]:
        """Allocation-free :meth:`insert`: returns ``(inserted, victim)``."""
        now = self._now = self._now + 1
        cache_set = self._sets[block_address & self._set_mask]
        policy = self._policy
        existing = cache_set.get(block_address)
        if existing is not None:
            existing.state = state
            existing.dirty = existing.dirty or dirty
            # Inline CacheBlock.touch (the write case re-asserts MODIFIED).
            existing.last_access = now
            existing.access_count += 1
            if dirty:
                existing.dirty = True
                existing.state = CoherenceState.MODIFIED
            cache_set.move_to_end(block_address)
            if policy is not None:
                policy.on_hit(block_address & self._set_mask, block_address)
            return existing, None

        victim: CacheBlock | None = None
        if len(cache_set) >= self._associativity:
            if policy is None:
                _, victim = cache_set.popitem(last=False)
            else:
                doomed = policy.victim(
                    block_address & self._set_mask, cache_set, block_address
                )
                victim = cache_set.pop(doomed)
                policy.on_evict(block_address & self._set_mask, doomed)
            self.evictions += 1
        block = CacheBlock(
            address=block_address,
            state=state,
            dirty=dirty,
            last_access=self._now,
            metadata=metadata or {},
        )
        cache_set[block_address] = block
        if policy is not None:
            policy.on_insert(block_address & self._set_mask, block_address)
        return block, victim

    def invalidate(self, block_address: int) -> CacheBlock | None:
        """Remove a block (coherence invalidation or page shootdown)."""
        cache_set = self._sets[self.set_index(block_address)]
        block = cache_set.pop(block_address, None)
        if block is not None:
            self.invalidations += 1
            if self._policy is not None:
                self._policy.on_evict(self.set_index(block_address), block_address)
        return block

    def invalidate_where(
        self, predicate: Callable[[CacheBlock], bool]
    ) -> list[CacheBlock]:
        """Invalidate every resident block matching ``predicate``.

        Used by the OS page shootdown: invalidating all blocks of a page at
        the previous accessor's tile when a page is re-classified.
        """
        removed: list[CacheBlock] = []
        for set_index, cache_set in enumerate(self._sets):
            doomed = [addr for addr, blk in cache_set.items() if predicate(blk)]
            for addr in doomed:
                removed.append(cache_set.pop(addr))
                if self._policy is not None:
                    self._policy.on_evict(set_index, addr)
        self.invalidations += len(removed)
        return removed

    def clear(self) -> None:
        """Empty the array (used between measurement samples)."""
        for cache_set in self._sets:
            cache_set.clear()
        if self._policy is not None:
            self._policy.reset()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def occupancy(self) -> float:
        """Fraction of block frames currently holding a valid block."""
        capacity = self.num_sets * self.associativity
        return len(self) / capacity if capacity else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheArray(name={self.name!r}, sets={self.num_sets}, "
            f"ways={self.associativity}, blocks={len(self)})"
        )


def build_array(config: CacheConfig, name: str = "cache") -> CacheArray:
    """Convenience constructor validating the configuration."""
    if config.num_sets < 1:
        raise ConfigurationError("cache must have at least one set")
    return CacheArray(config, name=name)
