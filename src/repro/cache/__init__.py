"""Cache substrate: arrays, replacement policies, MSHRs and victim caches."""

from repro.cache.block import AccessType, CacheBlock, CoherenceState
from repro.cache.cache_array import CacheArray, LookupResult
from repro.cache.mshr import Mshr, MshrFile
from repro.cache.policies import (
    DEFAULT_POLICY,
    POLICIES,
    ReplacementPolicy,
    build_policy,
    normalize_policy,
)
from repro.cache.victim import VictimCache

__all__ = [
    "AccessType",
    "CacheBlock",
    "CoherenceState",
    "CacheArray",
    "LookupResult",
    "Mshr",
    "MshrFile",
    "VictimCache",
    "DEFAULT_POLICY",
    "POLICIES",
    "ReplacementPolicy",
    "build_policy",
    "normalize_policy",
]
