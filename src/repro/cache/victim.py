"""A small fully-associative victim cache (16 entries in Table 1).

Blocks evicted from the main array are parked here; a subsequent miss that
hits in the victim cache is swapped back, avoiding the longer-latency L2 or
off-chip access.

Replacement defaults to FIFO (the paper's victim buffer).  Like
:class:`~repro.cache.cache_array.CacheArray`, the buffer accepts an optional
:class:`~repro.cache.policies.ReplacementPolicy` via :meth:`set_policy`;
the buffer is modelled as a single fully-associative set (set index 0).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.block import CacheBlock
from repro.cache.policies import ReplacementPolicy
from repro.errors import ConfigurationError


class VictimCache:
    """Fully-associative FIFO-replacement victim buffer."""

    def __init__(self, entries: int) -> None:
        if entries < 0:
            raise ConfigurationError("victim cache size cannot be negative")
        self.capacity = entries
        self._entries: OrderedDict[int, CacheBlock] = OrderedDict()
        self._policy: ReplacementPolicy | None = None
        self.hits = 0
        self.misses = 0
        self.insertions = 0

    def set_policy(self, policy: ReplacementPolicy | None) -> None:
        """Install a replacement policy (``None`` restores native FIFO)."""
        if policy is not None and self._entries:
            raise ConfigurationError(
                "replacement policies must be installed on an empty victim cache"
            )
        if policy is not None and (
            policy.num_sets != 1 or policy.associativity != max(1, self.capacity)
        ):
            raise ConfigurationError(
                "victim-cache policy must be 1 set x capacity ways"
            )
        self._policy = policy

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_address: int) -> bool:
        return block_address in self._entries

    def insert(self, block: CacheBlock) -> CacheBlock | None:
        """Park an evicted block; returns the block displaced, if any."""
        if self.capacity == 0:
            return block
        policy = self._policy
        displaced: CacheBlock | None = None
        if block.address in self._entries:
            self._entries.move_to_end(block.address)
            self._entries[block.address] = block
            if policy is not None:
                policy.on_hit(0, block.address)
            return None
        if len(self._entries) >= self.capacity:
            if policy is None:
                _, displaced = self._entries.popitem(last=False)
            else:
                doomed = policy.victim(0, self._entries, block.address)
                displaced = self._entries.pop(doomed)
                policy.on_evict(0, doomed)
        self._entries[block.address] = block
        if policy is not None:
            policy.on_insert(0, block.address)
        self.insertions += 1
        return displaced

    def extract(self, block_address: int) -> CacheBlock | None:
        """Remove and return a block on a victim-cache hit."""
        block = self._entries.pop(block_address, None)
        if block is not None:
            self.hits += 1
            if self._policy is not None:
                self._policy.on_evict(0, block_address)
        else:
            self.misses += 1
        return block

    def invalidate(self, block_address: int) -> CacheBlock | None:
        """Drop a block without counting a hit or miss."""
        block = self._entries.pop(block_address, None)
        if block is not None and self._policy is not None:
            self._policy.on_evict(0, block_address)
        return block

    def clear(self) -> None:
        self._entries.clear()
        if self._policy is not None:
            self._policy.reset()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
