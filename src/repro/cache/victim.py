"""A small fully-associative victim cache (16 entries in Table 1).

Blocks evicted from the main array are parked here; a subsequent miss that
hits in the victim cache is swapped back, avoiding the longer-latency L2 or
off-chip access.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.block import CacheBlock
from repro.errors import ConfigurationError


class VictimCache:
    """Fully-associative FIFO-replacement victim buffer."""

    def __init__(self, entries: int) -> None:
        if entries < 0:
            raise ConfigurationError("victim cache size cannot be negative")
        self.capacity = entries
        self._entries: OrderedDict[int, CacheBlock] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_address: int) -> bool:
        return block_address in self._entries

    def insert(self, block: CacheBlock) -> CacheBlock | None:
        """Park an evicted block; returns the block displaced, if any."""
        if self.capacity == 0:
            return block
        displaced: CacheBlock | None = None
        if block.address in self._entries:
            self._entries.move_to_end(block.address)
            self._entries[block.address] = block
            return None
        if len(self._entries) >= self.capacity:
            _, displaced = self._entries.popitem(last=False)
        self._entries[block.address] = block
        self.insertions += 1
        return displaced

    def extract(self, block_address: int) -> CacheBlock | None:
        """Remove and return a block on a victim-cache hit."""
        block = self._entries.pop(block_address, None)
        if block is not None:
            self.hits += 1
        else:
            self.misses += 1
        return block

    def invalidate(self, block_address: int) -> CacheBlock | None:
        """Drop a block without counting a hit or miss."""
        return self._entries.pop(block_address, None)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
