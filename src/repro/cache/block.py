"""Cache block metadata and coherence states.

Blocks are identified by their *block address* (the byte address with the
block-offset bits removed).  The arrays in :mod:`repro.cache.cache_array`
store :class:`CacheBlock` records keyed by block address; the physical data
payload is never modelled because it does not affect placement or timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CoherenceState(enum.Enum):
    """MOSI coherence states (Piranha-style protocol, Section 5.1).

    ``EXCLUSIVE`` is included for completeness of the protocol tables but the
    four states used by the paper's protocol are M, O, S and I.
    """

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def can_read(self) -> bool:
        return self.is_valid

    @property
    def can_write(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)

    @property
    def is_dirty(self) -> bool:
        """Whether this copy must be written back when evicted."""
        return self in (CoherenceState.MODIFIED, CoherenceState.OWNED)


class AccessType(enum.Enum):
    """The three kinds of memory references in a trace."""

    INSTRUCTION = "ifetch"
    LOAD = "load"
    STORE = "store"

    @property
    def is_instruction(self) -> bool:
        return self is AccessType.INSTRUCTION

    @property
    def is_write(self) -> bool:
        return self is AccessType.STORE


@dataclass(slots=True)
class CacheBlock:
    """Metadata for one cached block frame.

    Attributes:
        address: block address (byte address >> log2(block size)).
        state: coherence state of this copy.
        dirty: whether the copy differs from memory (redundant with the
            M/O states but kept explicit so designs without hardware
            coherence, such as R-NUCA's L2, can still track writebacks).
        last_access: logical timestamp of the most recent access (LRU).
        access_count: number of hits this copy has serviced.
    """

    address: int
    state: CoherenceState = CoherenceState.SHARED
    dirty: bool = False
    last_access: int = 0
    access_count: int = 0
    #: Free-form annotations (e.g. owning cluster id for R-NUCA replicas).
    metadata: dict = field(default_factory=dict)

    def touch(self, now: int, *, write: bool = False) -> None:
        """Record an access to this block at logical time ``now``."""
        self.last_access = now
        self.access_count += 1
        if write:
            self.dirty = True
            self.state = CoherenceState.MODIFIED

    def invalidate(self) -> None:
        """Drop the copy (used by shootdowns and coherence invalidations)."""
        self.state = CoherenceState.INVALID
        self.dirty = False
