"""Pluggable replacement policies for the set-associative cache arrays.

The default replacement behaviour of :class:`~repro.cache.cache_array.CacheArray`
is true LRU, implemented directly on the per-set ``OrderedDict`` (the first
entry is the victim).  That inlined path is the hottest code in the
simulator, so it stays exactly as it is: an array with **no** policy
installed replays bit-identically to the pre-policy code.  Installing a
:class:`ReplacementPolicy` (``CacheArray.set_policy``) reroutes only the
victim choice and adds bookkeeping hooks; the hit/miss accounting, block
metadata updates and coherence semantics are unchanged.

Hook contract (all driven by :class:`CacheArray`):

``on_probe(set_index, address)``
    every lookup, hit or miss, before the result is known (the Belady/OPT
    oracle uses this to advance its next-use clock);
``on_hit(set_index, address)``
    a lookup hit, or an insert finding the block already resident;
``on_insert(set_index, address)``
    a new block was placed in the set (after any eviction);
``victim(set_index, resident, incoming)``
    the set is full and ``incoming`` needs a frame: return the address of
    the resident block to evict (must be a key of ``resident``);
``on_evict(set_index, address)``
    the block left the array, whether chosen by :meth:`victim` or removed
    by an invalidation;
``reset()``
    the array was cleared.

Every implementation is deterministic: :class:`RandomPolicy` draws from a
seeded :class:`random.Random`, and every tie-break follows the (fully
deterministic) insertion order of the per-set structures.  The catalogue is
the ``POLICIES`` mapping; ``"lru"`` is the default and deliberately builds
to ``None`` — the array's native fast path *is* the LRU implementation, and
the extracted :class:`LruPolicy` exists so the equivalence tests can prove
the injection point reproduces it event for event.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Mapping
from typing import Any

from repro.errors import ConfigurationError

#: The policy name that means "the array's native LRU fast path".
DEFAULT_POLICY = "lru"


class ReplacementPolicy(ABC):
    """Interface a replacement policy implements (see module docstring)."""

    #: Registry name (matches the ``POLICIES`` key).
    name: str = "?"

    def __init__(self, num_sets: int, associativity: int, *, seed: int = 0) -> None:
        if num_sets < 1 or associativity < 1:
            raise ConfigurationError("policy geometry must be at least 1x1")
        self.num_sets = num_sets
        self.associativity = associativity
        self.seed = seed

    @abstractmethod
    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        """Address of the resident block to evict for ``incoming``."""

    def on_probe(self, set_index: int, address: int) -> None:
        """A lookup is probing ``address`` (hit not yet known)."""

    def on_hit(self, set_index: int, address: int) -> None:
        """``address`` was found resident (lookup hit or re-insert)."""

    def on_insert(self, set_index: int, address: int) -> None:
        """``address`` was newly placed in its set."""

    def on_evict(self, set_index: int, address: int) -> None:
        """``address`` left the array (eviction or invalidation)."""

    def reset(self) -> None:
        """The array was cleared."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(sets={self.num_sets}, "
            f"ways={self.associativity}, seed={self.seed})"
        )


class LruPolicy(ReplacementPolicy):
    """True LRU, extracted from the array's native OrderedDict logic.

    The native path *is* LRU; this class replays the same recency order in
    its own per-set structures so tests can verify the injection point is
    faithful to the extraction (identical victims, event for event).
    """

    name = "lru"

    def __init__(self, num_sets: int, associativity: int, *, seed: int = 0) -> None:
        super().__init__(num_sets, associativity, seed=seed)
        self._order: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        return next(iter(self._order[set_index]))

    def on_hit(self, set_index: int, address: int) -> None:
        self._order[set_index].move_to_end(address)

    def on_insert(self, set_index: int, address: int) -> None:
        self._order[set_index][address] = None

    def on_evict(self, set_index: int, address: int) -> None:
        self._order[set_index].pop(address, None)

    def reset(self) -> None:
        for order in self._order:
            order.clear()


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: evict the oldest insertion, ignore recency."""

    name = "fifo"

    def __init__(self, num_sets: int, associativity: int, *, seed: int = 0) -> None:
        super().__init__(num_sets, associativity, seed=seed)
        self._queue: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        return next(iter(self._queue[set_index]))

    def on_insert(self, set_index: int, address: int) -> None:
        self._queue[set_index][address] = None

    def on_evict(self, set_index: int, address: int) -> None:
        self._queue[set_index].pop(address, None)

    def reset(self) -> None:
        for queue in self._queue:
            queue.clear()


class RandomPolicy(ReplacementPolicy):
    """Seeded uniform-random eviction (stateless apart from the RNG).

    The candidate list is the set's resident addresses in their (fully
    deterministic) dict order, so the same seed always evicts the same
    sequence of victims for the same access stream.
    """

    name = "random"

    def __init__(self, num_sets: int, associativity: int, *, seed: int = 0) -> None:
        super().__init__(num_sets, associativity, seed=seed)
        self._rng = random.Random(seed)

    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        candidates = list(resident)
        return candidates[self._rng.randrange(len(candidates))]

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used with FIFO tie-break.

    Frequency counts start at 1 on insert and reset on eviction (no aging),
    the classic perfect-LFU reference policy.  Ties evict the block whose
    count was established earliest (per-set dict insertion order).
    """

    name = "lfu"

    def __init__(self, num_sets: int, associativity: int, *, seed: int = 0) -> None:
        super().__init__(num_sets, associativity, seed=seed)
        self._counts: list[dict[int, int]] = [{} for _ in range(num_sets)]

    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        counts = self._counts[set_index]
        best_address = -1
        best_count = -1
        for address, count in counts.items():
            if best_count < 0 or count < best_count:
                best_address = address
                best_count = count
        return best_address

    def on_hit(self, set_index: int, address: int) -> None:
        counts = self._counts[set_index]
        counts[address] = counts.get(address, 0) + 1

    def on_insert(self, set_index: int, address: int) -> None:
        self._counts[set_index][address] = 1

    def on_evict(self, set_index: int, address: int) -> None:
        self._counts[set_index].pop(address, None)

    def reset(self) -> None:
        for counts in self._counts:
            counts.clear()


class TwoQPolicy(ReplacementPolicy):
    """Simplified 2Q [Johnson & Shasha, VLDB 1994].

    New blocks enter a FIFO probation queue (``A1in``, sized to a quarter
    of the ways); a hit while on probation promotes the block into the main
    LRU queue (``Am``).  Eviction drains an over-full probation queue first
    — blocks touched exactly once leave without displacing the hot set.
    """

    name = "2q"

    def __init__(self, num_sets: int, associativity: int, *, seed: int = 0) -> None:
        super().__init__(num_sets, associativity, seed=seed)
        self._kin = max(1, associativity // 4)
        self._a1in: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        self._am: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        a1in = self._a1in[set_index]
        am = self._am[set_index]
        if a1in and (len(a1in) >= self._kin or not am):
            return next(iter(a1in))
        return next(iter(am))

    def on_hit(self, set_index: int, address: int) -> None:
        a1in = self._a1in[set_index]
        if address in a1in:
            del a1in[address]
            self._am[set_index][address] = None
            return
        am = self._am[set_index]
        if address in am:
            am.move_to_end(address)

    def on_insert(self, set_index: int, address: int) -> None:
        self._a1in[set_index][address] = None

    def on_evict(self, set_index: int, address: int) -> None:
        if self._a1in[set_index].pop(address, None) is None:
            self._am[set_index].pop(address, None)

    def reset(self) -> None:
        for queue in (*self._a1in, *self._am):
            queue.clear()


class ArcPolicy(ReplacementPolicy):
    """Adaptive Replacement Cache [Megiddo & Modha, FAST 2003], per set.

    Each set keeps two resident lists — ``T1`` (seen once recently) and
    ``T2`` (seen at least twice) — plus ghost lists ``B1``/``B2`` of
    recently evicted addresses.  A miss that hits a ghost list adapts the
    target size ``p`` of ``T1``: ghost hits in ``B1`` grow it (recency is
    winning), ghost hits in ``B2`` shrink it (frequency is winning).
    Invalidations are treated like evictions (the address moves to the
    matching ghost list), which keeps the adaptation well-defined under
    coherence traffic the original algorithm never sees.
    """

    name = "arc"

    def __init__(self, num_sets: int, associativity: int, *, seed: int = 0) -> None:
        super().__init__(num_sets, associativity, seed=seed)
        self._t1: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(num_sets)]
        self._t2: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(num_sets)]
        self._b1: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(num_sets)]
        self._b2: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(num_sets)]
        self._p: list[float] = [0.0] * num_sets

    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        t1 = self._t1[set_index]
        t2 = self._t2[set_index]
        p = self._p[set_index]
        ghost_b2 = incoming in self._b2[set_index]
        if t1 and (len(t1) > p or (ghost_b2 and len(t1) >= p) or not t2):
            return next(iter(t1))
        return next(iter(t2))

    def on_hit(self, set_index: int, address: int) -> None:
        t1 = self._t1[set_index]
        if address in t1:
            del t1[address]
            self._t2[set_index][address] = None
            return
        t2 = self._t2[set_index]
        if address in t2:
            t2.move_to_end(address)

    def on_insert(self, set_index: int, address: int) -> None:
        t1 = self._t1[set_index]
        b1 = self._b1[set_index]
        b2 = self._b2[set_index]
        capacity = self.associativity
        if address in b1:
            delta = 1.0 if len(b1) >= len(b2) else len(b2) / len(b1)
            self._p[set_index] = min(float(capacity), self._p[set_index] + delta)
            del b1[address]
            self._t2[set_index][address] = None
            return
        if address in b2:
            delta = 1.0 if len(b2) >= len(b1) else len(b1) / len(b2)
            self._p[set_index] = max(0.0, self._p[set_index] - delta)
            del b2[address]
            self._t2[set_index][address] = None
            return
        t1[address] = None
        # Bound the directory footprint: |T1|+|B1| <= c, total <= 2c.
        if len(t1) + len(b1) > capacity and b1:
            b1.popitem(last=False)
        while len(t1) + len(self._t2[set_index]) + len(b1) + len(b2) > 2 * capacity:
            if b2:
                b2.popitem(last=False)
            elif b1:
                b1.popitem(last=False)
            else:  # pragma: no cover - resident lists alone cannot exceed 2c
                break

    def on_evict(self, set_index: int, address: int) -> None:
        t1 = self._t1[set_index]
        if address in t1:
            del t1[address]
            self._b1[set_index][address] = None
            return
        t2 = self._t2[set_index]
        if address in t2:
            del t2[address]
            self._b2[set_index][address] = None

    def reset(self) -> None:
        for queue in (*self._t1, *self._t2, *self._b1, *self._b2):
            queue.clear()
        self._p = [0.0] * self.num_sets


#: Catalogue of replacement policies, keyed by CLI/grid name.  ``"lru"``
#: maps to the extracted class for completeness, but :func:`build_policy`
#: returns ``None`` for it: no policy installed *is* the LRU fast path.
POLICIES: dict[str, type[ReplacementPolicy]] = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "lfu": LfuPolicy,
    "2q": TwoQPolicy,
    "arc": ArcPolicy,
}


def normalize_policy(name: str | None) -> str:
    """Canonical policy name; ``None`` means the default (LRU)."""
    if name is None:
        return DEFAULT_POLICY
    key = name.strip().lower()
    if key not in POLICIES:
        known = ", ".join(POLICIES)
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; known policies: {known}"
        )
    return key


def build_policy(
    name: str | None, num_sets: int, associativity: int, *, seed: int = 0
) -> ReplacementPolicy | None:
    """Instantiate a policy by name; the default ("lru") builds to ``None``.

    ``None`` keeps the array on its native inlined LRU path, which is the
    bit-identity contract: a run with the default policy is byte-identical
    to a run that never heard of this module.
    """
    key = normalize_policy(name)
    if key == DEFAULT_POLICY:
        return None
    return POLICIES[key](num_sets, associativity, seed=seed)
