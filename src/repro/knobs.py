"""Central registry of every ``RNUCA_*`` environment knob.

Every environment variable the system reads is declared here once, with a
type, a default and a one-line description, and read through a typed
accessor.  Nothing else in ``src/repro`` may touch ``os.environ`` — the
``knobs-env-registry`` lint (:mod:`repro.check.lints`) enforces that
mechanically, and ``tests/test_docs.py`` cross-checks this registry (not a
source grep) against ``docs/CLI.md``, so a knob cannot be added without
being documented.

Why centralise: scattered ``os.environ["RNUCA_*"]`` reads made the
configuration surface invisible — a knob could be added, renamed or given
inconsistent parsing in one module without any other layer noticing.  The
registry turns the environment into a typed, enumerable API:

>>> from repro import knobs
>>> knobs.jobs()            # RNUCA_JOBS, int >= 1, default 1
1
>>> sorted(knobs.REGISTRY)[:2]
['RNUCA_CHARACTERIZATION_RECORDS', 'RNUCA_CHECK_LOCKS']

Accessors re-read the environment on every call (no import-time caching),
so tests can flip knobs with ``monkeypatch.setenv`` and long-lived
processes observe the environment they were launched with.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

# The environment accessor below is the single sanctioned read path.
# repro: allow-env(this module IS the registry)
_ENVIRON = os.environ

__all__ = [
    "Knob",
    "REGISTRY",
    "characterization_records",
    "check_locks",
    "engine",
    "eval_records",
    "eval_schedulers",
    "jobs",
    "policy",
    "results_dir",
    "serve_host",
    "serve_port",
    "trace_dir",
]


@dataclass(frozen=True)
class Knob:
    """One declared environment variable: name, type, default, doc."""

    name: str
    kind: str
    default: str | None
    description: str


#: Every knob the system reads, keyed by environment-variable name.
REGISTRY: dict[str, Knob] = {}


def _declare(name: str, kind: str, default: str | None, description: str) -> Knob:
    knob = Knob(name=name, kind=kind, default=default, description=description)
    REGISTRY[name] = knob
    return knob


JOBS = _declare(
    "RNUCA_JOBS", "int", "1",
    "Worker processes for the experiment grid (default 1 = serial).",
)
RESULTS_DIR = _declare(
    "RNUCA_RESULTS_DIR", "path", None,
    "Persist simulation results as content-addressed JSON under this directory.",
)
TRACE_DIR = _declare(
    "RNUCA_TRACE_DIR", "path", None,
    "Binary trace cache directory (the content-addressed TraceStore).",
)
ENGINE = _declare(
    "RNUCA_ENGINE", "str", "fast",
    "Replay engine: 'fast' (columnar) or 'reference' (preserved seed path).",
)
EVAL_RECORDS = _declare(
    "RNUCA_EVAL_RECORDS", "int", None,
    "Trace length override for the evaluation figures (quick smoke runs).",
)
EVAL_SCHEDULERS = _declare(
    "RNUCA_EVAL_SCHEDULERS", "csv", None,
    "Comma-separated scheduler axis for the evaluation figures (e.g. 'fixed,greedy').",
)
CHARACTERIZATION_RECORDS = _declare(
    "RNUCA_CHARACTERIZATION_RECORDS", "int", None,
    "Trace length override for the characterisation figures.",
)
SERVE_HOST = _declare(
    "RNUCA_SERVE_HOST", "str", "127.0.0.1",
    "Bind/connect host of the simulation daemon (repro serve).",
)
SERVE_PORT = _declare(
    "RNUCA_SERVE_PORT", "int", "7781",
    "TCP port of the simulation daemon (repro serve).",
)
CHECK_LOCKS = _declare(
    "RNUCA_CHECK_LOCKS", "flag", None,
    "Set to 1 to enable the runtime lock-order/race detector under pytest.",
)
POLICY = _declare(
    "RNUCA_POLICY", "str", "lru",
    "Default L2 replacement policy when a run does not pass --policy.",
)


def raw(knob: Knob) -> str | None:
    """The knob's raw environment value, or ``None`` when unset."""
    return _ENVIRON.get(knob.name)


def _int_or_default(knob: Knob, default: int) -> int:
    value = raw(knob)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


def jobs() -> int:
    """``RNUCA_JOBS`` as a worker count: an int clamped to >= 1."""
    return max(1, _int_or_default(JOBS, 1))


def results_dir() -> str | None:
    """``RNUCA_RESULTS_DIR``, or ``None`` when unset or empty."""
    return raw(RESULTS_DIR) or None


def trace_dir() -> str | None:
    """``RNUCA_TRACE_DIR``, or ``None`` when unset or empty."""
    return raw(TRACE_DIR) or None


def engine() -> str:
    """``RNUCA_ENGINE``, verbatim (default ``"fast"``).

    Deliberately unvalidated: :class:`~repro.sim.engine.TraceSimulator`
    rejects unknown engines, so a typo in the environment fails loudly
    instead of silently running the fast path.
    """
    value = raw(ENGINE)
    return value if value is not None else "fast"


def eval_records(default: int) -> int:
    """``RNUCA_EVAL_RECORDS`` as a trace length, or ``default``."""
    value = raw(EVAL_RECORDS)
    return int(value) if value else default


def eval_schedulers() -> tuple[str, ...]:
    """``RNUCA_EVAL_SCHEDULERS`` as a tuple of scheduler names, or ``()``.

    Deliberately unvalidated, like :func:`engine`:
    :class:`~repro.sim.runner.ExperimentGrid` rejects unknown scheduler
    names, so a typo fails loudly instead of silently replaying fixed.
    """
    value = raw(EVAL_SCHEDULERS)
    if not value:
        return ()
    return tuple(name.strip() for name in value.split(",") if name.strip())


def characterization_records(default: int) -> int:
    """``RNUCA_CHARACTERIZATION_RECORDS`` as a trace length, or ``default``."""
    value = raw(CHARACTERIZATION_RECORDS)
    return int(value) if value else default


def serve_host() -> str:
    """``RNUCA_SERVE_HOST``, or the loopback default when unset/empty."""
    return raw(SERVE_HOST) or "127.0.0.1"


def serve_port() -> int:
    """``RNUCA_SERVE_PORT`` as a port number (default 7781)."""
    return _int_or_default(SERVE_PORT, 7781)


def policy() -> str:
    """``RNUCA_POLICY``, verbatim (default ``"lru"``).

    Deliberately unvalidated, like :func:`engine`:
    :func:`~repro.cache.policies.normalize_policy` rejects unknown names at
    design-build time, so a typo fails loudly instead of silently
    replaying LRU.
    """
    return raw(POLICY) or "lru"


def check_locks() -> bool:
    """``RNUCA_CHECK_LOCKS`` as an opt-in flag (1/true/yes/on)."""
    value = raw(CHECK_LOCKS)
    return value is not None and value.strip().lower() in ("1", "true", "yes", "on")
