"""Central registry of every ``RNUCA_*`` environment knob.

Every environment variable the system reads is declared here once, with a
type, a default and a one-line description, and read through a typed
accessor.  Nothing else in ``src/repro`` may touch ``os.environ`` — the
``knobs-env-registry`` lint (:mod:`repro.check.lints`) enforces that
mechanically, and ``tests/test_docs.py`` cross-checks this registry (not a
source grep) against ``docs/CLI.md``, so a knob cannot be added without
being documented.

Why centralise: scattered ``os.environ["RNUCA_*"]`` reads made the
configuration surface invisible — a knob could be added, renamed or given
inconsistent parsing in one module without any other layer noticing.  The
registry turns the environment into a typed, enumerable API:

>>> from repro import knobs
>>> knobs.jobs()            # RNUCA_JOBS, int >= 1, default 1
1
>>> sorted(knobs.REGISTRY)[:2]
['RNUCA_CHARACTERIZATION_RECORDS', 'RNUCA_CHECK_LOCKS']

Accessors re-read the environment on every call (no import-time caching),
so tests can flip knobs with ``monkeypatch.setenv`` and long-lived
processes observe the environment they were launched with.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

# The environment accessor below is the single sanctioned read path.
# repro: allow-env(this module IS the registry)
_ENVIRON = os.environ

__all__ = [
    "Knob",
    "REGISTRY",
    "characterization_records",
    "check_locks",
    "client_retries",
    "engine",
    "eval_records",
    "eval_schedulers",
    "fault_seed",
    "faults",
    "jobs",
    "point_retries",
    "point_timeout_s",
    "policy",
    "results_dir",
    "serve_host",
    "serve_idle_s",
    "serve_max_inflight",
    "serve_port",
    "trace_dir",
]


@dataclass(frozen=True)
class Knob:
    """One declared environment variable: name, type, default, doc."""

    name: str
    kind: str
    default: str | None
    description: str


#: Every knob the system reads, keyed by environment-variable name.
REGISTRY: dict[str, Knob] = {}


def _declare(name: str, kind: str, default: str | None, description: str) -> Knob:
    knob = Knob(name=name, kind=kind, default=default, description=description)
    REGISTRY[name] = knob
    return knob


JOBS = _declare(
    "RNUCA_JOBS", "int", "1",
    "Worker processes for the experiment grid (default 1 = serial).",
)
RESULTS_DIR = _declare(
    "RNUCA_RESULTS_DIR", "path", None,
    "Persist simulation results as content-addressed JSON under this directory.",
)
TRACE_DIR = _declare(
    "RNUCA_TRACE_DIR", "path", None,
    "Binary trace cache directory (the content-addressed TraceStore).",
)
ENGINE = _declare(
    "RNUCA_ENGINE", "str", "fast",
    "Replay engine: 'fast' (columnar), 'batch' (vectorised numpy kernel) "
    "or 'reference' (preserved seed path).",
)
EVAL_RECORDS = _declare(
    "RNUCA_EVAL_RECORDS", "int", None,
    "Trace length override for the evaluation figures (quick smoke runs).",
)
EVAL_SCHEDULERS = _declare(
    "RNUCA_EVAL_SCHEDULERS", "csv", None,
    "Comma-separated scheduler axis for the evaluation figures (e.g. 'fixed,greedy').",
)
CHARACTERIZATION_RECORDS = _declare(
    "RNUCA_CHARACTERIZATION_RECORDS", "int", None,
    "Trace length override for the characterisation figures.",
)
SERVE_HOST = _declare(
    "RNUCA_SERVE_HOST", "str", "127.0.0.1",
    "Bind/connect host of the simulation daemon (repro serve).",
)
SERVE_PORT = _declare(
    "RNUCA_SERVE_PORT", "int", "7781",
    "TCP port of the simulation daemon (repro serve).",
)
CHECK_LOCKS = _declare(
    "RNUCA_CHECK_LOCKS", "flag", None,
    "Set to 1 to enable the runtime lock-order/race detector under pytest.",
)
POLICY = _declare(
    "RNUCA_POLICY", "str", "lru",
    "Default L2 replacement policy when a run does not pass --policy.",
)
FAULTS = _declare(
    "RNUCA_FAULTS", "str", None,
    "Deterministic fault-injection plan, e.g. 'worker-crash:p=0.1;slow-sim:p=0.02,ms=500' (unset = no injection).",
)
FAULT_SEED = _declare(
    "RNUCA_FAULT_SEED", "int", "0",
    "Seed for the fault-injection draws; the same plan + seed replays the same faults.",
)
POINT_TIMEOUT_S = _declare(
    "RNUCA_POINT_TIMEOUT_S", "float", "300",
    "Per-point simulation deadline in seconds; an expired pool future is cancelled and retried.",
)
POINT_RETRIES = _declare(
    "RNUCA_POINT_RETRIES", "int", "3",
    "Per-point retry budget for transient failures (pool crashes, deadlines) before the point errors.",
)
SERVE_IDLE_S = _declare(
    "RNUCA_SERVE_IDLE_S", "float", "300",
    "Serve-connection idle timeout in seconds; on expiry the daemon sends an error event and closes (0 disables).",
)
SERVE_MAX_INFLIGHT = _declare(
    "RNUCA_SERVE_MAX_INFLIGHT", "int", "64",
    "Bounded admission: max run requests in flight before the daemon sheds with an 'overloaded' event.",
)
CLIENT_RETRIES = _declare(
    "RNUCA_CLIENT_RETRIES", "int", "2",
    "ServeClient retry budget for transient failures (disconnects, shedding); resubmission is safe, points are content-addressed.",
)


def raw(knob: Knob) -> str | None:
    """The knob's raw environment value, or ``None`` when unset."""
    return _ENVIRON.get(knob.name)


def _int_or_default(knob: Knob, default: int) -> int:
    value = raw(knob)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


def jobs() -> int:
    """``RNUCA_JOBS`` as a worker count: an int clamped to >= 1."""
    return max(1, _int_or_default(JOBS, 1))


def results_dir() -> str | None:
    """``RNUCA_RESULTS_DIR``, or ``None`` when unset or empty."""
    return raw(RESULTS_DIR) or None


def trace_dir() -> str | None:
    """``RNUCA_TRACE_DIR``, or ``None`` when unset or empty."""
    return raw(TRACE_DIR) or None


def engine() -> str:
    """``RNUCA_ENGINE``, verbatim (default ``"fast"``).

    Deliberately unvalidated: :class:`~repro.sim.engine.TraceSimulator`
    rejects unknown engines, so a typo in the environment fails loudly
    instead of silently running the fast path.
    """
    value = raw(ENGINE)
    return value if value is not None else "fast"


def eval_records(default: int) -> int:
    """``RNUCA_EVAL_RECORDS`` as a trace length, or ``default``."""
    value = raw(EVAL_RECORDS)
    return int(value) if value else default


def eval_schedulers() -> tuple[str, ...]:
    """``RNUCA_EVAL_SCHEDULERS`` as a tuple of scheduler names, or ``()``.

    Deliberately unvalidated, like :func:`engine`:
    :class:`~repro.sim.runner.ExperimentGrid` rejects unknown scheduler
    names, so a typo fails loudly instead of silently replaying fixed.
    """
    value = raw(EVAL_SCHEDULERS)
    if not value:
        return ()
    return tuple(name.strip() for name in value.split(",") if name.strip())


def characterization_records(default: int) -> int:
    """``RNUCA_CHARACTERIZATION_RECORDS`` as a trace length, or ``default``."""
    value = raw(CHARACTERIZATION_RECORDS)
    return int(value) if value else default


def serve_host() -> str:
    """``RNUCA_SERVE_HOST``, or the loopback default when unset/empty."""
    return raw(SERVE_HOST) or "127.0.0.1"


def serve_port() -> int:
    """``RNUCA_SERVE_PORT`` as a port number (default 7781)."""
    return _int_or_default(SERVE_PORT, 7781)


def policy() -> str:
    """``RNUCA_POLICY``, verbatim (default ``"lru"``).

    Deliberately unvalidated, like :func:`engine`:
    :func:`~repro.cache.policies.normalize_policy` rejects unknown names at
    design-build time, so a typo fails loudly instead of silently
    replaying LRU.
    """
    return raw(POLICY) or "lru"


def check_locks() -> bool:
    """``RNUCA_CHECK_LOCKS`` as an opt-in flag (1/true/yes/on)."""
    value = raw(CHECK_LOCKS)
    return value is not None and value.strip().lower() in ("1", "true", "yes", "on")


def _float_or_default(knob: Knob, default: float) -> float:
    value = raw(knob)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        return default


def faults() -> str | None:
    """``RNUCA_FAULTS``, or ``None`` when unset or empty.

    Deliberately unvalidated here, like :func:`engine`:
    :func:`repro.faults.parse_faults` rejects malformed plans loudly, so a
    typo fails the run instead of silently injecting nothing.
    """
    return raw(FAULTS) or None


def fault_seed() -> int:
    """``RNUCA_FAULT_SEED`` as the fault-draw seed (default 0)."""
    return _int_or_default(FAULT_SEED, 0)


def point_timeout_s() -> float:
    """``RNUCA_POINT_TIMEOUT_S`` as a positive deadline (default 300s)."""
    return max(0.001, _float_or_default(POINT_TIMEOUT_S, 300.0))


def point_retries() -> int:
    """``RNUCA_POINT_RETRIES`` as a retry budget, clamped to >= 0."""
    return max(0, _int_or_default(POINT_RETRIES, 3))


def serve_idle_s() -> float:
    """``RNUCA_SERVE_IDLE_S`` as an idle timeout (default 300s, 0 disables)."""
    return max(0.0, _float_or_default(SERVE_IDLE_S, 300.0))


def serve_max_inflight() -> int:
    """``RNUCA_SERVE_MAX_INFLIGHT`` as an admission bound, clamped to >= 1."""
    return max(1, _int_or_default(SERVE_MAX_INFLIGHT, 64))


def client_retries() -> int:
    """``RNUCA_CLIENT_RETRIES`` as a retry budget, clamped to >= 0."""
    return max(0, _int_or_default(CLIENT_RETRIES, 2))
