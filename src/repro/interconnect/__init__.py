"""On-chip interconnect: topologies, routing and the network latency model."""

from repro.interconnect.network import NetworkModel
from repro.interconnect.routing import dimension_order_route
from repro.interconnect.topology import FoldedTorus2D, Mesh2D, Topology, build_topology

__all__ = [
    "Topology",
    "FoldedTorus2D",
    "Mesh2D",
    "build_topology",
    "dimension_order_route",
    "NetworkModel",
]
