"""On-chip network topologies.

The paper uses a 2-D *folded torus* (Section 5.1): a torus has no edges so
every node sees the same latency distribution, which matters for the shared
(address-interleaved) placement of read-write data.  A 2-D mesh is also
provided for the topology ablation: meshes penalise edge tiles and create a
hot spot in the centre.

Tiles are numbered in row-major order: tile ``t`` sits at row ``t // cols``
and column ``t % cols``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cmp.config import InterconnectConfig
from repro.errors import ConfigurationError


class Topology(ABC):
    """Common interface for 2-D tiled topologies."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("topology dimensions must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def coordinates(self, node: int) -> tuple[int, int]:
        """(row, col) of a node id (row-major numbering)."""
        self._check_node(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at (row, col), with wrap-around semantics."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} out of range for {self.rows}x{self.cols} topology"
            )

    @abstractmethod
    def hop_distance(self, src: int, dst: int) -> int:
        """Number of links traversed between two nodes (0 if identical)."""

    @abstractmethod
    def neighbors(self, node: int) -> list[int]:
        """Directly connected nodes."""

    def nodes_within(self, center: int, max_hops: int) -> list[int]:
        """All nodes whose hop distance from ``center`` is <= ``max_hops``."""
        return [
            node
            for node in range(self.num_nodes)
            if self.hop_distance(center, node) <= max_hops
        ]

    def average_distance(self, src: int) -> float:
        """Mean hop distance from ``src`` to every node (including itself)."""
        total = sum(self.hop_distance(src, dst) for dst in range(self.num_nodes))
        return total / self.num_nodes

    def diameter(self) -> int:
        """Maximum hop distance between any pair of nodes."""
        return max(
            self.hop_distance(s, d)
            for s in range(self.num_nodes)
            for d in range(self.num_nodes)
        )


class FoldedTorus2D(Topology):
    """A 2-D torus (folded for implementation, which does not change hops).

    Each dimension wraps around, so the distance along a dimension of size
    ``n`` is ``min(delta, n - delta)``.
    """

    def hop_distance(self, src: int, dst: int) -> int:
        self._check_node(src)
        self._check_node(dst)
        return self._distance(src, dst)

    def _distance(self, src: int, dst: int) -> int:
        # Deliberately uncached: an ``lru_cache`` on an instance method pins
        # every topology ever created.  Hot paths use the precomputed latency
        # table in :class:`repro.interconnect.network.NetworkModel` instead.
        sr, sc = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        dy = abs(sr - dr)
        dx = abs(sc - dc)
        dy = min(dy, self.rows - dy)
        dx = min(dx, self.cols - dx)
        return dy + dx

    def neighbors(self, node: int) -> list[int]:
        self._check_node(node)
        row, col = self.coordinates(node)
        candidates = {
            self.node_at(row - 1, col),
            self.node_at(row + 1, col),
            self.node_at(row, col - 1),
            self.node_at(row, col + 1),
        }
        candidates.discard(node)
        return sorted(candidates)


class Mesh2D(Topology):
    """A 2-D mesh: no wrap-around links, Manhattan distance."""

    def hop_distance(self, src: int, dst: int) -> int:
        self._check_node(src)
        self._check_node(dst)
        sr, sc = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        return abs(sr - dr) + abs(sc - dc)

    def neighbors(self, node: int) -> list[int]:
        self._check_node(node)
        row, col = self.coordinates(node)
        result = []
        if row > 0:
            result.append(self.node_at(row - 1, col))
        if row < self.rows - 1:
            result.append(self.node_at(row + 1, col))
        if col > 0:
            result.append(self.node_at(row, col - 1))
        if col < self.cols - 1:
            result.append(self.node_at(row, col + 1))
        return sorted(result)


def build_topology(config: InterconnectConfig) -> Topology:
    """Instantiate the topology named by an :class:`InterconnectConfig`."""
    if config.topology == "folded_torus":
        return FoldedTorus2D(config.rows, config.cols)
    if config.topology == "mesh":
        return Mesh2D(config.rows, config.cols)
    raise ConfigurationError(f"unknown topology: {config.topology!r}")
