"""Deterministic dimension-order (XY) routing.

Routing does not change hop counts on these topologies, but the explicit path
is useful for link-utilisation accounting and for the hot-spot analysis in
the torus-versus-mesh ablation.
"""

from __future__ import annotations

from repro.interconnect.topology import FoldedTorus2D, Topology


def _step_toward(current: int, target: int, size: int, wraps: bool) -> int:
    """Next coordinate moving from ``current`` toward ``target``."""
    if current == target:
        return current
    forward = (target - current) % size
    backward = (current - target) % size
    if wraps and backward < forward:
        return (current - 1) % size
    if wraps and forward <= backward:
        return (current + 1) % size
    return current + 1 if target > current else current - 1


def dimension_order_route(topology: Topology, src: int, dst: int) -> list[int]:
    """Return the node sequence from ``src`` to ``dst`` (inclusive of both).

    X (column) dimension is routed first, then Y (row), which is deadlock-free
    on meshes and — combined with virtual channels that we do not model — on
    tori as well.
    """
    wraps = isinstance(topology, FoldedTorus2D)
    src_row, src_col = topology.coordinates(src)
    dst_row, dst_col = topology.coordinates(dst)

    path = [src]
    row, col = src_row, src_col
    while col != dst_col:
        col = _step_toward(col, dst_col, topology.cols, wraps)
        path.append(topology.node_at(row, col))
    while row != dst_row:
        row = _step_toward(row, dst_row, topology.rows, wraps)
        path.append(topology.node_at(row, col))
    return path


def link_loads(topology: Topology, traffic: dict[tuple[int, int], int]) -> dict:
    """Per-link message counts for a traffic matrix.

    ``traffic`` maps (src, dst) pairs to message counts.  The result maps
    directed links (node_a, node_b) to the number of messages crossing them;
    it is used to quantify mesh hot spots in the topology ablation.
    """
    loads: dict[tuple[int, int], int] = {}
    for (src, dst), count in traffic.items():
        path = dimension_order_route(topology, src, dst)
        for a, b in zip(path, path[1:], strict=False):
            loads[(a, b)] = loads.get((a, b), 0) + count
    return loads
