"""Network latency model and message accounting.

One-way latency between two tiles is::

    hops * link_latency + (hops + 1) * router_latency

with Table-1 values of 1 cycle per link and 2 cycles per router.  A request
to a remote tile and its data response are two one-way traversals.  The model
also counts messages and hops per message class so that the analysis code can
report network-occupancy effects (e.g. why instruction migration is a bad
idea, Section 3.3.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.cmp.config import InterconnectConfig
from repro.interconnect.topology import Topology, build_topology


@dataclass(frozen=True)
class Hop:
    """A computed one-way traversal."""

    src: int
    dst: int
    hops: int
    latency: int


class NetworkModel:
    """Latency and traffic accounting over a :class:`Topology`."""

    def __init__(self, config: InterconnectConfig, topology: Topology | None = None):
        self.config = config
        self.topology = topology if topology is not None else build_topology(config)
        self.messages = 0
        self.total_hops = 0
        self.hops_by_class: Counter[str] = Counter()
        self.messages_by_class: Counter[str] = Counter()
        # Latency is a pure function of the (static) topology, so the full
        # pairwise table is precomputed once; the simulation hot path indexes
        # it instead of recomputing hop distances per access.
        link = config.link_latency
        router = config.router_latency
        nodes = range(self.topology.num_nodes)
        self.one_way_table: list[list[int]] = [
            [
                self.topology.hop_distance(src, dst) * link
                + (self.topology.hop_distance(src, dst) + 1) * router
                for dst in nodes
            ]
            for src in nodes
        ]

    # ------------------------------------------------------------------ #
    # Latency
    # ------------------------------------------------------------------ #
    def one_way_latency(self, src: int, dst: int) -> int:
        """Latency of a single message from ``src`` to ``dst`` in cycles.

        A local (same-tile) transfer costs a single router traversal.
        """
        if src < 0 or dst < 0:
            self.topology.hop_distance(src, dst)  # raises the range error
        try:
            return self.one_way_table[src][dst]
        except IndexError:
            self.topology.hop_distance(src, dst)  # raises the range error
            raise  # pragma: no cover - hop_distance always raises first

    def round_trip_latency(self, src: int, dst: int) -> int:
        """Request + response latency between two tiles."""
        return 2 * self.one_way_latency(src, dst)

    def average_one_way_latency(self, src: int) -> float:
        """Mean one-way latency from ``src`` to all tiles (uniform traffic)."""
        nodes = self.topology.num_nodes
        return sum(self.one_way_latency(src, d) for d in range(nodes)) / nodes

    # ------------------------------------------------------------------ #
    # Traffic accounting
    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, message_class: str = "data") -> Hop:
        """Account for one message and return its latency."""
        hops = self.topology.hop_distance(src, dst)
        latency = self.one_way_latency(src, dst)
        self.messages += 1
        self.total_hops += hops
        self.messages_by_class[message_class] += 1
        self.hops_by_class[message_class] += hops
        return Hop(src=src, dst=dst, hops=hops, latency=latency)

    @property
    def average_hops(self) -> float:
        return self.total_hops / self.messages if self.messages else 0.0

    def reset_stats(self) -> None:
        self.messages = 0
        self.total_hops = 0
        self.hops_by_class.clear()
        self.messages_by_class.clear()
