"""MOSI protocol state machine for L1 caches kept coherent by a directory.

The protocol is modelled after Piranha (four stable states M, O, S, I).  The
trace-driven simulator resolves each access atomically, so only the stable
states and the actions required to reach them are modelled; transient states
exist in real hardware to tolerate concurrency that a serialized trace replay
does not produce.

:class:`MosiProtocol` answers two questions for a requesting cache:

* given the local state and the access type, is this a hit, an upgrade, or a
  miss (:meth:`local_action`)?
* given the set of remote copies, which invalidations/forwards are needed and
  who supplies the data (:meth:`remote_actions`)?
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cache.block import CoherenceState
from repro.coherence.messages import MessageType
from repro.errors import ProtocolError


class LocalOutcome(enum.Enum):
    """Result of probing the local cache for an access."""

    HIT = "hit"
    UPGRADE = "upgrade"  # valid copy present but write permission missing
    MISS = "miss"


@dataclass
class ProtocolAction:
    """Everything the requestor must do to complete an access.

    Attributes:
        outcome: hit / upgrade / miss at the local cache.
        new_state: state the local copy ends in.
        messages: protocol messages that must be exchanged (types only; the
            caller assigns endpoints because it knows the topology).
        source: where the data comes from ("local", "remote_l1", "remote_l2",
            "memory", or "none" for upgrades satisfied by invalidations).
        invalidate_sharers: whether every remote sharer must be invalidated.
    """

    outcome: LocalOutcome
    new_state: CoherenceState
    messages: list[MessageType] = field(default_factory=list)
    source: str = "local"
    invalidate_sharers: bool = False


class MosiProtocol:
    """Stable-state MOSI transitions for a directory-based protocol."""

    #: States from which a read hits locally.
    READABLE = (
        CoherenceState.MODIFIED,
        CoherenceState.OWNED,
        CoherenceState.EXCLUSIVE,
        CoherenceState.SHARED,
    )
    #: States from which a write hits locally without coherence traffic.
    WRITABLE = (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)

    def local_action(
        self, state: CoherenceState, *, write: bool
    ) -> LocalOutcome:
        """Classify an access against the local copy's state."""
        if not write:
            return LocalOutcome.HIT if state in self.READABLE else LocalOutcome.MISS
        if state in self.WRITABLE:
            return LocalOutcome.HIT
        if state in (CoherenceState.OWNED, CoherenceState.SHARED):
            return LocalOutcome.UPGRADE
        return LocalOutcome.MISS

    def read_miss(
        self, *, owner_exists: bool, sharers_exist: bool
    ) -> ProtocolAction:
        """Resolve a read miss at the directory.

        If a dirty owner exists it forwards the data (the requestor ends in S
        and the owner transitions M->O).  Otherwise the data comes from the
        L2/home (or memory) and the requestor ends in S.
        """
        if owner_exists:
            return ProtocolAction(
                outcome=LocalOutcome.MISS,
                new_state=CoherenceState.SHARED,
                messages=[
                    MessageType.GET_SHARED,
                    MessageType.FORWARD_GET_SHARED,
                    MessageType.DATA,
                ],
                source="remote_l1",
            )
        return ProtocolAction(
            outcome=LocalOutcome.MISS,
            new_state=(
                CoherenceState.SHARED if sharers_exist else CoherenceState.EXCLUSIVE
            ),
            messages=[MessageType.GET_SHARED, MessageType.DATA],
            source="remote_l2",
        )

    def write_miss(
        self, *, owner_exists: bool, sharers_exist: bool, local_state: CoherenceState
    ) -> ProtocolAction:
        """Resolve a write miss or upgrade at the directory."""
        messages: list[MessageType]
        if local_state in (CoherenceState.OWNED, CoherenceState.SHARED):
            # Upgrade: data already present, only invalidations are needed.
            messages = [MessageType.UPGRADE]
            if sharers_exist or owner_exists:
                messages += [MessageType.INVALIDATE, MessageType.INVALIDATE_ACK]
            return ProtocolAction(
                outcome=LocalOutcome.UPGRADE,
                new_state=CoherenceState.MODIFIED,
                messages=messages,
                source="none",
                invalidate_sharers=True,
            )
        if local_state is not CoherenceState.INVALID:
            raise ProtocolError(
                f"write miss requested with writable local state {local_state}"
            )
        messages = [MessageType.GET_MODIFIED]
        if owner_exists:
            messages += [MessageType.FORWARD_GET_MODIFIED, MessageType.DATA]
            source = "remote_l1"
        else:
            messages += [MessageType.DATA_EXCLUSIVE]
            source = "remote_l2"
        if sharers_exist:
            messages += [MessageType.INVALIDATE, MessageType.INVALIDATE_ACK]
        return ProtocolAction(
            outcome=LocalOutcome.MISS,
            new_state=CoherenceState.MODIFIED,
            messages=messages,
            source=source,
            invalidate_sharers=True,
        )

    def eviction_messages(self, state: CoherenceState) -> list[MessageType]:
        """Messages required to evict a block in the given state."""
        if state in (CoherenceState.MODIFIED, CoherenceState.OWNED):
            return [MessageType.PUT_MODIFIED, MessageType.WRITEBACK_ACK]
        if state in (CoherenceState.SHARED, CoherenceState.EXCLUSIVE):
            return [MessageType.PUT_SHARED]
        return []

    def downgrade_on_remote_read(self, state: CoherenceState) -> CoherenceState:
        """New state of a copy whose block is read by another core."""
        if state is CoherenceState.MODIFIED:
            return CoherenceState.OWNED
        if state is CoherenceState.EXCLUSIVE:
            return CoherenceState.SHARED
        return state

    def state_on_fill(self, *, write: bool, exclusive: bool) -> CoherenceState:
        """State of a newly filled copy."""
        if write:
            return CoherenceState.MODIFIED
        return CoherenceState.EXCLUSIVE if exclusive else CoherenceState.SHARED
