"""Coherence message types exchanged between tiles and the directory.

Only the message *kinds* and their counts matter to the trace-driven model;
payloads are never represented.  Message sizes (control vs. 64-byte data) are
tracked so that bandwidth figures can be reported by the analysis code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cmp.config import BLOCK_SIZE

#: Size in bytes of a control (address-only) message.
CONTROL_MESSAGE_BYTES = 8

#: Size in bytes of a data-carrying message.
DATA_MESSAGE_BYTES = BLOCK_SIZE + CONTROL_MESSAGE_BYTES


class MessageType(enum.Enum):
    """Piranha-style MOSI protocol messages."""

    GET_SHARED = "GetS"
    GET_MODIFIED = "GetM"
    UPGRADE = "Upg"
    PUT_SHARED = "PutS"
    PUT_MODIFIED = "PutM"
    FORWARD_GET_SHARED = "FwdGetS"
    FORWARD_GET_MODIFIED = "FwdGetM"
    INVALIDATE = "Inv"
    INVALIDATE_ACK = "InvAck"
    DATA = "Data"
    DATA_EXCLUSIVE = "DataE"
    WRITEBACK = "WB"
    WRITEBACK_ACK = "WBAck"
    MEMORY_READ = "MemRd"
    MEMORY_WRITE = "MemWr"

    @property
    def carries_data(self) -> bool:
        return self in (
            MessageType.DATA,
            MessageType.DATA_EXCLUSIVE,
            MessageType.WRITEBACK,
            MessageType.PUT_MODIFIED,
            MessageType.MEMORY_WRITE,
        )

    @property
    def size_bytes(self) -> int:
        return DATA_MESSAGE_BYTES if self.carries_data else CONTROL_MESSAGE_BYTES


@dataclass(frozen=True)
class CoherenceMessage:
    """One protocol message: type, endpoints and the block it concerns."""

    message_type: MessageType
    src: int
    dst: int
    block_address: int

    @property
    def size_bytes(self) -> int:
        return self.message_type.size_bytes
