"""Coherence substrate: MOSI protocol, full-map directory, message types."""

from repro.coherence.directory import DirectoryEntry, DirectoryState, FullMapDirectory
from repro.coherence.messages import CoherenceMessage, MessageType
from repro.coherence.mosi import MosiProtocol, ProtocolAction

__all__ = [
    "MessageType",
    "CoherenceMessage",
    "MosiProtocol",
    "ProtocolAction",
    "DirectoryState",
    "DirectoryEntry",
    "FullMapDirectory",
]
