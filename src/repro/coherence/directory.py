"""Full-map distributed directory.

The paper's private and ASR designs assume a full-map directory distributed
across the tiles by address interleaving (and, optimistically, with zero area
overhead — Section 5.1).  The shared and R-NUCA designs need a directory
covering only the L1 caches, co-located with each block's home L2 slice.

The directory tracks, per block: the set of tiles holding a copy, which tile
(if any) owns a dirty copy, and the stable directory state.  It also counts
the storage a real implementation would need so that the paper's 1.2 MB/tile
versus 152 KB/tile comparison (Section 2.2) can be reproduced.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ProtocolError


class DirectoryState(enum.Enum):
    """Stable directory states for a block."""

    UNCACHED = "U"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class DirectoryEntry:
    """Sharers/owner bookkeeping for one block."""

    block_address: int
    state: DirectoryState = DirectoryState.UNCACHED
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None

    def is_cached(self) -> bool:
        return self.state is not DirectoryState.UNCACHED

    def copy_holders(self) -> set[int]:
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders


class FullMapDirectory:
    """A full-map directory for one home node (or one private-design tile)."""

    def __init__(self, home: int, num_tiles: int) -> None:
        self.home = home
        self.num_tiles = num_tiles
        self._entries: dict[int, DirectoryEntry] = {}
        self.lookups = 0
        self.invalidations_sent = 0
        self.forwards_sent = 0

    # ------------------------------------------------------------------ #
    # Entry access
    # ------------------------------------------------------------------ #
    def entry(self, block_address: int) -> DirectoryEntry:
        """Get (creating if needed) the entry for a block."""
        self.lookups += 1
        entry = self._entries.get(block_address)
        if entry is None:
            entry = DirectoryEntry(block_address=block_address)
            self._entries[block_address] = entry
        return entry

    def peek(self, block_address: int) -> DirectoryEntry | None:
        """Look at an entry without creating it or counting a lookup."""
        return self._entries.get(block_address)

    def __len__(self) -> int:
        return len(self._entries)

    def tracked_blocks(self) -> Iterable[int]:
        return self._entries.keys()

    # ------------------------------------------------------------------ #
    # Protocol-driven updates
    # ------------------------------------------------------------------ #
    def record_read(self, block_address: int, requestor: int) -> DirectoryEntry:
        """A requestor obtained a readable copy."""
        entry = self.entry(block_address)
        if entry.state is DirectoryState.MODIFIED and entry.owner is not None:
            # Owner was forwarded the request; it keeps an Owned copy.
            self.forwards_sent += 1
            entry.sharers.add(entry.owner)
        entry.sharers.add(requestor)
        if entry.state is DirectoryState.UNCACHED:
            entry.state = DirectoryState.SHARED
        elif entry.state is DirectoryState.MODIFIED:
            entry.state = DirectoryState.SHARED
        entry.owner = entry.owner if entry.state is DirectoryState.MODIFIED else None
        return entry

    def record_write(self, block_address: int, requestor: int) -> list[int]:
        """A requestor obtained an exclusive copy; returns invalidated tiles."""
        entry = self.entry(block_address)
        invalidated = sorted(entry.copy_holders() - {requestor})
        self.invalidations_sent += len(invalidated)
        if entry.state is DirectoryState.MODIFIED and entry.owner not in (
            None,
            requestor,
        ):
            self.forwards_sent += 1
        entry.sharers.clear()
        entry.owner = requestor
        entry.state = DirectoryState.MODIFIED
        return invalidated

    def record_eviction(self, block_address: int, tile: int) -> None:
        """A tile dropped its copy (clean eviction or writeback)."""
        entry = self._entries.get(block_address)
        if entry is None:
            return
        entry.sharers.discard(tile)
        if entry.owner == tile:
            entry.owner = None
            entry.state = (
                DirectoryState.SHARED if entry.sharers else DirectoryState.UNCACHED
            )
        elif not entry.sharers and entry.owner is None:
            entry.state = DirectoryState.UNCACHED
        if entry.state is DirectoryState.UNCACHED:
            del self._entries[block_address]

    def invalidate_block(self, block_address: int) -> list[int]:
        """Invalidate every copy of a block (page shootdown support)."""
        entry = self._entries.pop(block_address, None)
        if entry is None:
            return []
        holders = sorted(entry.copy_holders())
        self.invalidations_sent += len(holders)
        return holders

    def validate(self) -> None:
        """Check directory invariants; raises :class:`ProtocolError`."""
        for entry in self._entries.values():
            if entry.state is DirectoryState.MODIFIED:
                if entry.owner is None:
                    raise ProtocolError(
                        f"block {entry.block_address:#x} MODIFIED without owner"
                    )
            if entry.state is DirectoryState.UNCACHED and entry.copy_holders():
                raise ProtocolError(
                    f"block {entry.block_address:#x} UNCACHED with copies"
                )

    # ------------------------------------------------------------------ #
    # Storage model (Section 2.2 arithmetic)
    # ------------------------------------------------------------------ #
    @staticmethod
    def entry_bits(num_tiles: int, state_bits: int = 5) -> int:
        """Bits per directory entry: full sharer bit-mask plus state."""
        return num_tiles + state_bits

    @staticmethod
    def storage_bytes(
        *,
        num_tiles: int,
        covered_blocks: int,
        state_bits: int = 5,
    ) -> int:
        """Total directory storage for a given number of covered blocks."""
        bits = FullMapDirectory.entry_bits(num_tiles, state_bits) * covered_blocks
        return (bits + 7) // 8
