"""End-to-end evaluation runner (the machinery behind Figures 7-12).

:func:`run_evaluation` enumerates every requested (workload, design) pair —
plus the optional instruction-cluster sweep — as an
:class:`~repro.sim.runner.ExperimentGrid` and executes it through a
:class:`~repro.sim.runner.BatchRunner`, running the six ASR variants and
keeping the best, as the paper does.  Pass ``jobs`` (or set ``RNUCA_JOBS``)
to fan the grid out across worker processes, and ``store`` to persist and
reuse results across runs.  Suites are additionally memoised per process so
that the benchmark modules for Figures 7 through 12 can share a single
simulation pass.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro import knobs
from repro.cmp.config import SystemConfig
from repro.sim.engine import DEFAULT_TRACE_LENGTH, SimulationResult, simulate_workload
from repro.sim.runner import BatchRunner, ExperimentGrid, ResultStore
from repro.workloads.generator import DEFAULT_SCALE
from repro.workloads.spec import WORKLOADS

#: The paper's presentation order: private-averse workloads, then shared-averse.
DEFAULT_WORKLOAD_ORDER = (
    "oltp-db2",
    "apache",
    "dss-qry6",
    "dss-qry8",
    "dss-qry13",
    "em3d",
    "oltp-oracle",
    "mix",
)

#: Designs evaluated for the main figures, in the paper's P/A/S/R/I order.
DEFAULT_DESIGNS = ("P", "A", "S", "R", "I")

#: Cluster sizes swept by Figure 11.
CLUSTER_SIZES = (1, 2, 4, 8, 16)

#: Environment variable to shrink the evaluation for quick runs.
TRACE_LENGTH_ENV = knobs.EVAL_RECORDS.name


def _trace_length(default: int) -> int:
    return knobs.eval_records(default)


@dataclass
class EvaluationSuite:
    """All simulation results needed by the evaluation figures."""

    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)
    cluster_sweep: dict[tuple[str, int], SimulationResult] = field(default_factory=dict)
    scheduler_sweep: dict[tuple[str, str, str], SimulationResult] = field(default_factory=dict)
    policy_sweep: dict[tuple[str, str, str], SimulationResult] = field(default_factory=dict)
    workloads: tuple[str, ...] = DEFAULT_WORKLOAD_ORDER
    designs: tuple[str, ...] = DEFAULT_DESIGNS
    num_records: int = DEFAULT_TRACE_LENGTH
    scale: int = DEFAULT_SCALE

    def result(self, workload: str, design: str) -> SimulationResult:
        return self.results[(workload, design)]

    def baseline(self, workload: str) -> SimulationResult:
        """The private design, the paper's normalisation baseline."""
        return self.results[(workload, "P")]

    def workload_results(self, workload: str) -> dict[str, SimulationResult]:
        return {
            design: self.results[(workload, design)]
            for design in self.designs
            if (workload, design) in self.results
        }

    @classmethod
    def from_batch(cls, grid: ExperimentGrid, batch) -> "EvaluationSuite":
        """Assemble a suite from a grid and its :class:`BatchResult`.

        Plain grid points land in :attr:`results` keyed (workload, design);
        instruction-cluster-sweep points land in :attr:`cluster_sweep` keyed
        (workload, requested size).  Points carrying a replay-time axis —
        a non-fixed ``scheduler`` or a non-LRU ``l2_policy`` — land in
        :attr:`scheduler_sweep` / :attr:`policy_sweep` keyed
        (workload, design, axis value); the default axis value contributes
        no parameter, so the baseline point stays in :attr:`results` and
        sweep entries never shadow it.
        """
        suite = cls(
            workloads=grid.workloads,
            designs=grid.designs,
            num_records=grid.num_records,
            scale=grid.scale,
        )
        for point, result in batch.items():
            size = point.param_dict.get("instruction_cluster_size")
            scheduler = point.param_dict.get("scheduler")
            policy = point.param_dict.get("l2_policy")
            if size is not None:
                suite.cluster_sweep[(point.workload, size)] = result
            elif scheduler is not None:
                suite.scheduler_sweep[(point.workload, point.design, scheduler)] = result
            elif policy is not None:
                suite.policy_sweep[(point.workload, point.design, policy)] = result
            else:
                suite.results[(point.workload, point.design)] = result
        return suite


_SUITE_CACHE: dict[tuple, EvaluationSuite] = {}


def run_evaluation(
    *,
    workloads: Iterable[str] = DEFAULT_WORKLOAD_ORDER,
    designs: Iterable[str] = DEFAULT_DESIGNS,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    include_cluster_sweep: bool = False,
    cluster_sizes: Iterable[int] = CLUSTER_SIZES,
    schedulers: Iterable[str] = (),
    policies: Iterable[str] = (),
    use_cache: bool = True,
    jobs: int | None = None,
    store: ResultStore | None = None,
) -> EvaluationSuite:
    """Simulate every (workload, design) pair and return the suite.

    The grid runs through a :class:`~repro.sim.runner.BatchRunner`: ``jobs``
    (default ``$RNUCA_JOBS`` or 1) fans simulations out across worker
    processes, and ``store`` persists results as content-addressed JSON so
    repeat runs are cache hits.  ``RNUCA_EVAL_RECORDS`` in the environment
    overrides ``num_records`` so that continuous-integration runs can use
    shorter traces.

    ``schedulers`` and ``policies`` add the replay-time axes to the grid:
    each non-default name (``"greedy"``/``"reinforced"``, or any
    non-``"lru"`` replacement policy) enumerates one extra point per
    (workload, design) pair, routed into
    :attr:`EvaluationSuite.scheduler_sweep` /
    :attr:`EvaluationSuite.policy_sweep`.
    """
    workloads = tuple(workloads)
    designs = tuple(designs)
    cluster_sizes = tuple(cluster_sizes)
    schedulers = tuple(schedulers)
    policies = tuple(policies)
    num_records = _trace_length(num_records)
    key = (
        workloads, designs, num_records, scale, seed,
        include_cluster_sweep, cluster_sizes, schedulers, policies,
    )
    if use_cache and key in _SUITE_CACHE:
        return _SUITE_CACHE[key]

    grid = ExperimentGrid(
        workloads=workloads,
        designs=designs,
        num_records=num_records,
        scale=scale,
        seed=seed,
        cluster_sizes=cluster_sizes if include_cluster_sweep else (),
        schedulers=schedulers,
        policies=policies,
    )
    batch = BatchRunner(store=store, jobs=jobs).run(grid.points())
    suite = EvaluationSuite.from_batch(grid, batch)
    if use_cache:
        _SUITE_CACHE[key] = suite
    return suite


def simulate_rnuca_cluster(
    workload: str,
    cluster_size: int,
    *,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    config: SystemConfig | None = None,
    trace=None,
    scheduler=None,
    **design_kwargs,
) -> SimulationResult:
    """Run R-NUCA with a specific instruction-cluster size (Figure 11)."""
    from repro.core.rnuca import RNucaConfig  # local import to avoid a cycle
    from repro.sim.engine import resolve_workload

    spec, dyn = resolve_workload(workload)
    if config is None:
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    cluster_size = min(cluster_size, config.num_tiles)
    result = simulate_workload(
        dyn if dyn is not None else spec,
        "R",
        num_records=num_records,
        scale=scale,
        seed=seed,
        config=config,
        trace=trace,
        scheduler=scheduler,
        rnuca_config=RNucaConfig(instruction_cluster_size=cluster_size),
        **design_kwargs,
    )
    result.metadata["instruction_cluster_size"] = cluster_size
    return result


def available_workloads() -> list[str]:
    """Names of the eight primary workloads."""
    return list(WORKLOADS)
