"""End-to-end evaluation runner (the machinery behind Figures 7-12).

:func:`run_evaluation` simulates every requested workload on every requested
design — running the six ASR variants and keeping the best, as the paper
does — and returns an :class:`EvaluationSuite` from which each figure's rows
are derived.  Results are memoised per process so that the benchmark modules
for Figures 7 through 12 can share a single simulation pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cmp.config import SystemConfig
from repro.sim.engine import (
    DEFAULT_TRACE_LENGTH,
    SimulationResult,
    simulate_best_asr,
    simulate_workload,
)
from repro.workloads.generator import DEFAULT_SCALE, SyntheticTraceGenerator
from repro.workloads.spec import WORKLOADS, get_workload

#: The paper's presentation order: private-averse workloads, then shared-averse.
DEFAULT_WORKLOAD_ORDER = (
    "oltp-db2",
    "apache",
    "dss-qry6",
    "dss-qry8",
    "dss-qry13",
    "em3d",
    "oltp-oracle",
    "mix",
)

#: Designs evaluated for the main figures, in the paper's P/A/S/R/I order.
DEFAULT_DESIGNS = ("P", "A", "S", "R", "I")

#: Cluster sizes swept by Figure 11.
CLUSTER_SIZES = (1, 2, 4, 8, 16)

#: Environment variable to shrink the evaluation for quick runs.
TRACE_LENGTH_ENV = "RNUCA_EVAL_RECORDS"


def _trace_length(default: int) -> int:
    override = os.environ.get(TRACE_LENGTH_ENV)
    return int(override) if override else default


@dataclass
class EvaluationSuite:
    """All simulation results needed by the evaluation figures."""

    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)
    cluster_sweep: dict[tuple[str, int], SimulationResult] = field(default_factory=dict)
    workloads: tuple[str, ...] = DEFAULT_WORKLOAD_ORDER
    designs: tuple[str, ...] = DEFAULT_DESIGNS
    num_records: int = DEFAULT_TRACE_LENGTH
    scale: int = DEFAULT_SCALE

    def result(self, workload: str, design: str) -> SimulationResult:
        return self.results[(workload, design)]

    def baseline(self, workload: str) -> SimulationResult:
        """The private design, the paper's normalisation baseline."""
        return self.results[(workload, "P")]

    def workload_results(self, workload: str) -> dict[str, SimulationResult]:
        return {
            design: self.results[(workload, design)]
            for design in self.designs
            if (workload, design) in self.results
        }


_SUITE_CACHE: dict[tuple, EvaluationSuite] = {}


def run_evaluation(
    *,
    workloads: Iterable[str] = DEFAULT_WORKLOAD_ORDER,
    designs: Iterable[str] = DEFAULT_DESIGNS,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    include_cluster_sweep: bool = False,
    cluster_sizes: Iterable[int] = CLUSTER_SIZES,
    use_cache: bool = True,
) -> EvaluationSuite:
    """Simulate every (workload, design) pair and return the suite.

    ``RNUCA_EVAL_RECORDS`` in the environment overrides ``num_records`` so
    that continuous-integration runs can use shorter traces.
    """
    workloads = tuple(workloads)
    designs = tuple(designs)
    cluster_sizes = tuple(cluster_sizes)
    num_records = _trace_length(num_records)
    key = (workloads, designs, num_records, scale, seed, include_cluster_sweep, cluster_sizes)
    if use_cache and key in _SUITE_CACHE:
        return _SUITE_CACHE[key]

    suite = EvaluationSuite(
        workloads=workloads,
        designs=designs,
        num_records=num_records,
        scale=scale,
    )
    for workload in workloads:
        spec = get_workload(workload)
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
        generator = SyntheticTraceGenerator(spec, config, seed=seed, scale=scale)
        trace = generator.generate(num_records)
        for design in designs:
            if design == "A":
                result = simulate_best_asr(
                    spec, num_records=num_records, scale=scale, seed=seed,
                    config=config, trace=trace,
                )
            else:
                result = simulate_workload(
                    spec, design, num_records=num_records, scale=scale, seed=seed,
                    config=config, trace=trace,
                )
            suite.results[(workload, design)] = result
        if include_cluster_sweep:
            for size in cluster_sizes:
                suite.cluster_sweep[(workload, size)] = simulate_rnuca_cluster(
                    workload,
                    size,
                    num_records=num_records,
                    scale=scale,
                    seed=seed,
                    config=config,
                    trace=trace,
                )
    if use_cache:
        _SUITE_CACHE[key] = suite
    return suite


def simulate_rnuca_cluster(
    workload: str,
    cluster_size: int,
    *,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    config: Optional[SystemConfig] = None,
    trace=None,
) -> SimulationResult:
    """Run R-NUCA with a specific instruction-cluster size (Figure 11)."""
    from repro.core.rnuca import RNucaConfig  # local import to avoid a cycle

    spec = get_workload(workload)
    if config is None:
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    cluster_size = min(cluster_size, config.num_tiles)
    result = simulate_workload(
        spec,
        "R",
        num_records=num_records,
        scale=scale,
        seed=seed,
        config=config,
        trace=trace,
        rnuca_config=RNucaConfig(instruction_cluster_size=cluster_size),
    )
    result.metadata["instruction_cluster_size"] = cluster_size
    return result


def available_workloads() -> list[str]:
    """Names of the eight primary workloads."""
    return list(WORKLOADS)
