"""Speedup analysis (paper Figure 12 and the headline numbers).

Speedups are throughput (IPC) improvements over the private design, with
95% confidence intervals propagated from the per-sample CPI measurements.
Inputs come either from an in-process :class:`EvaluationSuite` or, via
:func:`speedup_table`, from the flat result lists a
:class:`~repro.sim.runner.BatchRunner`/:class:`~repro.sim.runner.ResultStore`
produces.
"""

from __future__ import annotations

from collections.abc import Iterable
from statistics import mean

from repro.analysis.evaluation import DEFAULT_DESIGNS, EvaluationSuite
from repro.sim.engine import SimulationResult
from repro.sim.sampling import ConfidenceInterval, speedup_interval
from repro.workloads.spec import MULTIPROGRAMMED, SERVER, get_workload


def fig12_speedups(suite: EvaluationSuite) -> list[dict[str, object]]:
    """Figure 12: per-workload speedup of each design over the private design."""
    rows = []
    for workload in suite.workloads:
        baseline = suite.baseline(workload)
        for design in suite.designs:
            if (workload, design) not in suite.results:
                continue
            result = suite.result(workload, design)
            speedup = result.speedup_over(baseline)
            interval = None
            if baseline.cpi_confidence and result.cpi_confidence:
                # Speedup ratio = baseline CPI / design CPI.
                interval = speedup_interval(baseline.cpi_confidence, result.cpi_confidence)
            rows.append(
                {
                    "workload": workload,
                    "design": design,
                    "speedup": speedup,
                    "ci_half_width": interval.half_width if interval else 0.0,
                }
            )
    return rows


def speedup_table(results: Iterable[SimulationResult]) -> list[dict[str, object]]:
    """Figure-12-style speedups from flat runner/store results.

    Works directly on the :class:`~repro.sim.engine.SimulationResult` lists
    that :class:`~repro.sim.runner.BatchRunner` and
    :class:`~repro.sim.runner.ResultStore` hand back, so the CLI ``report``
    command needs no :class:`EvaluationSuite`.  Results are grouped by
    (workload, trace length, scale, seed) so a design is only ever compared
    against a baseline from the same experiment — a store mixing runs of
    different lengths yields one row group per run, never a cross-run
    ratio.  Instruction-cluster-sweep results are skipped, and groups
    without a private ("P") baseline are dropped.
    """
    groups: dict[tuple, dict[str, SimulationResult]] = {}
    for result in results:
        if "instruction_cluster_size" in result.metadata:
            continue
        key = (
            result.workload,
            result.metadata.get("trace_length"),
            result.metadata.get("scale"),
            result.metadata.get("seed"),
        )
        groups.setdefault(key, {})[result.design_letter] = result
    rows: list[dict[str, object]] = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        designs = groups[key]
        baseline = designs.get("P")
        if baseline is None:
            continue
        for letter in DEFAULT_DESIGNS:
            if letter not in designs:
                continue
            result = designs[letter]
            interval = None
            if baseline.cpi_confidence and result.cpi_confidence:
                interval = speedup_interval(baseline.cpi_confidence, result.cpi_confidence)
            rows.append(
                {
                    "workload": result.workload,
                    "design": letter,
                    "records": result.metadata.get("trace_length"),
                    "cpi": result.cpi,
                    "speedup": result.speedup_over(baseline),
                    "ci_half_width": interval.half_width if interval else 0.0,
                }
            )
    return rows


def headline_numbers(suite: EvaluationSuite) -> dict[str, float]:
    """The abstract's summary statistics, computed from the suite.

    * average and maximum speedup of R-NUCA over the private design,
    * average speedup over the private design for server workloads only,
    * average speedup over the shared design (and for multi-programmed
      workloads only),
    * the gap between R-NUCA and the ideal design.
    """
    over_private: list[float] = []
    over_private_server: list[float] = []
    over_shared: list[float] = []
    over_shared_multi: list[float] = []
    ideal_gaps: list[float] = []
    for workload in suite.workloads:
        spec = get_workload(workload)
        rnuca = suite.result(workload, "R")
        over_private.append(rnuca.speedup_over(suite.result(workload, "P")))
        if spec.category == SERVER:
            over_private_server.append(over_private[-1])
        if ("S" in suite.designs) and (workload, "S") in suite.results:
            over_shared.append(rnuca.speedup_over(suite.result(workload, "S")))
            if spec.category == MULTIPROGRAMMED:
                over_shared_multi.append(over_shared[-1])
        if (workload, "I") in suite.results:
            ideal_gaps.append(rnuca.cpi / suite.result(workload, "I").cpi - 1.0)
    return {
        "avg_speedup_over_private": mean(over_private),
        "max_speedup_over_private": max(over_private),
        "avg_speedup_over_private_server": (
            mean(over_private_server) if over_private_server else 0.0
        ),
        "avg_speedup_over_shared": mean(over_shared) if over_shared else 0.0,
        "avg_speedup_over_shared_multiprogrammed": (
            mean(over_shared_multi) if over_shared_multi else 0.0
        ),
        "avg_gap_to_ideal": mean(ideal_gaps) if ideal_gaps else 0.0,
    }


def workload_aversion(suite: EvaluationSuite) -> dict[str, str]:
    """Classify each workload as private-averse or shared-averse (Section 5.3)."""
    aversion = {}
    for workload in suite.workloads:
        private_cpi = suite.result(workload, "P").cpi
        shared_cpi = suite.result(workload, "S").cpi
        aversion[workload] = (
            "private-averse" if private_cpi > shared_cpi else "shared-averse"
        )
    return aversion


def confidence_summary(suite: EvaluationSuite) -> dict[str, ConfidenceInterval]:
    """Per-(workload, design) CPI confidence intervals."""
    return {
        f"{workload}/{design}": result.cpi_confidence
        for (workload, design), result in suite.results.items()
        if result.cpi_confidence is not None
    }
