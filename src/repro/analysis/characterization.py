"""Workload characterisation (paper Section 3, Figures 2-5, Section 5.2).

All the functions here analyse *traces*, exactly as the paper's trace-based
characterisation does: blocks are classified by observing which cores touch
them and whether they are ever written, independently of the ground-truth
labels the generator attached to each record.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.workloads.trace import Trace

#: Reuse-run bins used by Figure 5.
REUSE_BINS = ("1st access", "2nd access", "3rd-4th access", "5th-8th access", "9+ access")


@dataclass
class BlockProfile:
    """Observed behaviour of one cache block across a trace."""

    block_address: int
    is_instruction: bool = False
    accesses: int = 0
    writes: int = 0
    sharers: set[int] = field(default_factory=set)

    @property
    def num_sharers(self) -> int:
        return len(self.sharers)

    @property
    def is_read_write(self) -> bool:
        return self.writes > 0

    @property
    def is_private(self) -> bool:
        return self.num_sharers <= 1

    @property
    def category(self) -> str:
        """Paper categories: instruction, private data, shared data (RW/RO)."""
        if self.is_instruction:
            return "instruction"
        if self.is_private:
            return "private"
        return "shared_rw" if self.is_read_write else "shared_ro"


def classify_blocks(trace: Trace, *, block_size: int = 64) -> dict[int, BlockProfile]:
    """Build per-block profiles (sharers, writes, access counts) from a trace."""
    profiles: dict[int, BlockProfile] = {}
    shift = block_size.bit_length() - 1
    for record in trace:
        block = record.address >> shift
        profile = profiles.get(block)
        if profile is None:
            profile = BlockProfile(block_address=block)
            profiles[block] = profile
        profile.accesses += 1
        profile.sharers.add(record.core)
        if record.is_instruction:
            profile.is_instruction = True
        elif record.is_write:
            profile.writes += 1
    return profiles


def reference_clustering(
    trace: Trace, *, block_size: int = 64
) -> list[dict[str, float]]:
    """Figure 2: bubbles of (sharers, %read-write blocks, %L2 accesses).

    Returns one row per (number of sharers, instruction/data) bubble with the
    access share and the fraction of read-write blocks in the bubble.
    """
    profiles = classify_blocks(trace, block_size=block_size)
    total_accesses = sum(p.accesses for p in profiles.values()) or 1
    bubbles: dict[tuple[int, str], list[BlockProfile]] = defaultdict(list)
    for profile in profiles.values():
        kind = "instruction" if profile.is_instruction else "data"
        bubbles[(profile.num_sharers, kind)].append(profile)
    rows = []
    for (sharers, kind), members in sorted(bubbles.items()):
        accesses = sum(p.accesses for p in members)
        read_write = sum(1 for p in members if p.is_read_write)
        rows.append(
            {
                "sharers": sharers,
                "kind": kind,
                "blocks": len(members),
                "access_share": accesses / total_accesses,
                "read_write_block_fraction": read_write / len(members),
            }
        )
    return rows


def reference_breakdown(trace: Trace, *, block_size: int = 64) -> dict[str, float]:
    """Figure 3: share of L2 references per access class."""
    profiles = classify_blocks(trace, block_size=block_size)
    shift = block_size.bit_length() - 1
    counts: Counter[str] = Counter()
    for record in trace:
        profile = profiles[record.address >> shift]
        if record.is_instruction:
            counts["instruction"] += 1
        elif profile.is_instruction:
            # Data access to a block also fetched as instructions: rare and
            # attributed to the data category of the block's observed use.
            counts["shared_ro"] += 1
        else:
            counts[profile.category] += 1
    total = sum(counts.values()) or 1
    return {
        key: counts.get(key, 0) / total
        for key in ("instruction", "private", "shared_rw", "shared_ro")
    }


def working_set_cdf(
    trace: Trace, *, block_size: int = 64, points: int = 50
) -> dict[str, list[tuple[float, float]]]:
    """Figure 4: CDF of L2 references versus footprint, per access class.

    For each class, blocks are ranked by popularity; the result is a list of
    (footprint_kb, cumulative_access_fraction) points where the access
    fraction is normalised to *all* L2 references of the trace, matching the
    paper's axes.
    """
    profiles = classify_blocks(trace, block_size=block_size)
    total_accesses = sum(p.accesses for p in profiles.values()) or 1
    groups: dict[str, list[BlockProfile]] = defaultdict(list)
    for profile in profiles.values():
        key = profile.category
        if key in ("shared_rw", "shared_ro"):
            key = "shared"
        groups[key].append(profile)
    curves: dict[str, list[tuple[float, float]]] = {}
    for key, members in groups.items():
        members.sort(key=lambda p: p.accesses, reverse=True)
        cumulative = 0
        curve = []
        step = max(1, len(members) // points)
        for index, profile in enumerate(members, start=1):
            cumulative += profile.accesses
            if index % step == 0 or index == len(members):
                footprint_kb = index * block_size / 1024.0
                curve.append((footprint_kb, cumulative / total_accesses))
        curves[key] = curve
    return curves


def reuse_histogram(trace: Trace, *, block_size: int = 64) -> dict[str, dict[str, float]]:
    """Figure 5: reuse of instructions and shared data by the same core.

    For instructions, a *run* is a sequence of accesses to a block by one
    core without an intervening access by another core.  For shared data,
    a run is the accesses by one core between consecutive writes by other
    cores.  Each access is labelled by its position in its run and the
    histogram reports the share of accesses per position bin.
    """
    profiles = classify_blocks(trace, block_size=block_size)
    shift = block_size.bit_length() - 1
    last_core: dict[int, int] = {}
    run_position: dict[int, int] = {}
    histograms: dict[str, Counter] = {
        "instruction": Counter(),
        "shared": Counter(),
    }
    totals: Counter[str] = Counter()

    def bin_for(position: int) -> str:
        if position == 1:
            return REUSE_BINS[0]
        if position == 2:
            return REUSE_BINS[1]
        if position <= 4:
            return REUSE_BINS[2]
        if position <= 8:
            return REUSE_BINS[3]
        return REUSE_BINS[4]

    for record in trace:
        block = record.address >> shift
        profile = profiles[block]
        if profile.is_instruction:
            group = "instruction"
            breaks_run = last_core.get(block) not in (None, record.core)
        elif profile.category == "shared_rw":
            group = "shared"
            # A write by a *different* core ends every other core's run.
            breaks_run = record.is_write and last_core.get(block) != record.core
        else:
            last_core[block] = record.core
            continue
        if breaks_run or last_core.get(block) != record.core:
            run_position[block] = 0
        run_position[block] = run_position.get(block, 0) + 1
        last_core[block] = record.core
        histograms[group][bin_for(run_position[block])] += 1
        totals[group] += 1

    result: dict[str, dict[str, float]] = {}
    for group, counter in histograms.items():
        total = totals[group] or 1
        result[group] = {bin_name: counter.get(bin_name, 0) / total for bin_name in REUSE_BINS}
    return result


def classification_accuracy(
    trace: Trace, *, page_size: int, block_size: int = 64
) -> dict[str, float]:
    """Section 5.2: page-granularity classification accuracy.

    Computes the fraction of L2 references to pages containing more than one
    access class, and the fraction of references whose block-level class
    differs from its page's dominant (access-weighted) class — i.e. the
    misclassification a page-granularity policy cannot avoid.
    """
    page_shift = page_size.bit_length() - 1
    block_shift = block_size.bit_length() - 1
    profiles = classify_blocks(trace, block_size=block_size)
    page_class_accesses: dict[int, Counter] = defaultdict(Counter)
    for record in trace:
        block = record.address >> block_shift
        page = record.address >> page_shift
        cls = "instruction" if profiles[block].is_instruction else (
            "private" if profiles[block].is_private else "shared"
        )
        page_class_accesses[page][cls] += 1

    multi_class_accesses = 0
    misclassified = 0
    total = len(trace) or 1
    dominant = {
        page: counts.most_common(1)[0][0]
        for page, counts in page_class_accesses.items()
    }
    for page, counts in page_class_accesses.items():
        page_total = sum(counts.values())
        if len(counts) > 1:
            multi_class_accesses += page_total
            misclassified += page_total - counts[dominant[page]]
    return {
        "multi_class_page_access_fraction": multi_class_accesses / total,
        "misclassified_access_fraction": misclassified / total,
        "pages": len(page_class_accesses),
    }
