"""Regeneration of the paper's evaluation: Figures 2-12 and Table 1."""

from repro.analysis.characterization import (
    BlockProfile,
    classification_accuracy,
    classify_blocks,
    reference_breakdown,
    reference_clustering,
    reuse_histogram,
    working_set_cdf,
)
from repro.analysis.cpi_breakdown import (
    cluster_size_sweep,
    fig7_cpi_breakdown,
    fig8_shared_data_cpi,
    fig9_private_data_cpi,
    fig10_instruction_cpi,
)
from repro.analysis.evaluation import EvaluationSuite, run_evaluation
from repro.analysis.reporting import format_table
from repro.analysis.speedup import fig12_speedups

__all__ = [
    "BlockProfile",
    "classify_blocks",
    "reference_clustering",
    "reference_breakdown",
    "working_set_cdf",
    "reuse_histogram",
    "classification_accuracy",
    "EvaluationSuite",
    "run_evaluation",
    "fig7_cpi_breakdown",
    "fig8_shared_data_cpi",
    "fig9_private_data_cpi",
    "fig10_instruction_cpi",
    "cluster_size_sweep",
    "fig12_speedups",
    "format_table",
]
