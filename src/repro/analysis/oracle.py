"""Belady/OPT replacement oracle: make "near-optimal" measurable.

The paper positions R-NUCA as *near-optimal* block placement.  This module
quantifies the claim on the replacement axis: it replays a workload with an
offline-optimal (Belady's MIN) L2 replacement policy and reports each
design's **placement regret** — how much CPI and miss rate an online policy
leaves on the table versus clairvoyant replacement on the same trace.

Two-pass structure
------------------
Pass 1 precomputes, from the columnar trace, the ordered positions at which
every block address recurs (:class:`_FutureIndex`): a single stable
``numpy.argsort`` over the block-number column groups all occurrences per
address with no per-record dict churn.  Pass 2 is an ordinary replay with a
:class:`BeladyPolicy` installed on every L2 slice; on an eviction it picks
the resident block whose next use lies farthest in the future (never-used
blocks first).

Self-clocking
-------------
The policy does not see record indices, so it keeps its own clock: every
probe consumes the probed address's next pending occurrence and advances
the clock to that trace position.  A probe's own fill (or victim-cache
swap-in) of the same address must *not* consume a second occurrence — a
one-shot ``pending`` marker suppresses it.  Designs whose service path
inserts a record's block without a preceding probe (the shared, R-NUCA and
ideal designs' remote-L1 forwarding path) consume on such inserts instead
(``consume_on_insert``); the private and ASR designs always probe first, so
for them unmatched inserts are replica fills of *other* addresses (ASR's L1
victims) and must not touch the clock.

Exactness
---------
For a single cache array driven probe-then-fill (the property-test setup
and the shared/ideal designs' home slices) the schedule is Belady's MIN,
which is offline-optimal for uniform-size demand-fill caches.  For designs
that replicate a block across multiple arrays (private, ASR) the oracle
uses next-use-anywhere distances, so it is a strong clairvoyant heuristic
rather than a per-array optimum; regret numbers for those designs are
conservative (the true optimum can only be further away).  Victim buffers
keep their native FIFO order in all cases.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cache.policies import DEFAULT_POLICY, ReplacementPolicy, normalize_policy
from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design, normalize_design
from repro.designs.base import CacheDesign
from repro.sim.engine import (
    DEFAULT_TRACE_LENGTH,
    DEFAULT_WARMUP_FRACTION,
    SimulationResult,
    TraceSimulator,
    generate_workload_trace,
    resolve_workload,
    simulate_workload,
)
from repro.sim.latency import CpiModel
from repro.workloads.generator import DEFAULT_SCALE
from repro.workloads.trace import Trace

#: Sentinel next-use distance for "never referenced again".
NEVER = float("inf")

#: Designs whose service path inserts the probed record's block without a
#: preceding probe on some path (remote-L1 forwarding at the home slice).
_CONSUME_ON_INSERT_DESIGNS = frozenset({"S", "R", "I"})


class _FutureIndex:
    """Per-address future occurrence positions for one trace.

    Built once per oracle replay with a stable argsort over the per-record
    block numbers: occurrences of each address form a contiguous run of
    ascending trace positions.  ``consume``/``next_use`` then run in
    amortised O(1) per record off a per-address cursor and a monotone
    clock — no dictionaries are built or torn down during the replay.
    """

    __slots__ = ("clock", "pending", "_positions", "_cursor")

    def __init__(self, block_numbers: np.ndarray) -> None:
        addresses = np.asarray(block_numbers, dtype=np.int64)
        order = np.argsort(addresses, kind="stable")
        grouped = addresses[order]
        boundaries = np.flatnonzero(np.diff(grouped)) + 1
        runs = np.split(order, boundaries)
        self._positions: dict[int, np.ndarray] = {
            int(run_addresses[0]): run
            for run, run_addresses in zip(runs, np.split(grouped, boundaries))
            if len(run)
        }
        self._cursor: dict[int, int] = dict.fromkeys(self._positions, 0)
        #: Trace position of the most recently consumed occurrence.
        self.clock: int = -1
        #: One-shot marker: the address whose probe just consumed an
        #: occurrence, so its own fill must not consume another.
        self.pending: int | None = None

    def consume(self, address: int) -> None:
        """Consume the next pending occurrence of ``address``; advance clock."""
        positions = self._positions.get(address)
        if positions is None:
            return
        cursor = self._cursor[address]
        clock = self.clock
        # Skip occurrences already passed by the clock (e.g. suppressed
        # fills of records processed out of probe order).
        while cursor < len(positions) and positions[cursor] <= clock:
            cursor += 1
        if cursor < len(positions):
            self.clock = int(positions[cursor])
            cursor += 1
        self._cursor[address] = cursor

    def next_use(self, address: int) -> float:
        """Trace position of the next occurrence after the clock (or inf)."""
        positions = self._positions.get(address)
        if positions is None:
            return NEVER
        cursor = self._cursor[address]
        clock = self.clock
        while cursor < len(positions) and positions[cursor] <= clock:
            cursor += 1
        self._cursor[address] = cursor
        if cursor < len(positions):
            return float(positions[cursor])
        return NEVER


class BeladyPolicy(ReplacementPolicy):
    """Belady's MIN on one L2 slice, clocked by a shared :class:`_FutureIndex`.

    All slices of a chip share one index (and therefore one clock), because
    the trace is a single interleaved stream: a probe at any slice is the
    stream's next occurrence of that address.
    """

    name = "belady"

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        future: _FutureIndex,
        *,
        consume_on_insert: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(num_sets, associativity, seed=seed)
        self._future = future
        self._consume_on_insert = consume_on_insert

    def on_probe(self, set_index: int, address: int) -> None:
        future = self._future
        future.consume(address)
        future.pending = address

    def on_hit(self, set_index: int, address: int) -> None:
        self._resolve(address)

    def on_insert(self, set_index: int, address: int) -> None:
        self._resolve(address)

    def _resolve(self, address: int) -> None:
        """Match a hit/insert against the pending probe (one-shot)."""
        future = self._future
        if future.pending == address:
            future.pending = None
        elif self._consume_on_insert:
            future.consume(address)

    def victim(
        self, set_index: int, resident: Mapping[int, Any], incoming: int
    ) -> int:
        next_use = self._future.next_use
        doomed = None
        farthest = -1.0
        for address in resident:
            distance = next_use(address)
            if distance is NEVER:
                return address
            if distance > farthest:
                farthest = distance
                doomed = address
        return doomed

    def reset(self) -> None:
        """Array cleared between samples: the trace clock keeps running."""


def install_belady(
    design: CacheDesign, trace: Trace, config: SystemConfig
) -> _FutureIndex:
    """Install a shared Belady policy on every L2 slice of ``design``.

    Must run before any access is replayed (the arrays must be empty).
    Returns the shared future index (useful for inspection in tests).
    """
    future = _FutureIndex(
        np.asarray(trace.columns.address, dtype=np.int64)
        >> (config.block_size.bit_length() - 1)
    )
    consume_on_insert = design.short_name in _CONSUME_ON_INSERT_DESIGNS
    for tile in design.chip.tiles:
        tile.l2.set_policy(
            BeladyPolicy(
                tile.l2.num_sets,
                tile.l2.associativity,
                future,
                consume_on_insert=consume_on_insert,
            )
        )
    design.l2_policy = BeladyPolicy.name
    return future


def simulate_with_oracle(
    workload: str,
    design: str,
    *,
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    config: SystemConfig | None = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    trace: Trace | None = None,
) -> SimulationResult:
    """Replay ``workload`` on ``design`` with Belady/OPT L2 replacement.

    Mirrors :func:`repro.sim.engine.simulate_workload` exactly (same trace,
    same chip, same engine) apart from the oracle policy installed between
    design construction and replay, so a result pair differs only by the
    replacement schedule.
    """
    spec, dyn = resolve_workload(workload)
    if config is None:
        config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    if trace is None:
        trace = generate_workload_trace(
            spec, dyn, config, num_records, seed=seed, scale=scale
        )
    chip = TiledChip(config)
    design_instance = build_design(design, chip)
    install_belady(design_instance, trace, config)
    simulator = TraceSimulator(
        design_instance,
        CpiModel.for_workload(spec),
        warmup_fraction=warmup_fraction,
    )
    result = simulator.run(trace)
    result.metadata["scale"] = scale
    result.metadata["config"] = config.name
    result.metadata["seed"] = seed
    result.metadata["l2_policy"] = BeladyPolicy.name
    return result


@dataclass(frozen=True)
class OracleRegret:
    """One design's distance from offline-optimal replacement."""

    workload: str
    design: str
    policy: str
    policy_cpi: float
    oracle_cpi: float
    policy_offchip_rate: float
    oracle_offchip_rate: float

    @property
    def cpi_regret(self) -> float:
        return self.policy_cpi - self.oracle_cpi

    @property
    def cpi_regret_pct(self) -> float:
        return 100.0 * self.cpi_regret / self.oracle_cpi if self.oracle_cpi else 0.0

    @property
    def offchip_regret(self) -> float:
        return self.policy_offchip_rate - self.oracle_offchip_rate

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "design": self.design,
            "policy": self.policy,
            "policy_cpi": round(self.policy_cpi, 6),
            "oracle_cpi": round(self.oracle_cpi, 6),
            "cpi_regret": round(self.cpi_regret, 6),
            "cpi_regret_pct": round(self.cpi_regret_pct, 3),
            "policy_offchip_rate": round(self.policy_offchip_rate, 6),
            "oracle_offchip_rate": round(self.oracle_offchip_rate, 6),
            "offchip_regret": round(self.offchip_regret, 6),
        }


def placement_regret(
    workload: str,
    designs: Iterable[str] = ("P", "A", "S", "R", "I"),
    *,
    policies: Iterable[str] = (DEFAULT_POLICY,),
    num_records: int = DEFAULT_TRACE_LENGTH,
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> list[OracleRegret]:
    """Per-design CPI / miss-rate regret of online policies vs Belady/OPT.

    One oracle replay per design is shared by every online policy compared
    against it; all replays consume the same generated trace.
    """
    letters = [normalize_design(d) for d in designs]
    names = [normalize_policy(p) for p in policies]
    spec, dyn = resolve_workload(workload)
    config = SystemConfig.for_workload_category(spec.category).scaled(scale)
    trace = generate_workload_trace(
        spec, dyn, config, num_records, seed=seed, scale=scale
    )
    rows: list[OracleRegret] = []
    for letter in letters:
        if progress:
            progress(f"oracle replay: {letter} on {workload}")
        oracle = simulate_with_oracle(
            workload, letter, scale=scale, seed=seed, config=config, trace=trace
        )
        for policy in names:
            if progress:
                progress(f"online replay: {letter}/{policy} on {workload}")
            kwargs = {} if policy == DEFAULT_POLICY else {"l2_policy": policy}
            online = simulate_workload(
                workload,
                letter,
                scale=scale,
                seed=seed,
                config=config,
                trace=trace,
                **kwargs,
            )
            rows.append(
                OracleRegret(
                    workload=workload,
                    design=letter,
                    policy=policy,
                    policy_cpi=online.cpi,
                    oracle_cpi=oracle.cpi,
                    policy_offchip_rate=online.metadata.get("offchip_rate", 0.0),
                    oracle_offchip_rate=oracle.metadata.get("offchip_rate", 0.0),
                )
            )
    return rows
