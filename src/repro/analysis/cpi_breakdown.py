"""CPI-breakdown figures (paper Figures 7, 8, 9, 10 and 11).

Every function takes an :class:`~repro.analysis.evaluation.EvaluationSuite`
and returns a list of row dictionaries, which the benchmarks print with
:func:`repro.analysis.reporting.format_table`.  All CPI values are
normalised to the private design's total CPI for the same workload, exactly
as in the paper's figures.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.evaluation import CLUSTER_SIZES, EvaluationSuite
from repro.designs.base import BUSY, L1_TO_L1, L2, OFF_CHIP, OTHER, RECLASSIFICATION
from repro.errors import SimulationError

#: Figure-7 component order.
FIG7_COMPONENTS = (BUSY, L1_TO_L1, L2, OFF_CHIP, OTHER, RECLASSIFICATION)


def fig7_cpi_breakdown(suite: EvaluationSuite) -> list[dict[str, float]]:
    """Figure 7: total CPI breakdown, normalised to the private design."""
    rows = []
    for workload in suite.workloads:
        baseline_cpi = suite.baseline(workload).cpi
        for design in suite.designs:
            if (workload, design) not in suite.results:
                continue
            result = suite.result(workload, design)
            breakdown = result.normalized_breakdown(baseline_cpi)
            row = {"workload": workload, "design": design}
            row.update({c: breakdown.get(c, 0.0) for c in FIG7_COMPONENTS})
            row["total"] = sum(breakdown.values())
            rows.append(row)
    return rows


def fig8_shared_data_cpi(suite: EvaluationSuite) -> list[dict[str, float]]:
    """Figure 8: CPI of L1-to-L1 transfers and L2 accesses to shared data.

    The three stacked components are plain (address-interleaved or locally
    replicated) L2 shared loads, L2 shared loads that engaged the coherence
    mechanism, and L1-to-L1 transfers — normalised to the private design's
    total CPI.
    """
    rows = []
    for workload in suite.workloads:
        baseline_cpi = suite.baseline(workload).cpi
        for design in suite.designs:
            if (workload, design) not in suite.results:
                continue
            stats = suite.result(workload, design).stats
            rows.append(
                {
                    "workload": workload,
                    "design": design,
                    "l2_shared_load": stats.shared_service_cpi("interleaved")
                    / baseline_cpi,
                    "l2_shared_load_coherence": stats.shared_service_cpi("coherence")
                    / baseline_cpi,
                    "l1_to_l1": stats.shared_service_cpi("l1_to_l1") / baseline_cpi,
                }
            )
    return rows


def _class_cpi_rows(
    suite: EvaluationSuite, access_class: str, components: Iterable[str]
) -> list[dict[str, float]]:
    rows = []
    components = tuple(components)
    for workload in suite.workloads:
        baseline_cpi = suite.baseline(workload).cpi
        for design in suite.designs:
            if (workload, design) not in suite.results:
                continue
            stats = suite.result(workload, design).stats
            value = sum(
                stats.class_component_cpi(access_class, component)
                for component in components
            )
            rows.append(
                {
                    "workload": workload,
                    "design": design,
                    "normalized_cpi": value / baseline_cpi,
                }
            )
    return rows


def fig9_private_data_cpi(suite: EvaluationSuite) -> list[dict[str, float]]:
    """Figure 9: CPI contribution of L2 accesses to private data."""
    return _class_cpi_rows(suite, "private", (L2, L1_TO_L1))


def fig10_instruction_cpi(suite: EvaluationSuite) -> list[dict[str, float]]:
    """Figure 10: CPI contribution of L2 instruction accesses."""
    return _class_cpi_rows(suite, "instruction", (L2,))


def cluster_size_sweep(suite: EvaluationSuite) -> list[dict[str, float]]:
    """Figure 11: CPI breakdown of instruction clusters of various sizes.

    Values are normalised to the size-1 cluster configuration of the same
    workload, as in the paper.
    """
    if not suite.cluster_sweep:
        raise SimulationError(
            "the evaluation suite was built without the cluster sweep; "
            "call run_evaluation(include_cluster_sweep=True)"
        )
    rows = []
    for workload in suite.workloads:
        if (workload, 1) not in suite.cluster_sweep:
            continue
        baseline_cpi = suite.cluster_sweep[(workload, 1)].cpi
        for size in CLUSTER_SIZES:
            if (workload, size) not in suite.cluster_sweep:
                continue
            result = suite.cluster_sweep[(workload, size)]
            breakdown = result.normalized_breakdown(baseline_cpi)
            row = {"workload": workload, "cluster_size": size}
            row.update({c: breakdown.get(c, 0.0) for c in FIG7_COMPONENTS})
            row["total"] = sum(breakdown.values())
            row["offchip_rate"] = result.metadata.get("offchip_rate", 0.0)
            rows.append(row)
    return rows
