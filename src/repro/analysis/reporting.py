"""Plain-text rendering of figure and table data.

Every figure in this reproduction is ultimately a list of row dictionaries;
:func:`format_table` renders them as aligned text so benchmark output can be
compared side-by-side with the paper's plots.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Iterable[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render rows of dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths, strict=True))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths, strict=True)))
    return "\n".join(lines)


def format_percentage_map(values: Mapping[str, float], *, title: str | None = None) -> str:
    """Render a name -> fraction mapping as percentages."""
    lines = [title] if title else []
    width = max(len(name) for name in values) if values else 0
    for name, value in values.items():
        lines.append(f"{name.ljust(width)}  {value:7.2%}")
    return "\n".join(lines)
