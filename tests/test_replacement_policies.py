"""Tests for the pluggable replacement-policy subsystem (repro.cache.policies).

Two contracts matter most:

* **bit identity** — the default ``"lru"`` policy builds to ``None`` and
  leaves the array on its native inlined path, so a default run is
  byte-identical to one that never heard of the subsystem; and the
  extracted :class:`LruPolicy`, when installed explicitly, reproduces the
  native victim choice event for event;
* **determinism** — every policy (including :class:`RandomPolicy`) replays
  the same victim sequence for the same seed and access stream.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache_array import CacheArray
from repro.cache.policies import (
    DEFAULT_POLICY,
    POLICIES,
    ArcPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TwoQPolicy,
    build_policy,
    normalize_policy,
)
from repro.cmp.config import CacheConfig
from repro.errors import ConfigurationError
from repro.sim.engine import simulate_workload

from .conftest import TEST_SCALE


def _array(sets: int = 2, ways: int = 2) -> CacheArray:
    return CacheArray(CacheConfig(size_bytes=sets * ways * 64, associativity=ways))


def _replay(cache: CacheArray, addresses) -> list[int]:
    """Probe-then-fill replay; returns the evicted-victim address sequence."""
    victims = []
    for address in addresses:
        if cache.lookup_block(address) is None:
            _, victim = cache.insert_block(address)
            if victim is not None:
                victims.append(victim.address)
    return victims


class TestRegistry:
    def test_normalize_defaults_and_canonicalises(self):
        assert normalize_policy(None) == DEFAULT_POLICY
        assert normalize_policy("  ARC ") == "arc"

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown replacement policy"):
            normalize_policy("plru")

    def test_default_builds_to_none(self):
        assert build_policy("lru", 2, 2) is None
        assert build_policy(None, 2, 2) is None

    def test_every_registered_name_builds(self):
        for name in POLICIES:
            policy = build_policy(name, 4, 2, seed=3)
            if name == DEFAULT_POLICY:
                assert policy is None
            else:
                assert isinstance(policy, ReplacementPolicy)
                assert policy.name == name

    def test_degenerate_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            FifoPolicy(0, 2)
        with pytest.raises(ConfigurationError):
            FifoPolicy(2, 0)


class TestArrayInstallation:
    def test_policy_on_nonempty_array_rejected(self):
        cache = _array()
        cache.insert(0)
        with pytest.raises(ConfigurationError):
            cache.set_policy(FifoPolicy(cache.num_sets, cache.associativity))

    def test_geometry_mismatch_rejected(self):
        cache = _array(sets=2, ways=2)
        with pytest.raises(ConfigurationError):
            cache.set_policy(FifoPolicy(4, 2))

    def test_uninstall_restores_native_path(self):
        cache = _array()
        cache.set_policy(FifoPolicy(cache.num_sets, cache.associativity))
        assert cache.policy is not None
        cache.clear()
        cache.set_policy(None)
        assert cache.policy is None


class TestLruExtractionEquivalence:
    """The injection point reproduces the native LRU event for event."""

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=200
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_explicit_lru_matches_native(self, addresses):
        native = _array(sets=2, ways=2)
        managed = _array(sets=2, ways=2)
        managed.set_policy(LruPolicy(managed.num_sets, managed.associativity))
        assert _replay(native, addresses) == _replay(managed, addresses)
        assert (native.hits, native.misses, native.evictions) == (
            managed.hits, managed.misses, managed.evictions
        )

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=120
        ),
        doomed=st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_survives_invalidations(self, addresses, doomed):
        native = _array(sets=2, ways=2)
        managed = _array(sets=2, ways=2)
        managed.set_policy(LruPolicy(managed.num_sets, managed.associativity))
        half = len(addresses) // 2
        first = _replay(native, addresses[:half]), _replay(managed, addresses[:half])
        assert first[0] == first[1]
        native.invalidate(doomed)
        managed.invalidate(doomed)
        assert _replay(native, addresses[half:]) == _replay(managed, addresses[half:])


class TestPolicyBehaviour:
    def test_fifo_ignores_recency(self):
        cache = _array(sets=1, ways=2)
        cache.set_policy(FifoPolicy(1, 2))
        assert _replay(cache, [0, 1, 0, 0, 2]) == [0]  # oldest in, not LRU

    def test_lfu_evicts_least_frequent(self):
        cache = _array(sets=1, ways=2)
        cache.set_policy(LfuPolicy(1, 2))
        # 0 is touched three times, 1 once: 1 goes.
        assert _replay(cache, [0, 0, 0, 1, 2]) == [1]

    def test_2q_probation_drains_before_the_hot_set(self):
        cache = _array(sets=1, ways=4)
        cache.set_policy(TwoQPolicy(1, 4))
        # 0 and 1 are promoted to Am by re-touch; 2..5 pass through A1in.
        victims = _replay(cache, [0, 1, 0, 1, 2, 3, 4, 5])
        assert 0 not in victims and 1 not in victims

    def test_random_same_seed_same_victims(self):
        streams = []
        for _ in range(2):
            cache = _array(sets=1, ways=2)
            cache.set_policy(RandomPolicy(1, 2, seed=11))
            streams.append(_replay(cache, [0, 1, 2, 3, 4, 5, 6, 7]))
        assert streams[0] == streams[1]

    def test_random_reset_replays_the_rng(self):
        policy = RandomPolicy(1, 4, seed=5)
        resident = {1: None, 2: None, 3: None, 4: None}
        first = [policy.victim(0, resident, 9) for _ in range(6)]
        policy.reset()
        assert [policy.victim(0, resident, 9) for _ in range(6)] == first

    def test_arc_ghost_hit_adapts_target(self):
        cache = _array(sets=1, ways=4)
        policy = ArcPolicy(1, 4)
        cache.set_policy(policy)
        # Promote 0 and 1 into T2, pass 2 through T1 into the B1 ghost list
        # (the ghost survives because T1 stays under the directory bound).
        _replay(cache, [0, 1, 0, 1, 2, 3, 4])
        assert policy._p[0] == 0.0
        assert 2 in policy._b1[0]
        _replay(cache, [2])  # ghost hit in B1 grows p (recency is winning)
        assert policy._p[0] > 0.0

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=200
        ),
        name=st.sampled_from(sorted(set(POLICIES) - {DEFAULT_POLICY})),
    )
    @settings(max_examples=40, deadline=None)
    def test_victim_is_always_resident(self, addresses, name):
        """Whatever a policy's bookkeeping says, it must evict a real block."""
        cache = _array(sets=2, ways=2)
        cache.set_policy(build_policy(name, 2, 2, seed=1))
        _replay(cache, addresses)  # CacheArray KeyErrors on a bad victim
        assert len(cache) <= cache.num_sets * cache.associativity


class TestEndToEndBitIdentity:
    #: Long enough for eviction pressure at the test scale (sets fill up).
    RECORDS = 20_000

    @pytest.mark.parametrize("design", ["P", "A", "S", "R", "I"])
    def test_default_policy_is_bit_identical(self, design):
        """``l2_policy="lru"`` replays byte-identically to no policy at all."""
        baseline = simulate_workload(
            "oltp-db2", design, num_records=self.RECORDS, scale=TEST_SCALE, seed=3
        )
        explicit = simulate_workload(
            "oltp-db2", design, num_records=self.RECORDS, scale=TEST_SCALE, seed=3,
            l2_policy="lru",
        )
        assert baseline.to_dict() == explicit.to_dict()

    def test_non_default_policy_changes_the_replay(self):
        """The axis is live: FIFO diverges from LRU under eviction pressure."""
        lru = simulate_workload(
            "oltp-db2", "R", num_records=self.RECORDS, scale=TEST_SCALE, seed=3
        )
        fifo = simulate_workload(
            "oltp-db2", "R", num_records=self.RECORDS, scale=TEST_SCALE, seed=3,
            l2_policy="fifo",
        )
        assert lru.stats.to_dict() != fifo.stats.to_dict()
