"""Tests for the MOSI protocol tables and the full-map directory."""

import pytest

from repro.cache.block import CoherenceState
from repro.coherence.directory import DirectoryState, FullMapDirectory
from repro.coherence.messages import (
    CONTROL_MESSAGE_BYTES,
    DATA_MESSAGE_BYTES,
    CoherenceMessage,
    MessageType,
)
from repro.coherence.mosi import LocalOutcome, MosiProtocol
from repro.errors import ProtocolError


class TestMessages:
    def test_data_messages_are_larger(self):
        assert MessageType.DATA.size_bytes == DATA_MESSAGE_BYTES
        assert MessageType.GET_SHARED.size_bytes == CONTROL_MESSAGE_BYTES
        assert DATA_MESSAGE_BYTES > CONTROL_MESSAGE_BYTES

    def test_message_wrapper(self):
        msg = CoherenceMessage(MessageType.WRITEBACK, src=1, dst=2, block_address=0x40)
        assert msg.size_bytes == DATA_MESSAGE_BYTES


class TestMosiLocalAction:
    protocol = MosiProtocol()

    @pytest.mark.parametrize(
        "state",
        [CoherenceState.MODIFIED, CoherenceState.OWNED, CoherenceState.SHARED,
         CoherenceState.EXCLUSIVE],
    )
    def test_read_hits_in_any_valid_state(self, state):
        assert self.protocol.local_action(state, write=False) is LocalOutcome.HIT

    def test_read_misses_when_invalid(self):
        assert (
            self.protocol.local_action(CoherenceState.INVALID, write=False)
            is LocalOutcome.MISS
        )

    def test_write_hits_only_with_ownership(self):
        assert (
            self.protocol.local_action(CoherenceState.MODIFIED, write=True)
            is LocalOutcome.HIT
        )
        assert (
            self.protocol.local_action(CoherenceState.SHARED, write=True)
            is LocalOutcome.UPGRADE
        )
        assert (
            self.protocol.local_action(CoherenceState.INVALID, write=True)
            is LocalOutcome.MISS
        )


class TestMosiMisses:
    protocol = MosiProtocol()

    def test_read_miss_with_dirty_owner_forwards(self):
        action = self.protocol.read_miss(owner_exists=True, sharers_exist=False)
        assert action.source == "remote_l1"
        assert MessageType.FORWARD_GET_SHARED in action.messages
        assert action.new_state is CoherenceState.SHARED

    def test_read_miss_without_copies_gives_exclusive(self):
        action = self.protocol.read_miss(owner_exists=False, sharers_exist=False)
        assert action.new_state is CoherenceState.EXCLUSIVE

    def test_write_miss_invalidates_sharers(self):
        action = self.protocol.write_miss(
            owner_exists=False, sharers_exist=True, local_state=CoherenceState.INVALID
        )
        assert action.invalidate_sharers
        assert MessageType.INVALIDATE in action.messages
        assert action.new_state is CoherenceState.MODIFIED

    def test_upgrade_from_shared_requires_no_data(self):
        action = self.protocol.write_miss(
            owner_exists=False, sharers_exist=True, local_state=CoherenceState.SHARED
        )
        assert action.outcome is LocalOutcome.UPGRADE
        assert action.source == "none"

    def test_write_miss_with_writable_state_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            self.protocol.write_miss(
                owner_exists=False,
                sharers_exist=False,
                local_state=CoherenceState.MODIFIED,
            )

    def test_eviction_messages(self):
        assert MessageType.PUT_MODIFIED in self.protocol.eviction_messages(
            CoherenceState.MODIFIED
        )
        assert self.protocol.eviction_messages(CoherenceState.INVALID) == []

    def test_downgrade_on_remote_read(self):
        assert (
            self.protocol.downgrade_on_remote_read(CoherenceState.MODIFIED)
            is CoherenceState.OWNED
        )
        assert (
            self.protocol.downgrade_on_remote_read(CoherenceState.SHARED)
            is CoherenceState.SHARED
        )

    def test_state_on_fill(self):
        assert self.protocol.state_on_fill(write=True, exclusive=False) is CoherenceState.MODIFIED
        assert self.protocol.state_on_fill(write=False, exclusive=True) is CoherenceState.EXCLUSIVE
        assert self.protocol.state_on_fill(write=False, exclusive=False) is CoherenceState.SHARED


class TestDirectory:
    def test_read_then_write_transitions(self):
        directory = FullMapDirectory(home=0, num_tiles=16)
        directory.record_read(0x100, requestor=1)
        entry = directory.peek(0x100)
        assert entry.state is DirectoryState.SHARED
        assert 1 in entry.sharers
        invalidated = directory.record_write(0x100, requestor=2)
        assert invalidated == [1]
        entry = directory.peek(0x100)
        assert entry.state is DirectoryState.MODIFIED
        assert entry.owner == 2

    def test_write_then_read_downgrades(self):
        directory = FullMapDirectory(home=0, num_tiles=16)
        directory.record_write(0x200, requestor=3)
        directory.record_read(0x200, requestor=4)
        entry = directory.peek(0x200)
        assert entry.state is DirectoryState.SHARED
        assert {3, 4} <= entry.sharers

    def test_eviction_clears_entry(self):
        directory = FullMapDirectory(home=0, num_tiles=16)
        directory.record_read(0x300, requestor=1)
        directory.record_eviction(0x300, tile=1)
        assert directory.peek(0x300) is None

    def test_eviction_of_owner_keeps_other_sharers(self):
        directory = FullMapDirectory(home=0, num_tiles=16)
        directory.record_write(0x300, requestor=1)
        directory.record_read(0x300, requestor=2)
        directory.record_eviction(0x300, tile=1)
        entry = directory.peek(0x300)
        assert entry is not None
        assert 2 in entry.sharers

    def test_invalidate_block_returns_all_holders(self):
        directory = FullMapDirectory(home=0, num_tiles=16)
        directory.record_read(0x400, requestor=1)
        directory.record_read(0x400, requestor=5)
        holders = directory.invalidate_block(0x400)
        assert holders == [1, 5]
        assert directory.peek(0x400) is None

    def test_validate_passes_on_consistent_state(self):
        directory = FullMapDirectory(home=0, num_tiles=16)
        directory.record_write(0x10, requestor=0)
        directory.record_read(0x20, requestor=1)
        directory.validate()

    def test_storage_model_matches_section_2_2(self):
        """Section 2.2: 16-bit sharer mask + 5-bit state per entry."""
        assert FullMapDirectory.entry_bits(num_tiles=16) == 21
        # 288K entries at 21 bits is roughly 756 KB; the paper quotes 1.2 MB
        # for a directory covering both L1s and L2 slices with extra state.
        size = FullMapDirectory.storage_bytes(num_tiles=16, covered_blocks=288 * 1024)
        assert 700 * 1024 < size < 800 * 1024

    def test_lookup_counter(self):
        directory = FullMapDirectory(home=0, num_tiles=4)
        directory.entry(0x1)
        directory.entry(0x1)
        assert directory.lookups == 2
