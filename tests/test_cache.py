"""Tests for the cache substrate: arrays, blocks, MSHRs, victim caches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import AccessType, CacheBlock, CoherenceState
from repro.cache.cache_array import CacheArray
from repro.cache.mshr import MshrFile
from repro.cache.victim import VictimCache
from repro.cmp.config import CacheConfig
from repro.errors import SimulationError


def small_cache(sets: int = 4, ways: int = 2) -> CacheArray:
    return CacheArray(CacheConfig(size_bytes=sets * ways * 64, associativity=ways))


class TestCoherenceState:
    def test_dirty_states(self):
        assert CoherenceState.MODIFIED.is_dirty
        assert CoherenceState.OWNED.is_dirty
        assert not CoherenceState.SHARED.is_dirty
        assert not CoherenceState.INVALID.is_dirty

    def test_writable_states(self):
        assert CoherenceState.MODIFIED.can_write
        assert CoherenceState.EXCLUSIVE.can_write
        assert not CoherenceState.SHARED.can_write

    def test_invalid_cannot_read(self):
        assert not CoherenceState.INVALID.can_read


class TestAccessType:
    def test_instruction_flag(self):
        assert AccessType.INSTRUCTION.is_instruction
        assert not AccessType.LOAD.is_instruction

    def test_write_flag(self):
        assert AccessType.STORE.is_write
        assert not AccessType.LOAD.is_write


class TestCacheBlock:
    def test_touch_updates_lru_metadata(self):
        block = CacheBlock(address=0x10)
        block.touch(5)
        assert block.last_access == 5
        assert block.access_count == 1
        assert not block.dirty

    def test_touch_write_marks_dirty_and_modified(self):
        block = CacheBlock(address=0x10)
        block.touch(1, write=True)
        assert block.dirty
        assert block.state is CoherenceState.MODIFIED

    def test_invalidate(self):
        block = CacheBlock(address=0x10, dirty=True)
        block.invalidate()
        assert block.state is CoherenceState.INVALID
        assert not block.dirty


class TestCacheArray:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x100).hit
        cache.insert(0x100)
        assert cache.lookup(0x100).hit
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0)
        cache.insert(1)
        cache.lookup(0)  # 0 becomes MRU, 1 is now LRU
        result = cache.insert(2)
        assert result.victim is not None
        assert result.victim.address == 1

    def test_insert_existing_block_does_not_evict(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0)
        cache.insert(1)
        result = cache.insert(0, dirty=True)
        assert result.victim is None
        assert cache.peek(0).dirty

    def test_set_isolation(self):
        cache = small_cache(sets=4, ways=1)
        cache.insert(0)
        cache.insert(1)
        assert cache.peek(0) is not None
        assert cache.peek(1) is not None

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(0x40)
        assert cache.invalidate(0x40) is not None
        assert cache.peek(0x40) is None
        assert cache.invalidations == 1

    def test_invalidate_where(self):
        cache = small_cache(sets=8, ways=2)
        for addr in range(8):
            cache.insert(addr)
        removed = cache.invalidate_where(lambda blk: blk.address < 4)
        assert {b.address for b in removed} == {0, 1, 2, 3}
        assert len(cache) == 4

    def test_peek_does_not_affect_stats(self):
        cache = small_cache()
        cache.insert(7)
        cache.peek(7)
        assert cache.hits == 0

    def test_occupancy_and_len(self):
        cache = small_cache(sets=2, ways=2)
        assert cache.occupancy == 0.0
        cache.insert(0)
        cache.insert(1)
        assert len(cache) == 2
        assert cache.occupancy == 0.5

    def test_write_lookup_marks_dirty(self):
        cache = small_cache()
        cache.insert(3)
        cache.lookup(3, write=True)
        assert cache.peek(3).dirty

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(1)
        cache.insert(1)
        cache.lookup(1)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_clear_and_reset_stats(self):
        cache = small_cache()
        cache.insert(1)
        cache.lookup(1)
        cache.clear()
        cache.reset_stats()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    @given(addresses=st.lists(st.integers(min_value=0, max_value=4096), max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_capacity_never_exceeded(self, addresses):
        cache = small_cache(sets=4, ways=2)
        for address in addresses:
            cache.insert(address)
        assert len(cache) <= cache.num_sets * cache.associativity
        for cache_set in cache._sets:
            assert len(cache_set) <= cache.associativity

    @given(addresses=st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_most_recent_insert_is_always_resident(self, addresses):
        cache = small_cache(sets=2, ways=2)
        for address in addresses:
            cache.insert(address)
            assert cache.peek(address) is not None


class TestMshrFile:
    def test_allocation_and_merge(self):
        mshrs = MshrFile(entries=4)
        assert mshrs.allocate(0x1, core_id=0, now=1)
        assert not mshrs.allocate(0x1, core_id=1, now=2)
        assert mshrs.merges == 1
        assert mshrs.merge_rate == pytest.approx(0.5)

    def test_release_returns_requestors(self):
        mshrs = MshrFile(entries=4)
        mshrs.allocate(0x1, core_id=0, now=1)
        mshrs.allocate(0x1, core_id=3, now=2)
        assert mshrs.release(0x1) == [0, 3]
        assert mshrs.release(0x1) == []

    def test_structural_stall_when_full(self):
        mshrs = MshrFile(entries=2)
        mshrs.allocate(1, 0, now=1)
        mshrs.allocate(2, 0, now=2)
        mshrs.allocate(3, 0, now=3)
        assert mshrs.structural_stalls == 1
        assert len(mshrs) == 2

    def test_zero_entries_rejected(self):
        with pytest.raises(SimulationError):
            MshrFile(entries=0)

    def test_full_file_retires_oldest_by_issue_time(self):
        """The stall path drops the entry with the smallest issue_time."""
        mshrs = MshrFile(entries=2)
        mshrs.allocate(1, 0, now=5)
        mshrs.allocate(2, 0, now=3)  # older despite later call order
        assert mshrs.allocate(9, 0, now=7)  # stall: retires block 2
        assert 2 not in mshrs
        assert 1 in mshrs and 9 in mshrs
        # The retired miss's requestors are gone: release finds nothing.
        assert mshrs.release(2) == []

    def test_merge_into_full_file_does_not_stall(self):
        """Secondary misses merge without touching capacity."""
        mshrs = MshrFile(entries=2)
        mshrs.allocate(1, 0, now=1)
        mshrs.allocate(2, 0, now=2)
        assert not mshrs.allocate(1, 5, now=3)
        assert mshrs.structural_stalls == 0
        assert mshrs.release(1) == [0, 5]

    def test_every_overflow_counts_a_stall(self):
        mshrs = MshrFile(entries=1)
        for now, block in enumerate((1, 2, 3, 4), start=1):
            assert mshrs.allocate(block, 0, now=now)
        assert mshrs.structural_stalls == 3
        assert mshrs.allocations == 4
        assert len(mshrs) == 1

    def test_release_then_reallocate_is_fresh(self):
        """A completed miss does not merge later misses to the same block."""
        mshrs = MshrFile(entries=4)
        mshrs.allocate(7, 0, now=1)
        mshrs.release(7)
        assert mshrs.allocate(7, 1, now=2)
        assert mshrs.merges == 0
        assert mshrs.release(7) == [1]

    def test_clear_empties_but_keeps_counters(self):
        mshrs = MshrFile(entries=2)
        mshrs.allocate(1, 0, now=1)
        mshrs.clear()
        assert len(mshrs) == 0
        assert mshrs.allocations == 1


class TestVictimCache:
    def test_insert_and_extract(self):
        victim = VictimCache(entries=2)
        victim.insert(CacheBlock(address=1))
        extracted = victim.extract(1)
        assert extracted is not None and extracted.address == 1
        assert victim.extract(1) is None  # already removed
        assert victim.hits == 1 and victim.misses == 1

    def test_fifo_displacement(self):
        victim = VictimCache(entries=2)
        displaced = [victim.insert(CacheBlock(address=a)) for a in (1, 2, 3)]
        assert displaced[0] is None and displaced[1] is None
        assert displaced[2] is not None and displaced[2].address == 1

    def test_zero_capacity_passes_through(self):
        victim = VictimCache(entries=0)
        block = CacheBlock(address=9)
        assert victim.insert(block) is block
        assert 9 not in victim

    def test_hit_rate(self):
        victim = VictimCache(entries=4)
        victim.insert(CacheBlock(address=1))
        victim.extract(1)
        victim.extract(2)
        assert victim.hit_rate == pytest.approx(0.5)

    def test_invalidate_silent(self):
        victim = VictimCache(entries=4)
        victim.insert(CacheBlock(address=5))
        assert victim.invalidate(5) is not None
        assert victim.hits == 0 and victim.misses == 0

    def test_hit_after_demotion_round_trips_the_block(self):
        """The demotion path: a block evicted from the array is parked in
        the victim buffer and a later miss swaps the *same* block back,
        dirty bit and all."""
        cache = small_cache(sets=1, ways=2)
        victim = VictimCache(entries=4)
        cache.insert(0, dirty=True)
        cache.insert(1)
        evicted = cache.insert(2).victim  # demotes block 0 (LRU, dirty)
        assert evicted is not None and evicted.address == 0
        victim.insert(evicted)
        assert not cache.lookup(0).hit  # main-array miss...
        recovered = victim.extract(0)  # ...but the victim buffer has it
        assert recovered is evicted
        assert recovered.dirty
        assert victim.hits == 1
        cache.insert(0, dirty=recovered.dirty)
        assert cache.peek(0).dirty

    def test_reinsert_refreshes_fifo_position(self):
        """Re-parking a resident address moves it to the back of the FIFO."""
        victim = VictimCache(entries=2)
        victim.insert(CacheBlock(address=1))
        victim.insert(CacheBlock(address=2))
        assert victim.insert(CacheBlock(address=1)) is None  # refresh, no displace
        displaced = victim.insert(CacheBlock(address=3))
        assert displaced is not None and displaced.address == 2

    def test_negative_capacity_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            VictimCache(entries=-1)

    def test_policy_geometry_and_emptiness_guards(self):
        from repro.cache.policies import FifoPolicy
        from repro.errors import ConfigurationError

        victim = VictimCache(entries=4)
        with pytest.raises(ConfigurationError):
            victim.set_policy(FifoPolicy(2, 4))  # wrong geometry
        victim.insert(CacheBlock(address=1))
        with pytest.raises(ConfigurationError):
            victim.set_policy(FifoPolicy(1, 4))  # non-empty buffer
        victim.clear()
        victim.set_policy(FifoPolicy(1, 4))  # now fine
        victim.set_policy(None)  # and back to native FIFO

    def test_fifo_policy_matches_native_order(self):
        """An installed FifoPolicy displaces the same blocks native FIFO
        does on a duplicate-free stream.  (On re-inserts the two differ by
        design: the native buffer refreshes, true FIFO ignores recency.)"""
        from repro.cache.policies import FifoPolicy

        native = VictimCache(entries=2)
        managed = VictimCache(entries=2)
        managed.set_policy(FifoPolicy(1, 2))
        for address in (1, 2, 3, 4, 5):
            lhs = native.insert(CacheBlock(address=address))
            rhs = managed.insert(CacheBlock(address=address))
            assert (lhs.address if lhs else None) == (rhs.address if rhs else None)
