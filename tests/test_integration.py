"""Integration tests: end-to-end simulations and cross-design invariants."""

import pytest

from repro.cmp.chip import TiledChip
from repro.cmp.config import SystemConfig
from repro.designs import build_design
from repro.sim.engine import TraceSimulator, simulate_workload
from repro.sim.latency import CpiModel
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.spec import get_workload

from .conftest import TEST_SCALE

RECORDS = 6000


@pytest.fixture(scope="module")
def oltp_results():
    """P/S/R/I results for one OLTP trace (module-scoped: built once)."""
    spec = get_workload("oltp-db2")
    config = SystemConfig.server_16core().scaled(TEST_SCALE)
    trace = SyntheticTraceGenerator(spec, config, seed=9, scale=TEST_SCALE).generate(RECORDS)
    results = {}
    for letter in ("P", "S", "R", "I"):
        chip = TiledChip(config)
        simulator = TraceSimulator(
            build_design(letter, chip), CpiModel.for_workload(spec), warmup_fraction=0.3
        )
        results[letter] = simulator.run(trace)
    return results


class TestCrossDesignInvariants:
    def test_all_designs_service_every_access(self, oltp_results):
        accesses = {r.stats.accesses for r in oltp_results.values()}
        assert len(accesses) == 1

    def test_instruction_counts_identical(self, oltp_results):
        instructions = {r.stats.instructions for r in oltp_results.values()}
        assert len(instructions) == 1

    def test_busy_cpi_identical_across_designs(self, oltp_results):
        busy = {round(r.stats.component_cpi("busy"), 9) for r in oltp_results.values()}
        assert len(busy) == 1

    def test_ideal_is_best(self, oltp_results):
        ideal = oltp_results["I"].cpi
        for letter in ("P", "S", "R"):
            assert ideal <= oltp_results[letter].cpi * 1.02

    def test_rnuca_at_least_matches_best_conventional_design(self, oltp_results):
        """The paper's headline: R-NUCA matches the best design per workload."""
        best_conventional = min(oltp_results["P"].cpi, oltp_results["S"].cpi)
        assert oltp_results["R"].cpi <= best_conventional * 1.05

    def test_oltp_is_private_averse(self, oltp_results):
        """Section 5.3 classifies OLTP DB2 as private-averse."""
        assert oltp_results["P"].cpi > oltp_results["S"].cpi * 0.98

    def test_only_directory_designs_use_coherence(self, oltp_results):
        assert oltp_results["P"].stats.coherence_accesses > 0
        assert oltp_results["S"].stats.coherence_accesses == 0
        assert oltp_results["R"].stats.coherence_accesses == 0
        assert oltp_results["I"].stats.coherence_accesses == 0

    def test_rnuca_reclassification_overhead_negligible(self, oltp_results):
        """Section 5.3: the re-classification overhead of R-NUCA is negligible."""
        result = oltp_results["R"]
        assert result.stats.component_cpi("reclassification") < 0.05 * result.cpi

    def test_rnuca_misclassification_low(self, oltp_results):
        """Section 5.2: page-granularity classification misclassifies few accesses."""
        assert oltp_results["R"].metadata["misclassification_rate"] < 0.05

    def test_confidence_intervals_reported(self, oltp_results):
        for result in oltp_results.values():
            assert result.cpi_confidence is not None
            assert result.cpi_confidence.mean == pytest.approx(result.cpi, rel=0.25)


class TestMultiprogrammed:
    def test_mix_runs_on_8core_machine(self):
        result = simulate_workload("mix", "R", num_records=2500, scale=TEST_SCALE)
        assert result.metadata["config"].startswith("multiprogrammed-8core")

    def test_mix_is_shared_averse(self):
        """Section 5.3: the multi-programmed mix favours private-like locality."""
        shared = simulate_workload("mix", "S", num_records=5000, scale=TEST_SCALE, seed=4)
        private = simulate_workload("mix", "P", num_records=5000, scale=TEST_SCALE, seed=4)
        rnuca = simulate_workload("mix", "R", num_records=5000, scale=TEST_SCALE, seed=4)
        assert shared.cpi > private.cpi
        assert rnuca.cpi <= private.cpi * 1.03


class TestClusterSizeTradeoff:
    def test_size4_not_worse_than_extremes(self):
        """Figure 11: size-4 clusters balance latency and off-chip misses."""
        from repro.analysis.evaluation import simulate_rnuca_cluster

        results = {
            size: simulate_rnuca_cluster(
                "apache", size, num_records=6000, scale=TEST_SCALE, seed=6
            )
            for size in (1, 4, 16)
        }
        # Size-1 replicates everywhere (more off-chip); size-16 has no replication
        # (higher instruction latency).  Size-4 should not lose to both.
        assert results[4].cpi <= max(results[1].cpi, results[16].cpi) * 1.02
        assert results[1].metadata["offchip_rate"] >= results[16].metadata["offchip_rate"]

    def test_instruction_latency_grows_with_cluster_size(self):
        from repro.analysis.evaluation import simulate_rnuca_cluster

        small = simulate_rnuca_cluster("apache", 1, num_records=4000, scale=TEST_SCALE, seed=6)
        large = simulate_rnuca_cluster("apache", 16, num_records=4000, scale=TEST_SCALE, seed=6)
        assert large.stats.class_component_cpi("instruction", "l2") > (
            small.stats.class_component_cpi("instruction", "l2")
        )
