"""Tests for the binary trace persistence and the content-addressed store.

Covers the zero-copy pipeline's contracts: binary save/load round trips
(static and dynamic, events and metadata preserved, memory-mapped columns),
the legacy JSON-lines read path, and the :class:`TraceStore` hit / miss /
corruption / generation-log behaviour the exactly-once guarantee rests on.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp.config import SystemConfig
from repro.dynamics.generator import generate_dynamic_trace
from repro.dynamics.scenarios import resolve_dynamic
from repro.errors import TraceError
from repro.workloads.spec import get_workload
from repro.workloads.store import (
    GENERATION_LOG,
    TraceKey,
    TraceStore,
    spec_fingerprint,
)
from repro.workloads.trace import (
    MIGRATION_EVENT,
    PHASE_EVENT,
    SHARING_ONSET_EVENT,
    Trace,
    TraceColumns,
    TraceEvents,
)

from .conftest import TEST_SCALE


def assert_traces_equal(a: Trace, b: Trace) -> None:
    """Deep equality via Trace.equals, with per-field context on failure.

    ``Trace.equals`` derives its field lists from the dataclass
    definitions, so new columns are covered automatically; the named
    asserts below only exist to say *which* part diverged.
    """
    if a.equals(b):
        return
    for name in ("core", "access_type", "address", "instructions", "thread_id", "true_class"):
        assert np.array_equal(getattr(a.columns, name), getattr(b.columns, name)), name
    assert a.columns.class_table == b.columns.class_table
    for name in ("record_index", "kind", "arg0", "arg1"):
        assert np.array_equal(getattr(a.events, name), getattr(b.events, name)), name
    assert a.workload == b.workload
    assert a.num_cores == b.num_cores
    assert a.metadata == b.metadata
    raise AssertionError("Trace.equals is false but no known field differs")


@pytest.fixture
def migrate_trace(config16):
    dspec = resolve_dynamic("oltp-db2:migrate")
    return generate_dynamic_trace(dspec, config16, 2000, seed=3, scale=TEST_SCALE)


def store_key(seed: int = 0, num_records: int = 2000, workload: str = "oltp-db2") -> TraceKey:
    return TraceKey.make(
        workload,
        num_records=num_records,
        scale=TEST_SCALE,
        seed=seed,
        spec=get_workload(workload),
    )


# --------------------------------------------------------------------- #
# Binary persistence
# --------------------------------------------------------------------- #
class TestBinaryPersistence:
    def test_default_save_is_binary(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        assert path.read_bytes()[:2] == b"PK"  # a zip archive, not JSON

    def test_round_trip_static(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        assert_traces_equal(Trace.load(path), oltp_trace)

    def test_round_trip_dynamic_preserves_events(self, tmp_path, migrate_trace):
        path = tmp_path / "dyn.npz"
        migrate_trace.save(path)
        loaded = Trace.load(path)
        assert loaded.is_dynamic
        assert loaded.events.rows() == migrate_trace.events.rows()
        assert_traces_equal(loaded, migrate_trace)

    def test_load_memory_maps_the_columns(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        loaded = Trace.load(path)
        # Zero-copy: the column data is a read-only view into the file.
        assert isinstance(loaded.columns.core, np.memmap)
        assert isinstance(loaded.columns.address, np.memmap)
        with pytest.raises((ValueError, RuntimeError)):
            loaded.columns.core[0] = 99

    def test_load_without_mmap_copies(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        loaded = Trace.load(path, mmap=False)
        assert not isinstance(loaded.columns.core, np.memmap)
        assert_traces_equal(loaded, oltp_trace)

    def test_legacy_jsonl_still_loads(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.jsonl"
        oltp_trace.save(path, format="jsonl")
        assert path.read_text()[0] == "{"
        loaded = Trace.load(path)
        assert loaded.records == oltp_trace.records
        assert loaded.metadata == oltp_trace.metadata

    def test_legacy_jsonl_round_trips_events(self, tmp_path, migrate_trace):
        path = tmp_path / "dyn.jsonl"
        migrate_trace.save(path, format="jsonl")
        loaded = Trace.load(path)
        assert loaded.events.rows() == migrate_trace.events.rows()

    def test_unknown_format_rejected(self, tmp_path, oltp_trace):
        with pytest.raises(TraceError, match="format"):
            oltp_trace.save(tmp_path / "trace.bin", format="parquet")

    def test_truncated_binary_raises_trace_error(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        path.write_bytes(path.read_bytes()[:128])  # zip magic intact, body gone
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_missing_member_raises_trace_error(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        with path.open("wb") as handle:
            np.savez(handle, core=np.zeros(4, dtype=np.int64))
        with pytest.raises(TraceError):
            Trace.load(path)


# --------------------------------------------------------------------- #
# Property tests: arbitrary traces survive the binary round trip
# --------------------------------------------------------------------- #
record_counts = st.integers(min_value=1, max_value=40)


@st.composite
def arbitrary_traces(draw) -> Trace:
    n = draw(record_counts)
    ints = st.integers(min_value=0, max_value=2**40)
    core = draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
    access = draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
    address = draw(st.lists(ints, min_size=n, max_size=n))
    instructions = draw(st.lists(st.integers(0, 500), min_size=n, max_size=n))
    thread = draw(st.lists(st.integers(-1, 31), min_size=n, max_size=n))
    table = (None, "instruction", "private", "shared_rw", "shared_ro")
    labels = draw(st.lists(st.integers(0, len(table) - 1), min_size=n, max_size=n))
    columns = TraceColumns(
        core=np.asarray(core, dtype=np.int64),
        access_type=np.asarray(access, dtype=np.int8),
        address=np.asarray(address, dtype=np.int64),
        instructions=np.asarray(instructions, dtype=np.int64),
        thread_id=np.asarray(thread, dtype=np.int64),
        true_class=np.asarray(labels, dtype=np.int16),
        class_table=table,
    )
    n_events = draw(st.integers(min_value=0, max_value=6))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from((MIGRATION_EVENT, SHARING_ONSET_EVENT, PHASE_EVENT)),
                st.integers(0, 31),
                st.integers(0, 31),
            ),
            min_size=n_events,
            max_size=n_events,
        )
    )
    metadata = {"seed": draw(st.integers(0, 99)), "tag": draw(st.text(max_size=8))}
    return Trace.from_columns(
        columns,
        workload=draw(st.text(min_size=1, max_size=12)),
        metadata=metadata,
        events=TraceEvents.from_rows(rows),
    )


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(trace=arbitrary_traces())
    def test_binary_round_trip_is_identity(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("prop") / "trace.npz"
        trace.save(path)
        assert_traces_equal(Trace.load(path), trace)

    @settings(max_examples=25, deadline=None)
    @given(trace=arbitrary_traces())
    def test_jsonl_round_trip_preserves_records_and_events(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("prop") / "trace.jsonl"
        trace.save(path, format="jsonl")
        loaded = Trace.load(path)
        assert loaded.records == trace.records
        assert loaded.events.rows() == trace.events.rows()


# --------------------------------------------------------------------- #
# Spec fingerprints and keys
# --------------------------------------------------------------------- #
class TestTraceKey:
    def test_fingerprint_changes_with_spec_parameters(self):
        spec = get_workload("oltp-db2")
        tweaked = dataclasses.replace(spec, mixed_page_fraction=0.21)
        assert spec_fingerprint(spec) != spec_fingerprint(tweaked)

    def test_fingerprint_covers_dynamic_extension(self):
        spec = get_workload("oltp-db2")
        dyn = resolve_dynamic("oltp-db2:migrate")
        assert spec_fingerprint(spec) != spec_fingerprint(spec, dyn)
        assert spec_fingerprint(spec, dyn) == spec_fingerprint(spec, dyn)

    def test_fingerprint_covers_machine_geometry(self, config16):
        """A config change (page size, tile count, ...) retires old traces.

        The generator derives physical addresses from the machine geometry,
        so the same workload on a different machine is a different trace —
        the fingerprint must see the scaled SystemConfig, not just the spec.
        """
        spec = get_workload("oltp-db2")
        other = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE // 2)
        assert spec_fingerprint(spec, config=config16) != spec_fingerprint(spec)
        assert spec_fingerprint(spec, config=config16) != spec_fingerprint(
            spec, config=other
        )
        assert spec_fingerprint(spec, config=config16) == spec_fingerprint(
            spec, config=config16
        )

    def test_key_distinguishes_every_axis(self):
        base = store_key()
        assert base != store_key(seed=1)
        assert base != store_key(num_records=3000)
        assert base != store_key(workload="mix")
        assert base.content_hash != store_key(seed=1).content_hash

    def test_filename_is_filesystem_safe(self):
        spec = get_workload("oltp-db2")
        dyn = resolve_dynamic("oltp-db2:migrate")
        key = TraceKey.make(
            "oltp-db2:migrate", num_records=100, scale=TEST_SCALE, seed=0,
            spec=spec, dyn=dyn,
        )
        assert ":" not in key.filename
        assert key.filename.endswith(".npz")


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #
class TestTraceStore:
    def test_miss_then_hit(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        key = store_key()
        assert store.get(key) is None
        store.put(key, oltp_trace)
        cached = store.get(key)
        assert cached is not None
        assert_traces_equal(cached, oltp_trace)
        assert isinstance(cached.columns.core, np.memmap)

    def test_get_or_create_generates_exactly_once(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        key = store_key()
        calls = []

        def factory():
            calls.append(1)
            return oltp_trace

        first, hit_first = store.get_or_create(key, factory)
        second, hit_second = store.get_or_create(key, factory)
        assert (hit_first, hit_second) == (False, True)
        assert len(calls) == 1
        assert store.generation_log() == [key.filename]
        assert_traces_equal(first, second)

    def test_corrupt_file_is_a_miss_and_regenerates(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        key = store_key()
        store.put(key, oltp_trace)
        store.path_for(key).write_bytes(b"PK\x03\x04 definitely not a zip")
        assert store.get(key) is None
        regenerated, hit = store.get_or_create(key, lambda: oltp_trace)
        assert not hit
        assert store.generation_log() == [key.filename]
        assert_traces_equal(store.get(key), regenerated)

    def test_distinct_keys_store_distinct_files(self, tmp_path, oltp_trace, mix_trace):
        store = TraceStore(tmp_path)
        store.put(store_key(), oltp_trace)
        store.put(store_key(workload="mix"), mix_trace)
        assert len(list(tmp_path.glob("*.npz"))) == 2
        assert_traces_equal(store.get(store_key(workload="mix")), mix_trace)

    def test_generation_log_empty_without_generations(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.generation_log() == []
        assert not (tmp_path / GENERATION_LOG).exists()

    def test_from_env_reads_trace_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("RNUCA_TRACE_DIR", str(tmp_path / "cache"))
        assert TraceStore.from_env().directory == tmp_path / "cache"
        monkeypatch.delenv("RNUCA_TRACE_DIR")
        assert str(TraceStore.from_env().directory) == "traces"

    def test_spec_change_misses_the_old_trace(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        spec = get_workload("oltp-db2")
        old = TraceKey.make(
            "oltp-db2", num_records=2000, scale=TEST_SCALE, seed=0, spec=spec
        )
        store.put(old, oltp_trace)
        tweaked = dataclasses.replace(spec, mixed_page_fraction=0.21)
        new = TraceKey.make(
            "oltp-db2", num_records=2000, scale=TEST_SCALE, seed=0, spec=tweaked
        )
        assert store.get(new) is None


def test_store_header_is_json(tmp_path, oltp_trace):
    """The binary header member is plain JSON — inspectable without numpy."""
    import zipfile

    path = tmp_path / "trace.npz"
    oltp_trace.save(path)
    with zipfile.ZipFile(path) as archive:
        member = archive.read("header.npy")
    # The npy header (an ASCII dict) ends at the first newline; the uint8
    # payload after it is the UTF-8 JSON document.
    header = json.loads(member[member.index(b"\n") + 1:].decode("utf-8"))
    assert header["workload"] == oltp_trace.workload
    assert header["num_cores"] == oltp_trace.num_cores
