"""Tests for the binary trace persistence and the content-addressed store.

Covers the zero-copy pipeline's contracts: binary save/load round trips
(static and dynamic, events and metadata preserved, memory-mapped columns),
the loud rejection of the removed JSON-lines format, the LRU ``gc`` sweep,
and the :class:`TraceStore` hit / miss / corruption / generation-log
behaviour the exactly-once guarantee rests on.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp.config import SystemConfig
from repro.dynamics.generator import generate_dynamic_trace
from repro.dynamics.scenarios import resolve_dynamic
from repro.errors import TraceError
from repro.workloads.spec import get_workload
from repro.workloads.store import (
    GENERATION_LOG,
    TraceKey,
    TraceStore,
    spec_fingerprint,
)
from repro.workloads.trace import (
    MIGRATION_EVENT,
    PHASE_EVENT,
    SHARING_ONSET_EVENT,
    Trace,
    TraceColumns,
    TraceEvents,
)

from .conftest import TEST_SCALE


def assert_traces_equal(a: Trace, b: Trace) -> None:
    """Deep equality via Trace.equals, with per-field context on failure.

    ``Trace.equals`` derives its field lists from the dataclass
    definitions, so new columns are covered automatically; the named
    asserts below only exist to say *which* part diverged.
    """
    if a.equals(b):
        return
    for name in ("core", "access_type", "address", "instructions", "thread_id", "true_class"):
        assert np.array_equal(getattr(a.columns, name), getattr(b.columns, name)), name
    assert a.columns.class_table == b.columns.class_table
    for name in ("record_index", "kind", "arg0", "arg1"):
        assert np.array_equal(getattr(a.events, name), getattr(b.events, name)), name
    assert a.workload == b.workload
    assert a.num_cores == b.num_cores
    assert a.metadata == b.metadata
    raise AssertionError("Trace.equals is false but no known field differs")


@pytest.fixture
def migrate_trace(config16):
    dspec = resolve_dynamic("oltp-db2:migrate")
    return generate_dynamic_trace(dspec, config16, 2000, seed=3, scale=TEST_SCALE)


def store_key(seed: int = 0, num_records: int = 2000, workload: str = "oltp-db2") -> TraceKey:
    return TraceKey.make(
        workload,
        num_records=num_records,
        scale=TEST_SCALE,
        seed=seed,
        spec=get_workload(workload),
    )


# --------------------------------------------------------------------- #
# Binary persistence
# --------------------------------------------------------------------- #
class TestBinaryPersistence:
    def test_default_save_is_binary(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        assert path.read_bytes()[:2] == b"PK"  # a zip archive, not JSON

    def test_round_trip_static(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        assert_traces_equal(Trace.load(path), oltp_trace)

    def test_round_trip_dynamic_preserves_events(self, tmp_path, migrate_trace):
        path = tmp_path / "dyn.npz"
        migrate_trace.save(path)
        loaded = Trace.load(path)
        assert loaded.is_dynamic
        assert loaded.events.rows() == migrate_trace.events.rows()
        assert_traces_equal(loaded, migrate_trace)

    def test_load_memory_maps_the_columns(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        loaded = Trace.load(path)
        # Zero-copy: the column data is a read-only view into the file.
        assert isinstance(loaded.columns.core, np.memmap)
        assert isinstance(loaded.columns.address, np.memmap)
        with pytest.raises((ValueError, RuntimeError)):
            loaded.columns.core[0] = 99

    def test_load_without_mmap_copies(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        loaded = Trace.load(path, mmap=False)
        assert not isinstance(loaded.columns.core, np.memmap)
        assert_traces_equal(loaded, oltp_trace)

    def test_legacy_jsonl_reader_removed(self, tmp_path):
        """The one-release deprecation window has closed: JSON-lines files
        are rejected loudly instead of parsed."""
        path = tmp_path / "trace.jsonl"
        path.write_text('{"workload": "old", "num_cores": 2}\n[0, "load", 64, 20, null, null]\n')
        with pytest.raises(TraceError, match="JSON-lines"):
            Trace.load(path)

    def test_legacy_jsonl_writer_removed(self, tmp_path, oltp_trace):
        with pytest.raises(TypeError):
            oltp_trace.save(tmp_path / "trace.jsonl", format="jsonl")

    def test_stale_jsonl_store_entry_reads_as_miss(self, tmp_path, oltp_trace):
        """A pre-binary artifact left in a trace store regenerates instead
        of crashing the run."""
        store = TraceStore(tmp_path / "store")
        key = TraceKey.make(
            "oltp-db2", num_records=10, scale=1.0, seed=0,
            spec=get_workload("oltp-db2"),
        )
        store.directory.mkdir(parents=True)
        store.path_for(key).write_text('{"workload": "old"}\n')
        assert store.get(key) is None
        trace, hit = store.get_or_create(key, lambda: oltp_trace)
        assert not hit
        assert trace is oltp_trace

    def test_truncated_binary_raises_trace_error(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        oltp_trace.save(path)
        path.write_bytes(path.read_bytes()[:128])  # zip magic intact, body gone
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_missing_member_raises_trace_error(self, tmp_path, oltp_trace):
        path = tmp_path / "trace.npz"
        with path.open("wb") as handle:
            np.savez(handle, core=np.zeros(4, dtype=np.int64))
        with pytest.raises(TraceError):
            Trace.load(path)


# --------------------------------------------------------------------- #
# Property tests: arbitrary traces survive the binary round trip
# --------------------------------------------------------------------- #
record_counts = st.integers(min_value=1, max_value=40)


@st.composite
def arbitrary_traces(draw) -> Trace:
    n = draw(record_counts)
    ints = st.integers(min_value=0, max_value=2**40)
    core = draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
    access = draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
    address = draw(st.lists(ints, min_size=n, max_size=n))
    instructions = draw(st.lists(st.integers(0, 500), min_size=n, max_size=n))
    thread = draw(st.lists(st.integers(-1, 31), min_size=n, max_size=n))
    table = (None, "instruction", "private", "shared_rw", "shared_ro")
    labels = draw(st.lists(st.integers(0, len(table) - 1), min_size=n, max_size=n))
    columns = TraceColumns(
        core=np.asarray(core, dtype=np.int64),
        access_type=np.asarray(access, dtype=np.int8),
        address=np.asarray(address, dtype=np.int64),
        instructions=np.asarray(instructions, dtype=np.int64),
        thread_id=np.asarray(thread, dtype=np.int64),
        true_class=np.asarray(labels, dtype=np.int16),
        class_table=table,
    )
    n_events = draw(st.integers(min_value=0, max_value=6))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from((MIGRATION_EVENT, SHARING_ONSET_EVENT, PHASE_EVENT)),
                st.integers(0, 31),
                st.integers(0, 31),
            ),
            min_size=n_events,
            max_size=n_events,
        )
    )
    metadata = {"seed": draw(st.integers(0, 99)), "tag": draw(st.text(max_size=8))}
    return Trace.from_columns(
        columns,
        workload=draw(st.text(min_size=1, max_size=12)),
        metadata=metadata,
        events=TraceEvents.from_rows(rows),
    )


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(trace=arbitrary_traces())
    def test_binary_round_trip_is_identity(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("prop") / "trace.npz"
        trace.save(path)
        assert_traces_equal(Trace.load(path), trace)

    @settings(max_examples=25, deadline=None)
    @given(trace=arbitrary_traces())
    def test_mmap_free_load_round_trip_is_identity(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("prop") / "trace.npz"
        trace.save(path)
        assert_traces_equal(Trace.load(path, mmap=False), trace)


# --------------------------------------------------------------------- #
# Spec fingerprints and keys
# --------------------------------------------------------------------- #
class TestTraceKey:
    def test_fingerprint_changes_with_spec_parameters(self):
        spec = get_workload("oltp-db2")
        tweaked = dataclasses.replace(spec, mixed_page_fraction=0.21)
        assert spec_fingerprint(spec) != spec_fingerprint(tweaked)

    def test_fingerprint_covers_dynamic_extension(self):
        spec = get_workload("oltp-db2")
        dyn = resolve_dynamic("oltp-db2:migrate")
        assert spec_fingerprint(spec) != spec_fingerprint(spec, dyn)
        assert spec_fingerprint(spec, dyn) == spec_fingerprint(spec, dyn)

    def test_fingerprint_covers_machine_geometry(self, config16):
        """A config change (page size, tile count, ...) retires old traces.

        The generator derives physical addresses from the machine geometry,
        so the same workload on a different machine is a different trace —
        the fingerprint must see the scaled SystemConfig, not just the spec.
        """
        spec = get_workload("oltp-db2")
        other = SystemConfig.for_workload_category(spec.category).scaled(TEST_SCALE // 2)
        assert spec_fingerprint(spec, config=config16) != spec_fingerprint(spec)
        assert spec_fingerprint(spec, config=config16) != spec_fingerprint(
            spec, config=other
        )
        assert spec_fingerprint(spec, config=config16) == spec_fingerprint(
            spec, config=config16
        )

    def test_key_distinguishes_every_axis(self):
        base = store_key()
        assert base != store_key(seed=1)
        assert base != store_key(num_records=3000)
        assert base != store_key(workload="mix")
        assert base.content_hash != store_key(seed=1).content_hash

    def test_filename_is_filesystem_safe(self):
        spec = get_workload("oltp-db2")
        dyn = resolve_dynamic("oltp-db2:migrate")
        key = TraceKey.make(
            "oltp-db2:migrate", num_records=100, scale=TEST_SCALE, seed=0,
            spec=spec, dyn=dyn,
        )
        assert ":" not in key.filename
        assert key.filename.endswith(".npz")


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #
class TestTraceStore:
    def test_miss_then_hit(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        key = store_key()
        assert store.get(key) is None
        store.put(key, oltp_trace)
        cached = store.get(key)
        assert cached is not None
        assert_traces_equal(cached, oltp_trace)
        assert isinstance(cached.columns.core, np.memmap)

    def test_get_or_create_generates_exactly_once(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        key = store_key()
        calls = []

        def factory():
            calls.append(1)
            return oltp_trace

        first, hit_first = store.get_or_create(key, factory)
        second, hit_second = store.get_or_create(key, factory)
        assert (hit_first, hit_second) == (False, True)
        assert len(calls) == 1
        assert store.generation_log() == [key.filename]
        assert_traces_equal(first, second)

    def test_corrupt_file_is_a_miss_and_regenerates(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        key = store_key()
        store.put(key, oltp_trace)
        store.path_for(key).write_bytes(b"PK\x03\x04 definitely not a zip")
        assert store.get(key) is None
        regenerated, hit = store.get_or_create(key, lambda: oltp_trace)
        assert not hit
        assert store.generation_log() == [key.filename]
        assert_traces_equal(store.get(key), regenerated)

    def test_distinct_keys_store_distinct_files(self, tmp_path, oltp_trace, mix_trace):
        store = TraceStore(tmp_path)
        store.put(store_key(), oltp_trace)
        store.put(store_key(workload="mix"), mix_trace)
        assert len(list(tmp_path.glob("*.npz"))) == 2
        assert_traces_equal(store.get(store_key(workload="mix")), mix_trace)

    def test_generation_log_empty_without_generations(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.generation_log() == []
        assert not (tmp_path / GENERATION_LOG).exists()

    def test_from_env_reads_trace_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("RNUCA_TRACE_DIR", str(tmp_path / "cache"))
        assert TraceStore.from_env().directory == tmp_path / "cache"
        monkeypatch.delenv("RNUCA_TRACE_DIR")
        assert str(TraceStore.from_env().directory) == "traces"

    def test_spec_change_misses_the_old_trace(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path)
        spec = get_workload("oltp-db2")
        old = TraceKey.make(
            "oltp-db2", num_records=2000, scale=TEST_SCALE, seed=0, spec=spec
        )
        store.put(old, oltp_trace)
        tweaked = dataclasses.replace(spec, mixed_page_fraction=0.21)
        new = TraceKey.make(
            "oltp-db2", num_records=2000, scale=TEST_SCALE, seed=0, spec=tweaked
        )
        assert store.get(new) is None


def test_store_header_is_json(tmp_path, oltp_trace):
    """The binary header member is plain JSON — inspectable without numpy."""
    import zipfile

    path = tmp_path / "trace.npz"
    oltp_trace.save(path)
    with zipfile.ZipFile(path) as archive:
        member = archive.read("header.npy")
    # The npy header (an ASCII dict) ends at the first newline; the uint8
    # payload after it is the UTF-8 JSON document.
    header = json.loads(member[member.index(b"\n") + 1:].decode())
    assert header["workload"] == oltp_trace.workload
    assert header["num_cores"] == oltp_trace.num_cores


# --------------------------------------------------------------------- #
# LRU eviction (``repro traces gc``)
# --------------------------------------------------------------------- #
class TestTraceStoreGc:
    def _fill(self, store, traces):
        """Store each (name, trace) under its own key; returns the keys."""
        keys = []
        for name, trace in traces:
            key = TraceKey.make(
                name, num_records=len(trace), scale=TEST_SCALE, seed=0,
                spec=get_workload("oltp-db2"),
            )
            store.put(key, trace)
            keys.append(key)
        return keys

    def test_gc_keeps_store_within_budget(self, tmp_path, oltp_trace, mix_trace):
        store = TraceStore(tmp_path / "store")
        keys = self._fill(store, [("a", oltp_trace), ("b", mix_trace), ("c", oltp_trace)])
        sizes = [store.path_for(key).stat().st_size for key in keys]
        budget = sizes[-1]  # room for roughly one trace
        evicted = store.gc(budget)
        assert store.size_bytes() <= budget
        assert evicted  # something actually left
        for path in evicted:
            assert not path.exists()

    def test_gc_evicts_least_recently_used_first(self, tmp_path, oltp_trace, mix_trace):
        import os
        import time

        store = TraceStore(tmp_path / "store")
        key_old, key_hot = self._fill(store, [("old", oltp_trace), ("hot", mix_trace)])
        # Age both files, then touch "hot" through an ordinary cache hit —
        # recency must track *use*, not write order.
        stale = time.time() - 3600
        for key in (key_old, key_hot):
            os.utime(store.path_for(key), (stale, stale))
        assert store.get(key_hot) is not None
        evicted = store.gc(store.path_for(key_hot).stat().st_size)
        assert store.path_for(key_old) in evicted
        assert store.path_for(key_hot).exists()
        assert store.get(key_old) is None  # evicted == regular miss

    def test_gc_dry_run_deletes_nothing(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path / "store")
        (key,) = self._fill(store, [("a", oltp_trace)])
        would_evict = store.gc(0, dry_run=True)
        assert would_evict == [store.path_for(key)]
        assert store.path_for(key).exists()
        assert store.get(key) is not None

    def test_gc_zero_budget_clears_traces_but_keeps_log(self, tmp_path, oltp_trace):
        store = TraceStore(tmp_path / "store")
        key = TraceKey.make(
            "a", num_records=len(oltp_trace), scale=TEST_SCALE, seed=0,
            spec=get_workload("oltp-db2"),
        )
        store.get_or_create(key, lambda: oltp_trace)  # generates + logs
        assert store.generation_log()
        store.gc(0)
        assert store.size_bytes() == 0
        assert store.generation_log()  # the audit log is not trace data

    def test_gc_negative_budget_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            TraceStore(tmp_path / "store").gc(-1)

    def test_gc_on_missing_directory_is_a_noop(self, tmp_path):
        store = TraceStore(tmp_path / "nowhere")
        assert store.gc(0) == []
        assert store.size_bytes() == 0
