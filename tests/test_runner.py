"""Tests for the parallel experiment runner (grid, batch, result store)."""

import json

import pytest

from repro.analysis.evaluation import run_evaluation
from repro.analysis.speedup import speedup_table
from repro.errors import SimulationError
from repro.sim.engine import SimulationResult, simulate_workload
from repro.sim.runner import (
    BatchRunner,
    ExperimentGrid,
    ExperimentPoint,
    ResultStore,
    execute_point,
    run_grid,
)
from repro.workloads.store import TraceStore

from .conftest import TEST_SCALE

RECORDS = 1200


def small_grid(**kwargs):
    defaults = dict(
        workloads=("mix",),
        designs=("P", "R"),
        num_records=RECORDS,
        scale=TEST_SCALE,
        seed=5,
    )
    defaults.update(kwargs)
    return ExperimentGrid(**defaults)


class TestExperimentPoint:
    def test_make_normalises_design_names(self):
        point = ExperimentPoint.make("mix", "private", scale=TEST_SCALE)
        assert point.design == "P"
        assert point.label == "mix/P"

    def test_content_hash_is_order_independent(self):
        a = ExperimentPoint.make("mix", "R", params={"x": 1, "y": 2})
        b = ExperimentPoint.make("mix", "R", params={"y": 2, "x": 1})
        assert a.content_hash == b.content_hash

    def test_content_hash_distinguishes_points(self):
        a = ExperimentPoint.make("mix", "P", seed=1)
        b = ExperimentPoint.make("mix", "P", seed=2)
        assert a.content_hash != b.content_hash

    def test_dict_round_trip(self):
        point = ExperimentPoint.make(
            "oltp-db2", "rnuca", num_records=500, scale=TEST_SCALE, seed=9,
            params={"instruction_cluster_size": 4},
        )
        assert ExperimentPoint.from_dict(point.to_dict()) == point


class TestExperimentGrid:
    def test_enumerates_cross_product(self):
        grid = small_grid(workloads=("mix", "oltp-db2"), designs=("P", "S", "R"))
        points = grid.points()
        assert len(points) == len(grid) == 6
        assert {(p.workload, p.design) for p in points} == {
            (w, d) for w in ("mix", "oltp-db2") for d in ("P", "S", "R")
        }

    def test_cluster_sweep_points(self):
        grid = small_grid(designs=(), cluster_sizes=(1, 4))
        points = grid.points()
        assert len(points) == len(grid) == 2
        assert all(p.design == "R" for p in points)
        assert {p.param_dict["instruction_cluster_size"] for p in points} == {1, 4}

    def test_overrides_axis(self):
        grid = small_grid(
            designs=("A",),
            overrides=({"best_asr": False}, {"best_asr": False, "allocation_probability": 1.0}),
        )
        assert len(grid.points()) == 2


class TestSerialization:
    def test_result_json_round_trip(self):
        result = simulate_workload("mix", "R", num_records=RECORDS, scale=TEST_SCALE, seed=5)
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.cpi == result.cpi
        assert restored.ipc == result.ipc
        assert restored.cpi_breakdown() == result.cpi_breakdown()
        assert restored.stats.to_dict() == result.stats.to_dict()
        assert restored.cpi_confidence == result.cpi_confidence
        assert restored.metadata == result.metadata

    def test_round_trip_without_confidence(self):
        result = simulate_workload("mix", "P", num_records=RECORDS, scale=TEST_SCALE)
        result.cpi_confidence = None
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored.cpi_confidence is None


class TestBatchRunner:
    def test_pool_matches_in_process_run(self):
        """Same seed -> identical results across a process pool and inline."""
        grid = small_grid()
        pooled = BatchRunner(jobs=2).run(grid.points())
        inline = BatchRunner(jobs=1).run(grid.points())
        assert pooled.executed == inline.executed == len(grid)
        for point in grid:
            assert (
                pooled.result_for(point).stats.to_dict()
                == inline.result_for(point).stats.to_dict()
            )

    def test_runner_matches_direct_simulation(self):
        point = ExperimentPoint.make("mix", "P", num_records=RECORDS, scale=TEST_SCALE, seed=5)
        direct = simulate_workload("mix", "P", num_records=RECORDS, scale=TEST_SCALE, seed=5)
        assert execute_point(point).cpi == direct.cpi

    def test_asr_point_defaults_to_best_of_six(self):
        point = ExperimentPoint.make("mix", "A", num_records=RECORDS, scale=TEST_SCALE)
        result = execute_point(point)
        assert result.metadata["asr_variants_evaluated"] == 6

    def test_asr_point_with_explicit_probability_runs_single_variant(self):
        point = ExperimentPoint.make(
            "mix", "A", num_records=RECORDS, scale=TEST_SCALE,
            params={"allocation_probability": 0.25},
        )
        result = execute_point(point)
        assert "asr_variants_evaluated" not in result.metadata
        assert result.metadata["asr_allocation_probability"] == 0.25

    def test_asr_best_conflicts_with_explicit_params(self):
        point = ExperimentPoint.make(
            "mix", "A", num_records=RECORDS, scale=TEST_SCALE,
            params={"best_asr": True, "allocation_probability": 0.25},
        )
        with pytest.raises(SimulationError):
            execute_point(point)

    def test_cache_hit_and_miss(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path)
        first = run_grid(grid, store=store, jobs=1)
        assert (first.executed, first.cache_hits) == (len(grid), 0)
        assert len(list(tmp_path.glob("*.json"))) == len(grid)
        second = run_grid(grid, store=store, jobs=1)
        assert (second.executed, second.cache_hits) == (0, len(grid))
        for point in grid:
            assert second.result_for(point).cpi == first.result_for(point).cpi

    def test_changed_point_misses_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        run_grid(small_grid(), store=store, jobs=1)
        other = run_grid(small_grid(seed=6), store=store, jobs=1)
        assert other.cache_hits == 0

    def test_corrupt_store_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        point = small_grid().points()[0]
        store.put(point, execute_point(point))
        store.path_for(point).write_text("{ not json")
        assert store.get(point) is None

    def test_duplicate_points_run_once(self):
        point = ExperimentPoint.make("mix", "P", num_records=RECORDS, scale=TEST_SCALE)
        batch = BatchRunner(jobs=1).run([point, point])
        assert batch.executed == 1
        assert len(batch) == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SimulationError):
            BatchRunner(jobs=0)

    def test_store_load_all(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path)
        run_grid(grid, store=store, jobs=1)
        pairs = store.load_all()
        assert [point.label for point, _ in pairs] == ["mix/P", "mix/R"]
        assert all(isinstance(result, SimulationResult) for _, result in pairs)

    def test_load_all_skips_stale_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        point = small_grid().points()[0]
        store.put(point, execute_point(point))
        stale = json.loads(store.path_for(point).read_text())
        stale["point"]["design"] = "X"  # e.g. schema drift after a rename
        (tmp_path / "stale.json").write_text(json.dumps(stale))
        (tmp_path / "junk.json").write_text("{ not json")
        assert [p.label for p, _ in store.load_all()] == [point.label]

    def test_load_all_with_errors_names_the_skipped_files(self, tmp_path):
        store = ResultStore(tmp_path)
        point = small_grid().points()[0]
        store.put(point, execute_point(point))
        (tmp_path / "junk.json").write_text("{ not json")
        (tmp_path / "stale.json").write_text('{"result": {}}')
        pairs, skipped = store.load_all_with_errors()
        assert [p.label for p, _ in pairs] == [point.label]
        assert sorted(path.name for path in skipped) == ["junk.json", "stale.json"]

    def test_load_all_with_errors_on_missing_dir(self, tmp_path):
        pairs, skipped = ResultStore(tmp_path / "nope").load_all_with_errors()
        assert pairs == [] and skipped == []

    def test_concurrent_identical_puts_are_last_writer_wins_safe(self, tmp_path):
        """Regression: concurrent writers of the *same* point used to share
        one ``<hash>.json.tmp`` name, so a second writer could rename a
        temp file the first had already consumed (FileNotFoundError) or
        publish a half-written payload.  Unique per-writer temp files make
        the race last-writer-wins: every put succeeds and the final file
        is always a complete, parseable payload."""
        import threading

        store = ResultStore(tmp_path)
        point = small_grid().points()[0]
        result = execute_point(point)
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            barrier.wait()
            try:
                for _ in range(10):
                    store.put(point, result)
            except OSError as error:
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        loaded = store.get(point)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        # No orphaned temp files survive the stampede.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_dynamic_scenario_points_run_and_cache(self, tmp_path):
        grid = ExperimentGrid(
            workloads=("mix:phased",),
            designs=("R",),
            num_records=1000,
            scale=TEST_SCALE,
            seed=2,
        )
        store = ResultStore(tmp_path)
        first = run_grid(grid, store=store, jobs=1)
        assert first.executed == 1
        again = run_grid(grid, store=store, jobs=1)
        assert again.cache_hits == 1 and again.executed == 0
        result = again.result_for(grid.points()[0])
        assert result.workload == "mix:phased"
        assert set(result.stats.phases) == {"base", "private-heavy", "shared-heavy"}


class TestTraceStoreIntegration:
    def test_cold_parallel_grid_generates_each_trace_exactly_once(self, tmp_path):
        """The acceptance contract: 3 designs x 2 workloads, jobs=4, cold.

        The parent pre-materialises one binary trace per workload; every
        worker memory-maps it.  The store's generation log is append-only
        and written only by actual generations, so exactly-once generation
        across all processes shows up as exactly one line per workload.
        """
        grid = ExperimentGrid(
            workloads=("mix", "oltp-db2"),
            designs=("P", "S", "R"),
            num_records=800,
            scale=TEST_SCALE,
            seed=13,
        )
        trace_store = TraceStore(tmp_path / "traces")
        batch = run_grid(
            grid, store=ResultStore(tmp_path / "results"), jobs=4,
            trace_store=trace_store,
        )
        assert batch.executed == len(grid) == 6
        log = trace_store.generation_log()
        assert len(log) == 2
        assert sorted(name.split(".")[0] for name in log) == ["mix", "oltp-db2"]
        assert len(list((tmp_path / "traces").glob("*.npz"))) == 2

    def test_warm_rerun_generates_nothing(self, tmp_path):
        grid = small_grid()
        trace_store = TraceStore(tmp_path / "traces")
        run_grid(grid, jobs=2, trace_store=trace_store)
        assert len(trace_store.generation_log()) == 1
        again = run_grid(grid, jobs=2, trace_store=trace_store)
        assert again.executed == len(grid)  # no result store: all re-simulated
        assert len(trace_store.generation_log()) == 1  # ... from mmapped traces

    def test_results_identical_with_and_without_trace_store(self, tmp_path, monkeypatch):
        """Memory-mapped traces must not change a single statistic."""
        grid = small_grid(workloads=("mix:phased",), designs=("P", "R"))
        monkeypatch.delenv("RNUCA_TRACE_DIR", raising=False)
        plain = run_grid(grid, jobs=1)
        stored = run_grid(grid, jobs=2, trace_store=TraceStore(tmp_path))
        for point in grid:
            assert (
                stored.result_for(point).stats.to_dict()
                == plain.result_for(point).stats.to_dict()
            )
            assert stored.result_for(point).cpi == plain.result_for(point).cpi

    def test_trace_store_defaults_to_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("RNUCA_TRACE_DIR", str(tmp_path / "env-traces"))
        runner = BatchRunner(jobs=1)
        assert runner.trace_store is not None
        assert runner.trace_store.directory == tmp_path / "env-traces"
        runner.run(small_grid().points())
        assert len(list((tmp_path / "env-traces").glob("*.npz"))) == 1

    def test_no_trace_store_without_environment(self, monkeypatch):
        monkeypatch.delenv("RNUCA_TRACE_DIR", raising=False)
        assert BatchRunner(jobs=1).trace_store is None


class TestEvaluationThroughRunner:
    def test_same_numbers_as_serial_seed_path(self):
        """run_evaluation via the runner == the direct serial simulate() path."""
        suite = run_evaluation(
            workloads=("mix",),
            designs=("P", "R"),
            num_records=RECORDS,
            scale=TEST_SCALE,
            seed=5,
            use_cache=False,
        )
        for design in ("P", "R"):
            direct = simulate_workload(
                "mix", design, num_records=RECORDS, scale=TEST_SCALE, seed=5
            )
            assert suite.result("mix", design).cpi == direct.cpi

    def test_parallel_evaluation_matches_serial(self):
        serial = run_evaluation(
            workloads=("mix",), designs=("P", "S"), num_records=RECORDS,
            scale=TEST_SCALE, seed=5, use_cache=False, jobs=1,
        )
        parallel = run_evaluation(
            workloads=("mix",), designs=("P", "S"), num_records=RECORDS,
            scale=TEST_SCALE, seed=5, use_cache=False, jobs=2,
        )
        for key, result in serial.results.items():
            assert parallel.results[key].cpi == result.cpi

    def test_speedup_table_never_mixes_experiments(self):
        """A baseline from one trace length must not normalise another's."""
        short = execute_point(
            ExperimentPoint.make("mix", "P", num_records=RECORDS, scale=TEST_SCALE)
        )
        long_p = execute_point(
            ExperimentPoint.make("mix", "P", num_records=2 * RECORDS, scale=TEST_SCALE)
        )
        long_r = execute_point(
            ExperimentPoint.make("mix", "R", num_records=2 * RECORDS, scale=TEST_SCALE)
        )
        rows = speedup_table([short, long_p, long_r])
        assert {(row["records"], row["design"]) for row in rows} == {
            (RECORDS, "P"), (2 * RECORDS, "P"), (2 * RECORDS, "R"),
        }
        long_row = next(r for r in rows if r["design"] == "R")
        assert long_row["speedup"] == long_r.speedup_over(long_p)

    def test_evaluation_uses_store(self, tmp_path):
        store = ResultStore(tmp_path)
        run_evaluation(
            workloads=("mix",), designs=("P",), num_records=RECORDS,
            scale=TEST_SCALE, use_cache=False, store=store,
        )
        assert len(list(tmp_path.glob("*.json"))) == 1
