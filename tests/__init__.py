"""Test package marker so ``from .conftest import ...`` resolves under pytest."""
