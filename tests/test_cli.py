"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main

from .conftest import TEST_SCALE

RUN_ARGS = [
    "run",
    "--workloads", "mix",
    "--designs", "private,rnuca",
    "--records", "1000",
    "--scale", str(TEST_SCALE),
    "--jobs", "2",
]


@pytest.fixture
def results_dir(tmp_path):
    return str(tmp_path / "results")


def test_run_simulates_then_hits_cache(results_dir, capsys):
    assert main(RUN_ARGS + ["--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "2 simulated, 0 cache hits" in out
    assert "simulated mix/P" in out and "simulated mix/R" in out

    assert main(RUN_ARGS + ["--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "0 simulated, 2 cache hits" in out
    assert "cached    mix/P" in out


def test_run_quiet_suppresses_progress(results_dir, capsys):
    assert main(RUN_ARGS + ["--results-dir", results_dir, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "simulated mix/P" not in out
    assert "2 simulated" in out


def test_report_lists_results_and_speedups(results_dir, capsys):
    main(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
    capsys.readouterr()
    assert main(["report", "--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "mix/P" in out and "mix/R" in out
    assert "Speedup over the private design" in out


def test_report_workload_filter(results_dir, capsys):
    main(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
    capsys.readouterr()
    assert main(["report", "--results-dir", results_dir, "--workloads", "apache"]) == 0
    assert "No results" in capsys.readouterr().out


def test_report_missing_store_exits_cleanly(tmp_path, capsys):
    """A results directory that does not exist is a no-op, not a crash."""
    assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 0
    out = capsys.readouterr().out
    assert "No results" in out and "repro run" in out


def test_report_empty_store_exits_cleanly(tmp_path, capsys):
    """An existing-but-empty results directory exits 0 with a pointer."""
    empty = tmp_path / "results"
    empty.mkdir()
    assert main(["report", "--results-dir", str(empty)]) == 0
    assert "No results" in capsys.readouterr().out


def test_list_works_without_results_dir(tmp_path, capsys, monkeypatch):
    """`repro list` never touches a results directory."""
    monkeypatch.chdir(tmp_path)  # no results/ anywhere in sight
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Workloads:" in out and "Designs:" in out


def test_cluster_sweep_points(results_dir, capsys):
    args = [
        "run", "--workloads", "mix", "--designs", "rnuca",
        "--records", "800", "--scale", str(TEST_SCALE),
        "--cluster-sizes", "1,2", "--results-dir", results_dir, "--quiet",
    ]
    assert main(args) == 0
    assert "3 simulated" in capsys.readouterr().out


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "oltp-db2" in out and "RNucaDesign" in out


def test_unknown_design_errors(results_dir):
    with pytest.raises(ValueError, match="unknown design"):
        main(["run", "--workloads", "mix", "--designs", "bogus",
              "--results-dir", results_dir])
