"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main

from .conftest import TEST_SCALE

RUN_ARGS = [
    "run",
    "--workloads", "mix",
    "--designs", "private,rnuca",
    "--records", "1000",
    "--scale", str(TEST_SCALE),
    "--jobs", "2",
]


@pytest.fixture
def results_dir(tmp_path):
    return str(tmp_path / "results")


def test_run_simulates_then_hits_cache(results_dir, capsys):
    assert main(RUN_ARGS + ["--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "2 simulated, 0 cache hits" in out
    assert "simulated mix/P" in out and "simulated mix/R" in out

    assert main(RUN_ARGS + ["--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "0 simulated, 2 cache hits" in out
    assert "cached    mix/P" in out


def test_run_quiet_suppresses_progress(results_dir, capsys):
    assert main(RUN_ARGS + ["--results-dir", results_dir, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "simulated mix/P" not in out
    assert "2 simulated" in out


def test_report_lists_results_and_speedups(results_dir, capsys):
    main(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
    capsys.readouterr()
    assert main(["report", "--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "mix/P" in out and "mix/R" in out
    assert "Speedup over the private design" in out


def test_report_workload_filter(results_dir, capsys):
    main(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
    capsys.readouterr()
    assert main(["report", "--results-dir", results_dir, "--workloads", "apache"]) == 0
    assert "No results" in capsys.readouterr().out


def test_report_missing_store_exits_cleanly(tmp_path, capsys):
    """A results directory that does not exist is a no-op, not a crash."""
    assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 0
    out = capsys.readouterr().out
    assert "No results" in out and "repro run" in out


def test_report_empty_store_exits_cleanly(tmp_path, capsys):
    """An existing-but-empty results directory exits 0 with a pointer."""
    empty = tmp_path / "results"
    empty.mkdir()
    assert main(["report", "--results-dir", str(empty)]) == 0
    assert "No results" in capsys.readouterr().out


def test_list_works_without_results_dir(tmp_path, capsys, monkeypatch):
    """`repro list` never touches a results directory."""
    monkeypatch.chdir(tmp_path)  # no results/ anywhere in sight
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Workloads:" in out and "Designs:" in out


def test_cluster_sweep_points(results_dir, capsys):
    args = [
        "run", "--workloads", "mix", "--designs", "rnuca",
        "--records", "800", "--scale", str(TEST_SCALE),
        "--cluster-sizes", "1,2", "--results-dir", results_dir, "--quiet",
    ]
    assert main(args) == 0
    assert "3 simulated" in capsys.readouterr().out


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "oltp-db2" in out and "RNucaDesign" in out


def test_list_shows_engines_knobs_and_dynamic_variants(capsys):
    """The ROADMAP usage block is discoverable from the CLI."""
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Engines:" in out and "fast" in out and "reference" in out
    assert "RNUCA_JOBS" in out and "RNUCA_RESULTS_DIR" in out
    assert "RNUCA_EVAL_RECORDS" in out and "RNUCA_ENGINE" in out
    assert "RNUCA_TRACE_DIR" in out
    assert "migrate" in out and "phased" in out and "onset" in out


def test_run_and_report_dynamic_scenario(results_dir, capsys):
    args = [
        "run", "--workloads", "mix:phased", "--designs", "rnuca",
        "--records", "1200", "--scale", str(TEST_SCALE),
        "--results-dir", results_dir, "--quiet",
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert main(["report", "--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "mix:phased/R" in out
    assert "Per-phase CPI" in out
    assert "private-heavy" in out and "shared-heavy" in out
    assert "OS re-classification activity" in out


def test_report_counts_corrupt_result_files(results_dir, capsys):
    main(RUN_ARGS + ["--results-dir", results_dir, "--quiet"])
    capsys.readouterr()
    from pathlib import Path

    store = Path(results_dir)
    (store / "corrupt-a.json").write_text("{not json")
    (store / "corrupt-b.json").write_text('{"point": {}}')
    assert main(["report", "--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "skipped 2 corrupt/unreadable result file(s)" in out
    assert "corrupt-a.json" in out and "corrupt-b.json" in out
    # The healthy results still report.
    assert "mix/P" in out and "mix/R" in out


def test_unknown_design_errors(results_dir):
    with pytest.raises(ValueError, match="unknown design"):
        main(["run", "--workloads", "mix", "--designs", "bogus",
              "--results-dir", results_dir])


# --------------------------------------------------------------------- #
# RNUCA_ENGINE round-trip through the run path
# --------------------------------------------------------------------- #
def test_run_engine_env_round_trips_bit_identically(tmp_path, capsys, monkeypatch):
    """RNUCA_ENGINE reaches the runner's worker processes end to end.

    The same grid simulated under each engine must persist *byte-identical*
    result files (content-hash names included): the engines are pinned
    bit-identical, and the experiment point deliberately excludes the
    engine from its hash, so a cache populated by one engine serves the
    others.
    """
    payloads = {}
    for engine in ("fast", "batch", "reference"):
        monkeypatch.setenv("RNUCA_ENGINE", engine)
        results = tmp_path / engine
        assert main(RUN_ARGS + ["--results-dir", str(results), "--quiet"]) == 0
        capsys.readouterr()
        payloads[engine] = {
            path.name: path.read_text(encoding="utf-8")
            for path in results.glob("*.json")
        }
    assert len(payloads["fast"]) == 2
    assert payloads["batch"] == payloads["fast"]
    assert payloads["reference"] == payloads["fast"]


def test_run_unknown_engine_env_fails_loudly(results_dir, monkeypatch):
    """A misspelt RNUCA_ENGINE aborts `repro run` instead of silently
    replaying through the default path."""
    from repro.errors import SimulationError

    monkeypatch.setenv("RNUCA_ENGINE", "warp")
    with pytest.raises(SimulationError, match="warp"):
        main(["run", "--workloads", "mix", "--designs", "private",
              "--records", "400", "--scale", str(TEST_SCALE),
              "--jobs", "1", "--results-dir", results_dir, "--quiet"])


def test_run_populates_trace_cache(results_dir, tmp_path, capsys):
    """`repro run --trace-dir` fills the binary trace store exactly once."""
    explicit = tmp_path / "explicit-traces"
    args = RUN_ARGS + ["--results-dir", results_dir, "--trace-dir", str(explicit)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert f"traces: {explicit}/" in out
    assert "trace     mix (1000 records) ready" in out
    assert len(list(explicit.glob("*.npz"))) == 1
    assert (explicit / "generated.log").read_text().count("\n") == 1

    # Fresh results dir, same trace dir: results re-simulate, traces do not.
    assert main(RUN_ARGS + ["--results-dir", str(tmp_path / "r2"),
                            "--trace-dir", str(explicit)]) == 0
    assert (explicit / "generated.log").read_text().count("\n") == 1


def test_run_trace_cache_defaults_to_env(results_dir, trace_dir, capsys):
    assert main(RUN_ARGS + ["--results-dir", results_dir]) == 0
    capsys.readouterr()
    assert len(list(trace_dir.glob("*.npz"))) == 1


# --------------------------------------------------------------------- #
# Replay-time scheduler axis (repro run --scheduler / repro report)
# --------------------------------------------------------------------- #
SCHED_RUN_ARGS = [
    "run",
    "--workloads", "mix:adaptive",
    "--designs", "rnuca",
    "--records", "4000",
    "--scale", str(TEST_SCALE),
]


def test_run_scheduler_sweep_and_report_comparison(results_dir, capsys):
    assert main(
        SCHED_RUN_ARGS + ["--scheduler", "fixed,greedy", "--results-dir", results_dir]
    ) == 0
    out = capsys.readouterr().out
    assert "x 2 schedulers" in out
    assert "simulated mix:adaptive/R[scheduler=greedy]" in out

    assert main(["report", "--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "Scheduler comparison" in out
    assert "greedy" in out and "fixed" in out
    assert "vs_fixed" in out


def test_run_scheduler_fixed_reuses_plain_cache(results_dir, capsys):
    """'fixed' adds no point parameter, so a plain run's cache serves it."""
    assert main(SCHED_RUN_ARGS + ["--results-dir", results_dir, "--quiet"]) == 0
    capsys.readouterr()
    assert main(
        SCHED_RUN_ARGS + ["--scheduler", "fixed", "--results-dir", results_dir]
    ) == 0
    assert "1 cache hits" in capsys.readouterr().out


def test_run_unknown_scheduler_errors(results_dir):
    from repro.errors import SimulationError

    with pytest.raises(SimulationError, match="known schedulers"):
        main(SCHED_RUN_ARGS + ["--scheduler", "oracle", "--results-dir", results_dir])


def test_list_shows_schedulers(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "Schedulers:" in out
    assert "fixed" in out and "greedy" in out and "reinforced" in out
    assert "adaptive" in out  # the scenario variant is advertised too


# --------------------------------------------------------------------- #
# Trace-store maintenance (repro traces gc)
# --------------------------------------------------------------------- #
def test_traces_gc_sweeps_store(results_dir, tmp_path, capsys):
    trace_dir = tmp_path / "traces"
    assert main(
        RUN_ARGS + ["--results-dir", results_dir, "--trace-dir", str(trace_dir), "--quiet"]
    ) == 0
    capsys.readouterr()
    stored = list(trace_dir.glob("*.npz"))
    assert stored

    assert main(
        ["traces", "gc", "--max-bytes", "0", "--trace-dir", str(trace_dir), "--dry-run"]
    ) == 0
    out = capsys.readouterr().out
    assert "would evict 1 trace(s)" in out
    assert list(trace_dir.glob("*.npz")) == stored  # dry run deletes nothing

    assert main(
        ["traces", "gc", "--max-bytes", "0", "--trace-dir", str(trace_dir)]
    ) == 0
    out = capsys.readouterr().out
    assert "evicted 1 trace(s)" in out
    assert list(trace_dir.glob("*.npz")) == []


def test_traces_gc_defaults_to_env_store(trace_dir, tmp_path, capsys):
    import os

    assert os.environ["RNUCA_TRACE_DIR"] == str(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    (trace_dir / "x.npz").write_bytes(b"PK\x03\x04junk")
    assert main(["traces", "gc", "--max-bytes", "0"]) == 0
    out = capsys.readouterr().out
    assert str(trace_dir) in out
    assert not (trace_dir / "x.npz").exists()


# --------------------------------------------------------------------- #
# Serving surface (repro serve / repro loadgen / repro bench --serve)
# --------------------------------------------------------------------- #
def test_serve_and_loadgen_round_trip(tmp_path, capsys):
    """Start the daemon CLI path on an ephemeral port, drive it with the
    loadgen CLI, shut it down through the protocol, and check both exit 0."""
    import threading

    from repro.serve import SimulationDaemon
    from repro.sim.runner import BatchRunner, ResultStore
    from repro.workloads.store import TraceStore

    runner = BatchRunner(
        store=ResultStore(tmp_path / "results"),
        jobs=1,
        trace_store=TraceStore(tmp_path / "traces"),
    )
    daemon = SimulationDaemon(runner, port=0, quiet=True)
    serve_thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    serve_thread.start()
    try:
        code = main([
            "loadgen",
            "--port", str(daemon.port),
            "--clients", "2",
            "--requests", "8",
            "--workloads", "mix",
            "--designs", "private,rnuca",
            "--records", "600",
            "--scale", str(TEST_SCALE),
            "--output", str(tmp_path / "BENCH_serve.json"),
            "--shutdown",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving latency" in out
        assert "Sent shutdown" in out
        assert (tmp_path / "BENCH_serve.json").exists()
    finally:
        serve_thread.join(timeout=10)
    assert not serve_thread.is_alive()  # --shutdown stopped the serve loop


def test_serve_stop_without_daemon_errors(capsys):
    assert main(["serve", "--stop", "--port", "1"]) == 1
    assert "No daemon" in capsys.readouterr().out


def test_bench_serve_writes_payload(tmp_path, capsys):
    output = tmp_path / "BENCH_serve.json"
    code = main([
        "bench", "--serve",
        "--clients", "2",
        "--requests", "8",
        "--records", "600",
        "--scale", str(TEST_SCALE),
        "--workload", "mix",
        "--designs", "private,rnuca",
        "--output", str(output),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Serving latency" in out
    import json as json_module

    payload = json_module.loads(output.read_text())
    assert payload["benchmark"] == "serve-loadgen"
    assert payload["errors"] == 0


def test_list_shows_serve_knobs(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "RNUCA_SERVE_HOST" in out and "RNUCA_SERVE_PORT" in out
